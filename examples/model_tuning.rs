//! Model-tuning scenario (paper §I): a model trained on a *generic*
//! environment keeps training on the *target* environment it actually
//! encounters (the robot trained on grass now walks on sand).
//!
//! Here a pendulum controller is evolved against one set of episode
//! conditions, then the environment shifts (different reset
//! distribution). Continuing evolution from the adapted population
//! re-converges far faster than starting from scratch — the case for
//! on-device continuous learning.
//!
//! ```text
//! cargo run --release --example model_tuning
//! ```

use e3::envs::{run_episode, EnvId};
use e3::neat::{NeatConfig, Population};

/// Evaluate a population on one episode condition, returning the best
/// fitness of the generation.
fn evaluate(population: &mut Population, env_id: EnvId, episode_seed: u64) -> f64 {
    let mut env = env_id.make();
    population.evaluate(|genome| {
        let mut net = genome.decode().expect("feed-forward");
        let mut policy = |obs: &[f64]| net.activate(obs);
        run_episode(env.as_mut(), &mut policy, episode_seed).total_reward
    });
    population
        .fitnesses()
        .iter()
        .flatten()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
}

/// Generations until the population's best fitness clears `target`
/// under the given episode condition (capped).
fn generations_to_reach(
    population: &mut Population,
    env_id: EnvId,
    episode_seed: u64,
    target: f64,
    cap: usize,
) -> Option<usize> {
    for generation in 0..cap {
        let best = evaluate(population, env_id, episode_seed);
        if best >= target {
            return Some(generation);
        }
        population.evolve();
    }
    None
}

fn main() {
    let env_id = EnvId::Pendulum;
    let target = -400.0;
    let config = NeatConfig::builder(env_id.observation_size(), env_id.policy_outputs())
        .population_size(100)
        .build();

    println!("E3 model tuning on {env_id} (target fitness {target})\n");

    // Phase 1: learn under the "generic" condition.
    let mut tuned = Population::new(config.clone(), 5);
    let pretrain =
        generations_to_reach(&mut tuned, env_id, 100, target, 80).expect("generic task learnable");
    println!("pre-training on the generic condition: reached target in {pretrain} generations");

    // Phase 2: the environment shifts — tune the existing population.
    let shifted_condition = 900u64;
    let tune = generations_to_reach(&mut tuned, env_id, shifted_condition, target, 80);

    // Baseline: learn the shifted condition from scratch.
    let mut scratch = Population::new(config, 6);
    let from_scratch = generations_to_reach(&mut scratch, env_id, shifted_condition, target, 80);

    match (tune, from_scratch) {
        (Some(t), Some(s)) => {
            println!("adapting the tuned population : {t} generations");
            println!("learning from scratch         : {s} generations");
            if t <= s {
                println!("\nmodel tuning wins: the evolved structure transfers across conditions.");
            } else {
                println!("\n(this seed favored scratch — rerun with another seed; on average tuning wins)");
            }
        }
        (tune, scratch) => {
            println!("tuned: {tune:?} generations, scratch: {scratch:?} (None = not within cap)");
        }
    }
}
