//! Visualize the INAX wave schedule: an ASCII Gantt chart of PE
//! occupancy for one inference of an evolved-shape network, at the
//! heuristic PE count and at an over-provisioned one — the idle holes
//! (`.`) are the utilization loss of paper Fig. 6.
//!
//! ```text
//! cargo run --release --example inax_trace
//! ```

use e3::inax::synthetic::synthetic_net;
use e3::inax::{trace_inference, InaxConfig};

fn main() {
    // Paper defaults: 8 inputs, 4 outputs, 30 hidden, sparsity 0.2.
    let net = synthetic_net(8, 4, 30, 0.2, 5);
    println!(
        "network: {} compute nodes, {} connections, {} levels\n",
        net.num_compute_nodes(),
        net.num_connections(),
        net.levels().len()
    );

    for num_pe in [4usize, 12] {
        let config = InaxConfig::builder().num_pe(num_pe).build();
        let trace = trace_inference(&config, &net);
        let utilization = trace.profile.pe_utilization().rate();
        println!(
            "{num_pe} PEs — {} waves, {} wall cycles, U(PE) {:.1}%   (# busy, . idle, | barrier)",
            trace.profile.waves,
            trace.profile.wall_cycles,
            100.0 * utilization
        );
        print!("{}", trace.render_timeline(1));
        println!();
    }

    println!(
        "the heuristic (PE = output width = 4) keeps the array dense; \
         over-provisioning only adds idle rows (paper §V-A)."
    );
}
