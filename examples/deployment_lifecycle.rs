//! The full edge-deployment lifecycle in one program:
//!
//! 1. evolve a controller on-device (E3 with the INAX backend);
//! 2. checkpoint the population to JSON (survives a power cycle);
//! 3. restore and keep tuning under *shifted* conditions — sensor
//!    noise and a slower control loop (the paper's model-tuning
//!    story);
//! 4. quantize the champion for the fixed-point PE datapath and check
//!    the accuracy cost.
//!
//! ```text
//! cargo run --release --example deployment_lifecycle
//! ```

use e3::envs::wrappers::{ActionRepeat, ObservationNoise};
use e3::envs::{run_episode, CartPole, Environment};
use e3::inax::quant::{evaluate_fixed_point, FixedPointFormat};
use e3::inax::IrregularNet;
use e3::neat::{DecodeError, NeatConfig, Population, PopulationSnapshot};

/// Fallible population evaluation, mirroring the platform's
/// `try_evaluate_population`: a malformed genome surfaces as a typed
/// error instead of a panic.
fn try_evaluate_population(
    population: &mut Population,
    env: &mut dyn Environment,
    seed: u64,
) -> Result<f64, DecodeError> {
    let mut fitnesses = Vec::with_capacity(population.genomes().len());
    for genome in population.genomes() {
        let mut net = genome.decode()?;
        let mut policy = |obs: &[f64]| net.activate(obs);
        fitnesses.push(run_episode(env, &mut policy, seed).total_reward);
    }
    population.assign_fitnesses(fitnesses);
    Ok(population.best().map_or(f64::NEG_INFINITY, |b| b.fitness))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. learn on-device -------------------------------------------------
    let config = NeatConfig::builder(4, 2).population_size(80).build();
    let mut population = Population::new(config, 21);
    let mut env = CartPole::new();
    for generation in 0..30 {
        let best = try_evaluate_population(&mut population, &mut env, 500 + generation)?;
        if best >= 475.0 {
            println!("learned cartpole in {generation} generations (best {best})");
            break;
        }
        population.evolve();
    }

    // --- 2. checkpoint ------------------------------------------------------
    let snapshot = PopulationSnapshot::capture(&population);
    let json = serde_json::to_string(&snapshot).expect("snapshots serialize");
    println!("checkpoint captured: {} bytes of JSON", json.len());

    // --- 3. power-cycle, then tune under shifted conditions ----------------
    let restored: PopulationSnapshot = serde_json::from_str(&json).expect("snapshots parse");
    let mut tuned = restored.restore(99);
    // The deployed plant differs: noisy sensors, half-rate control.
    let mut shifted = ActionRepeat::new(ObservationNoise::new(CartPole::new(), 0.1), 3);
    let before = try_evaluate_population(&mut tuned, &mut shifted, 900)?;
    let mut after = before;
    for generation in 0..20 {
        tuned.evolve();
        after = try_evaluate_population(&mut tuned, &mut shifted, 900 + generation)?;
        if after >= 240.0 {
            break;
        }
    }
    println!(
        "model tuning on the shifted plant: {before:.0} -> {after:.0} \
         (episode capped at 250 wrapped steps)"
    );

    // --- 4. quantize the champion for the PE datapath ----------------------
    let champion = tuned.best().expect("evaluated").genome.clone();
    let hw = IrregularNet::try_from(&champion)?;
    let probe = vec![0.01, -0.02, 0.03, 0.0];
    let exact = hw.evaluate(&probe);
    for format in [
        FixedPointFormat::Q4_4,
        FixedPointFormat::Q8_8,
        FixedPointFormat::Q8_16,
    ] {
        let q = evaluate_fixed_point(&hw, &probe, format);
        let err: f64 = exact
            .iter()
            .zip(&q)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!(
            "Q{}.{:<2}: max output error {err:.6} ({} bits/word)",
            format.integer_bits,
            format.frac_bits,
            format.total_bits()
        );
    }
    println!(
        "champion: {} nodes, {} connections — small enough for a {}-byte weight stream",
        hw.num_compute_nodes() + hw.num_inputs(),
        hw.num_connections(),
        hw.weight_stream_bytes()
    );
    Ok(())
}
