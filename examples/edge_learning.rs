//! Model-replacement scenario (paper §I): an autonomous agent is
//! deployed to the edge and receives **new tasks for which no trained
//! model exists**. NEAT starts from a minimal two-layer genome and
//! grows whatever topology each task needs — no cloud round-trip, no
//! hand-designed network.
//!
//! The example deploys one E3 device against three successive tasks
//! with different observation/action spaces and reports what topology
//! evolution settled on for each.
//!
//! ```text
//! cargo run --release --example edge_learning
//! ```

use e3::envs::EnvId;
use e3::platform::{BackendKind, E3Config, E3Platform};

fn main() {
    println!("E3 edge learning — model replacement across unseen tasks\n");
    let tasks = [EnvId::CartPole, EnvId::MountainCar, EnvId::Pendulum];

    for task in tasks {
        // A fresh model is evolved per task: the network structure is
        // not transferred because the task's sensor/action spaces
        // differ — exactly the situation where fixed-topology methods
        // need a human in the loop and NEAT does not.
        let config = E3Config::builder(task)
            .population_size(150)
            .max_generations(200)
            .build();
        let outcome = E3Platform::new(config, BackendKind::Inax, 7)
            .run()
            .expect("feed-forward population");

        let champion = outcome_champion_summary(&outcome);
        println!("{task}:");
        println!(
            "  solved {} in {} generations ({:.2} s modeled on-device time)",
            if outcome.solved { "yes" } else { "no " },
            outcome.generations_run,
            outcome.modeled_seconds
        );
        println!(
            "  best fitness {:.1} (required {:.0})",
            outcome.best_fitness,
            task.required_fitness()
        );
        println!("  evolved topology: {champion}");
        println!(
            "  avg population complexity: {:.1} nodes / {:.1} connections (cf. Table V)",
            outcome.complexity.avg_nodes(),
            outcome.complexity.avg_connections()
        );
        println!();
    }
}

fn outcome_champion_summary(outcome: &e3::platform::RunOutcome) -> String {
    // The trace records best-so-far fitness; the structural summary
    // comes from the complexity statistics of the final generations.
    format!(
        "irregular feed-forward net, density {:.2} at the final generation",
        outcome
            .complexity
            .density_trace()
            .last()
            .copied()
            .unwrap_or(0.0)
    )
}
