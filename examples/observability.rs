//! Launch the live observability plane over a real archipelago run,
//! print the curl lines to poke it with, and serve until the run
//! completes.
//!
//! ```text
//! cargo run --release --example observability
//! # in another terminal, while it runs:
//! #   curl -s http://127.0.0.1:PORT/metrics | grep e3_island
//! #   curl -s http://127.0.0.1:PORT/healthz
//! #   curl -sN http://127.0.0.1:PORT/runs/run-0000/events
//! ```
//!
//! Set `E3_SERVE_HOLD_SECS` to keep serving after the run finishes
//! (for leisurely curling); default is a 3-second grace period.

use e3::envs::EnvId;
use e3::islands::{IslandsConfig, Pickup, RunManager, SubmitOptions};
use e3::platform::{BackendKind, E3Config};
use e3::serve::{serve, ServeOptions};
use e3::telemetry::SharedRegistry;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn main() {
    // A workload big enough to watch live: 4 islands x 40 generations.
    let base = E3Config::builder(EnvId::CartPole)
        .population_size(100)
        .max_generations(40)
        .target_fitness(f64::INFINITY)
        .threads(2)
        .build();
    let config = IslandsConfig::builder(base)
        .backend(BackendKind::Cpu)
        .islands(4)
        .migration_interval(5)
        .emigrants(2)
        .seed(42)
        .build();

    let manager = Arc::new(Mutex::new(RunManager::with_registry(SharedRegistry::new())));
    let server = serve(Arc::clone(&manager), ServeOptions::default()).expect("bind server");
    let url = server.url();

    let id = manager
        .lock()
        .expect("manager lock")
        .submit(
            config,
            SubmitOptions {
                drivers: 2,
                pickup: Pickup::Fifo,
                ndjson: None,
                flight_recorder: None,
                sample_interval: None,
            },
        )
        .expect("submit run");

    println!("observability plane up at {url}");
    println!("  curl -s {url}/metrics | grep e3_island");
    println!("  curl -s {url}/healthz");
    println!("  curl -s {url}/runs/{id}");
    println!("  curl -sN {url}/runs/{id}/events      # streaming NDJSON tail");
    println!();

    let outcome = manager
        .lock()
        .expect("manager lock")
        .join(id)
        .expect("run is known")
        .expect("run succeeds");
    let (best_island, best) = outcome.best.as_ref().expect("run produced a champion");
    let total_generations: usize = outcome.islands.iter().map(|i| i.generations_run).sum();
    println!(
        "run {id} finished: best fitness {:.2} on island {best_island} after {} total generations",
        best.fitness, total_generations
    );

    let hold = std::env::var("E3_SERVE_HOLD_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3u64);
    println!("serving the finished run for {hold}s more (E3_SERVE_HOLD_SECS to change)...");
    std::thread::sleep(Duration::from_secs(hold));
}
