//! Quickstart: evolve a CartPole controller on the INAX-accelerated
//! E3 platform and compare against the software baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use e3::envs::EnvId;
use e3::platform::{BackendKind, E3Config, E3Platform};

fn main() {
    println!("E3 quickstart — evolving a CartPole controller\n");

    // The paper's defaults: population 200, PE = output nodes, PU = 50.
    // A smaller population keeps this example snappy.
    let config = |_| {
        E3Config::builder(EnvId::CartPole)
            .population_size(100)
            .max_generations(30)
            .build()
    };

    // Same seed ⇒ both backends follow the identical evolutionary
    // trajectory; only the (modeled) runtime differs. `run` is
    // fallible: a malformed genome surfaces as an error, not a panic.
    let cpu = E3Platform::new(config(()), BackendKind::Cpu, 42)
        .run()
        .expect("feed-forward population");
    let inax = E3Platform::new(config(()), BackendKind::Inax, 42)
        .run()
        .expect("feed-forward population");

    println!(
        "task solved: {} (best fitness {:.1}, target {:.0})",
        cpu.solved,
        cpu.best_fitness,
        EnvId::CartPole.required_fitness()
    );
    println!("generations: {}", cpu.generations_run);
    println!();
    println!("modeled runtime:");
    println!("  E3-CPU : {:>8.3} s", cpu.modeled_seconds);
    println!("  E3-INAX: {:>8.3} s", inax.modeled_seconds);
    println!(
        "  speedup: {:>8.1}x (paper headline: ~30x averaged over the suite)",
        cpu.modeled_seconds / inax.modeled_seconds
    );
    println!();

    let profile = inax.profile;
    println!("E3-INAX timing profile (cf. paper Fig. 9(d) — balanced):");
    for (name, seconds) in profile.entries() {
        println!("  {:<10} {:>6.2}%", name, 100.0 * seconds / profile.total());
    }

    let report = inax.hw_report.expect("INAX runs report HW accounting");
    println!();
    println!("INAX hardware accounting:");
    println!("  total cycles      : {}", report.total_cycles);
    println!("  inference waves   : {}", report.steps);
    println!(
        "  PU utilization    : {:.1}%",
        100.0 * report.pu_utilization.rate()
    );
    println!(
        "  PE utilization    : {:.1}%",
        100.0 * report.pe_utilization.rate()
    );

    let champion =
        "the champion genome can be decoded with `genome.decode()` and deployed anywhere";
    println!("\n{champion}");
}
