//! Design-space exploration of the INAX accelerator: sweep PE and PU
//! counts for a workload, check the paper's sizing heuristics (§V),
//! and verify the chosen design fits the ZCU104.
//!
//! ```text
//! cargo run --release --example accelerator_explorer
//! ```

use e3::inax::cluster::{analyze_pu_parallelism, EpisodeWork};
use e3::inax::synthetic::synthetic_population_with_mutations;
use e3::inax::{schedule_inference, InaxConfig};
use e3::platform::{FpgaBudget, FpgaResources};

fn main() {
    // Workload: the paper's microbenchmark shape — 8 inputs, 4 outputs
    // (so the PE heuristic says 4 PEs), 30 hidden nodes, sparsity 0.2,
    // population 200 (so the PU heuristic says 200, 100, 50, …).
    let (inputs, outputs, hidden, sparsity, population) = (8, 4, 30, 0.2, 200usize);
    let nets =
        synthetic_population_with_mutations(population, inputs, outputs, hidden, sparsity, 0, 3);

    println!(
        "INAX design-space exploration ({population} individuals, {inputs}->{hidden}->{outputs})\n"
    );

    // --- PE sweep (one PU): paper §V-A. ---
    println!("PE sweep (U(PE) peaks at k = {outputs} and its divisions):");
    println!("  {:>4} {:>12} {:>8}", "#PE", "cycles/infer", "U(PE)");
    for num_pe in 1..=8 {
        let config = InaxConfig::builder().num_pe(num_pe).build();
        let (mut cycles, mut active, mut total) = (0u64, 0u64, 0u64);
        for net in &nets {
            let p = schedule_inference(&config, net);
            cycles += p.wall_cycles;
            active += p.pe_active_cycles;
            total += p.pe_total_cycles;
        }
        println!(
            "  {:>4} {:>12.1} {:>7.1}%",
            num_pe,
            cycles as f64 / nets.len() as f64,
            100.0 * active as f64 / total as f64
        );
    }

    // --- PU sweep: paper §V-B. ---
    let config = InaxConfig::builder().num_pe(outputs).build();
    let work: Vec<EpisodeWork> = nets
        .iter()
        .map(|net| EpisodeWork {
            inference_cycles: schedule_inference(&config, net).wall_cycles,
            steps: 100,
        })
        .collect();
    println!("\nPU sweep (U(PU) peaks at divisors of p = {population}):");
    println!("  {:>4} {:>14} {:>8}", "#PU", "total cycles", "U(PU)");
    for num_pu in [25, 40, 49, 50, 66, 67, 99, 100, 150, 200] {
        let (cycles, util) = analyze_pu_parallelism(num_pu, &work);
        println!(
            "  {:>4} {:>14} {:>7.1}%",
            num_pu,
            cycles,
            100.0 * util.rate()
        );
    }

    // --- Fit check on the ZCU104. ---
    println!("\nZCU104 fit check for candidate designs:");
    let budget = FpgaBudget::zcu104();
    for (label, num_pu, num_pe) in [
        ("heuristic (paper E3_a)", 50, outputs),
        ("wide PE (E3_b)", 50, 2 * outputs),
        ("max PU", 100, outputs),
    ] {
        let design = InaxConfig::builder().num_pu(num_pu).num_pe(num_pe).build();
        let used = FpgaResources::of_inax(&design);
        let (lut, ff, dsp, bram) = budget.utilization(&used);
        println!(
            "  {:<22} PU={:<3} PE={:<2} LUT {:>5.1}% FF {:>5.1}% DSP {:>5.1}% BRAM {:>5.1}%  fits: {}",
            label,
            num_pu,
            num_pe,
            100.0 * lut,
            100.0 * ff,
            100.0 * dsp,
            100.0 * bram,
            budget.fits(&used)
        );
    }
}
