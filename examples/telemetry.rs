//! Telemetry walk-through: instrument a run with an in-memory
//! collector, stream another as NDJSON, and drive a backend directly
//! through `BackendBuilder`.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use e3::envs::EnvId;
use e3::platform::{BackendKind, E3Config, E3Platform, EvalBackend};
use e3::telemetry::{Collector, MemoryCollector, NdjsonWriter};

fn main() {
    let env = EnvId::CartPole;
    let config = |_| {
        E3Config::builder(env)
            .population_size(60)
            .max_generations(8)
            .build()
    };

    // 1. Capture a run in memory and read the per-generation records.
    let mut collector = MemoryCollector::new();
    let outcome = E3Platform::new(config(()), BackendKind::Inax, 42)
        .run_with(&mut collector)
        .expect("feed-forward population");
    println!("per-generation telemetry ({env}, E3-INAX):");
    println!(
        "  {:>3} {:>10} {:>10} {:>8} {:>12}",
        "gen", "best", "mean", "species", "modeled s"
    );
    for g in collector.generations() {
        println!(
            "  {:>3} {:>10.2} {:>10.2} {:>8} {:>12.5}",
            g.generation, g.best_fitness, g.mean_fitness, g.species, g.modeled_seconds
        );
    }
    let summary = collector.summaries().last().expect("run emits a summary");
    println!(
        "summary: solved={} best={:.1} modeled={:.4}s energy={:.2} J\n",
        summary.solved,
        summary.best_fitness,
        outcome.modeled_seconds,
        summary.energy_joules.unwrap_or(0.0)
    );

    // 2. The same events stream as NDJSON — one JSON object per line,
    //    the format `repro --telemetry <path>` writes.
    let mut ndjson = NdjsonWriter::new(Vec::new());
    for event in collector.events().iter().take(3) {
        ndjson.record(event).expect("vec sink cannot fail");
    }
    println!("first NDJSON lines of the same run:");
    for line in String::from_utf8(ndjson.into_inner()).unwrap().lines() {
        let preview: String = line.chars().take(100).collect();
        println!("  {preview}...");
    }
    println!();

    // 3. Backends can be built and driven without a platform: the
    //    builder mirrors `InaxConfig::builder()`, and evaluation is
    //    fallible instead of panicking on malformed genomes.
    let mut backend = BackendKind::Inax.builder().build();
    let genomes = E3Platform::new(config(()), BackendKind::Inax, 42)
        .population()
        .genomes()
        .to_vec();
    match backend.try_evaluate_population(&genomes, env, 1042) {
        Ok(eval) => {
            let best = eval.fitnesses.iter().cloned().fold(f64::MIN, f64::max);
            println!(
                "direct evaluation via BackendBuilder: {} genomes, best fitness {:.2}, {:.5} modeled s",
                genomes.len(),
                best,
                eval.eval_seconds + eval.env_seconds
            );
        }
        Err(e) => println!("evaluation rejected: {e}"),
    }

    println!("\ntelemetry is write-only: results are bit-identical with any collector installed");
}
