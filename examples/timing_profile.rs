//! Reproduce the paper's two timing pies side by side: Fig. 1(b)
//! (software-only NEAT: "evaluate" swallows the runtime) and
//! Fig. 9(d) (E3-INAX: balanced across functions).
//!
//! ```text
//! cargo run --release --example timing_profile
//! ```

use e3::envs::EnvId;
use e3::platform::{BackendKind, E3Config, E3Platform, FunctionProfile};

fn bar(fraction: f64) -> String {
    let filled = (fraction * 40.0).round() as usize;
    format!("{}{}", "█".repeat(filled), "·".repeat(40 - filled))
}

fn render(title: &str, profile: &FunctionProfile) {
    println!("{title}");
    let total = profile.total();
    for (name, seconds) in profile.entries() {
        let fraction = seconds / total;
        println!(
            "  {:<10} {} {:>6.2}%",
            name,
            bar(fraction),
            100.0 * fraction
        );
    }
    println!();
}

fn main() {
    let env = EnvId::MountainCar;
    let config = |_| {
        E3Config::builder(env)
            .population_size(100)
            .max_generations(20)
            .build()
    };

    let cpu = E3Platform::new(config(()), BackendKind::Cpu, 11)
        .run()
        .expect("feed-forward population");
    let inax = E3Platform::new(config(()), BackendKind::Inax, 11)
        .run()
        .expect("feed-forward population");

    println!(
        "timing profiles on {env} ({} generations)\n",
        cpu.generations_run
    );
    render(
        "Fig. 1(b) — NEAT on CPU (evaluate dominates):",
        &cpu.profile,
    );
    render("Fig. 9(d) — E3-INAX (balanced):", &inax.profile);
    println!(
        "evaluate share: {:.1}% (CPU) -> {:.1}% (INAX); speedup {:.1}x",
        100.0 * cpu.profile.evaluate_fraction(),
        100.0 * inax.profile.evaluate_fraction(),
        cpu.modeled_seconds / inax.modeled_seconds
    );
}
