//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Implements the API surface this workspace uses — [`channel`]
//! (MPMC unbounded channels with disconnect semantics) and [`deque`]
//! (the `Injector`/`Worker`/`Stealer` work-stealing triple) — over
//! `std::sync` primitives and the vendored `parking_lot`. The lock-free
//! fast paths of the real crate are replaced with short critical
//! sections; blocking behaviour, ownership rules, and the `Steal`
//! contract match upstream.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use parking_lot::{Condvar, Mutex};
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half; clone freely across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely across threads.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `message`, failing only when all receivers dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(message));
            }
            self.shared.queue.lock().push_back(message);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake receivers so they observe disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock();
            loop {
                if let Some(message) = queue.pop_front() {
                    return Ok(message);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                self.shared.ready.wait(&mut queue);
            }
        }

        /// Dequeues a message if one is ready right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock();
            if let Some(message) = queue.pop_front() {
                return Ok(message);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

pub mod deque {
    //! Work-stealing deques: a global [`Injector`] plus per-worker
    //! [`Worker`]/[`Stealer`] pairs.

    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Arc;

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// Whether the source was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A global FIFO task injector shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().push_back(task);
        }

        /// Steals the front task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`'s local deque, returning
        /// the first of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock();
            let Some(first) = queue.pop_front() else {
                return Steal::Empty;
            };
            // Move up to half of the remainder, as upstream does.
            let extra = queue.len().div_ceil(2).min(16);
            let mut local = dest.inner.lock();
            for _ in 0..extra {
                match queue.pop_front() {
                    Some(task) => local.push_back(task),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().len()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> fmt::Debug for Injector<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Injector { .. }")
        }
    }

    /// The owner end of a worker's deque: push and pop are reserved for
    /// the owning thread; other threads steal through [`Stealer`]s.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker deque.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues a task on the owner side.
        pub fn push(&self, task: T) {
            self.inner.lock().push_back(task);
        }

        /// Dequeues the next task on the owner side.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().pop_front()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Worker::new_fifo()
        }
    }

    impl<T> fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Worker { .. }")
        }
    }

    /// A handle for stealing from another worker's deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals the task at the opposite end from the owner.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().pop_back() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Stealer { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::deque::{Injector, Steal, Worker};
    use std::sync::Arc;

    #[test]
    fn channel_is_fifo_across_threads() {
        let (tx, rx) = channel::unbounded();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().expect("sender alive")).collect();
        producer.join().expect("producer finishes");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_reports_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }

    #[test]
    fn injector_batch_steal_fills_local_deque() {
        let injector = Injector::new();
        for i in 0..10 {
            injector.push(i);
        }
        let local = Worker::new_fifo();
        let first = injector.steal_batch_and_pop(&local);
        assert_eq!(first, Steal::Success(0));
        assert!(!local.is_empty(), "batch moved tasks locally");
        let mut rest: Vec<i32> = std::iter::from_fn(|| local.pop()).collect();
        while let Steal::Success(task) = injector.steal() {
            rest.push(task);
        }
        rest.sort_unstable();
        assert_eq!(rest, (1..10).collect::<Vec<_>>());
    }

    #[test]
    fn stealers_drain_a_worker_concurrently() {
        let owner = Worker::new_fifo();
        for i in 0..1000 {
            owner.push(i);
        }
        let stealer = Arc::new(owner.stealer());
        let thieves: Vec<_> = (0..4)
            .map(|_| {
                let stealer = Arc::clone(&stealer);
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    while let Steal::Success(_) = stealer.steal() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let stolen: usize = thieves.into_iter().map(|t| t.join().unwrap()).sum();
        let mut remaining = 0usize;
        while owner.pop().is_some() {
            remaining += 1;
        }
        assert_eq!(stolen + remaining, 1000, "every task claimed exactly once");
    }
}
