/root/repo/vendor/crossbeam/target/debug/deps/parking_lot-96757e83175e55ab.d: /root/repo/vendor/parking_lot/src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/libparking_lot-96757e83175e55ab.rlib: /root/repo/vendor/parking_lot/src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/libparking_lot-96757e83175e55ab.rmeta: /root/repo/vendor/parking_lot/src/lib.rs

/root/repo/vendor/parking_lot/src/lib.rs:
