/root/repo/vendor/crossbeam/target/debug/deps/crossbeam-b539ad0a1619efef.d: src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/crossbeam-b539ad0a1619efef: src/lib.rs

src/lib.rs:
