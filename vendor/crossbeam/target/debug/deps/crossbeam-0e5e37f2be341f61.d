/root/repo/vendor/crossbeam/target/debug/deps/crossbeam-0e5e37f2be341f61.d: src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/libcrossbeam-0e5e37f2be341f61.rlib: src/lib.rs

/root/repo/vendor/crossbeam/target/debug/deps/libcrossbeam-0e5e37f2be341f61.rmeta: src/lib.rs

src/lib.rs:
