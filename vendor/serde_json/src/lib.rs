//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] model to JSON text and parses it back.
//!
//! Supports exactly the surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`] and [`from_value`]
//! — with `serde_json`-compatible conventions: shortest-round-trip
//! float formatting (Rust's `{}` formatting), non-finite floats as
//! `null`, and struct fields in declaration order.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a value into the serde data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from the serde data model.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    from_value(&value)
}

// --- Writer -----------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                if *v == v.trunc() && v.abs() < 1e15 {
                    // Match serde_json: whole floats keep a ".0".
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<bool>(" true ").unwrap(), true);
    }

    #[test]
    fn round_trips_collections() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u64>>>(&json).unwrap(), v);
    }

    #[test]
    fn escapes_strings() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_indents() {
        let v = vec![1u64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }
}
