//! Offline stand-in for `criterion`.
//!
//! Mirrors the macro and builder surface the `e3-bench` benches use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, [`black_box`])
//! but runs every benchmark body exactly once and prints its wall
//! time. This keeps `cargo bench`/`cargo test` fast and dependency
//! free; it does no statistical sampling.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&id.to_string(), &mut body);
        self
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the statistical sample size (ignored by the stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&format!("{}/{}", self.name, id), &mut body);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let start = Instant::now();
        let mut bencher = Bencher { iterations: 0 };
        body(&mut bencher, input);
        report(&label, start, bencher.iterations);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
}

impl Bencher {
    /// Runs the routine (once, in the stand-in).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iterations += 1;
        black_box(routine());
    }
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, body: &mut F) {
    let start = Instant::now();
    let mut bencher = Bencher { iterations: 0 };
    body(&mut bencher);
    report(label, start, bencher.iterations);
}

fn report(label: &str, start: Instant, iterations: u64) {
    eprintln!(
        "bench {label}: {:?} ({iterations} iteration{})",
        start.elapsed(),
        if iterations == 1 { "" } else { "s" }
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies_once() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("a", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut seen = 0;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &x| {
            b.iter(|| seen = x)
        });
        group.finish();
        assert_eq!(seen, 7);
    }
}
