//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implements just the shapes this workspace uses, parsing the derive
//! input token stream by hand (the real `syn`/`quote` crates are not
//! available offline):
//!
//! * structs with named fields (honouring `#[serde(skip)]`);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * unit structs;
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching `serde_json`'s default representation).
//!
//! Generics are not supported and produce a compile error naming the
//! offending type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Input {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// --- Parsing ----------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips attributes, returning true if any was `#[serde(skip)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                skip |= attr_is_serde_skip(&g.stream());
            }
        }
        skip
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Skips type tokens until a comma at angle-bracket depth zero (or
    /// the end of the stream).
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn attr_is_serde_skip(stream: &TokenStream) -> bool {
    let mut iter = stream.clone().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_visibility();
    let keyword = cur.expect_ident()?;
    let name = cur.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde stand-in derive: generics on `{name}` are unsupported"));
        }
    }
    match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Input::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::UnitStruct { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::Enum { name, variants: parse_variants(g.stream())? })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for `{other} {name}`")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let skip = cur.skip_attrs();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident()?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        cur.skip_type();
        cur.next(); // consume trailing comma if present
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    fields + usize::from(saw_token)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        cur.skip_attrs();
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident()?;
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.next();
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cur.next();
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == ',' {
                cur.next();
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// --- Code generation --------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } if fields.iter().all(|f| f.skip) => {
            impl_serialize(name, "::serde::Value::Object(Vec::new())")
        }
        Input::NamedStruct { name, fields } => {
            let mut body = String::from(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "fields.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Object(fields)");
            impl_serialize(name, &body)
        }
        Input::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_serialize(name, &format!("::serde::Value::Array(vec![{}])", items.join(", ")))
        }
        Input::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_field_constructors(fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
        } else {
            out.push_str(&format!(
                "{0}: ::serde::Deserialize::from_value(::serde::field_or_null({source}, \"{0}\"))\
                 .map_err(|e| ::serde::DeError::new(format!(\"field `{0}`: {{e}}\")))?,\n",
                f.name
            ));
        }
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let body = format!(
                "if !matches!(value, ::serde::Value::Object(_)) {{\n\
                     return Err(::serde::DeError::expected(\"object ({name})\", value));\n\
                 }}\n\
                 Ok({name} {{\n{}}})",
                named_field_constructors(fields, "value")
            );
            impl_deserialize(name, &body)
        }
        Input::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        ),
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                         Ok({name}({})),\n\
                     _ => Err(::serde::DeError::expected(\"array of {arity} ({name})\", value)),\n\
                 }}",
                items.join(", ")
            );
            impl_deserialize(name, &body)
        }
        Input::UnitStruct { name } => impl_deserialize(name, &format!("Ok({name})")),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms
                        .push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {arity} => \
                                     Ok({name}::{vn}({})),\n\
                                 _ => Err(::serde::DeError::expected(\
                                     \"array of {arity} ({name}::{vn})\", inner)),\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                             if !matches!(inner, ::serde::Value::Object(_)) {{\n\
                                 return Err(::serde::DeError::expected(\
                                     \"object ({name}::{vn})\", inner));\n\
                             }}\n\
                             Ok({name}::{vn} {{\n{}}})\n\
                         }},\n",
                        named_field_constructors(fields, "inner")
                    )),
                }
            }
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::DeError::new(format!(\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
                         let (tag, inner) = &tagged[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {data_arms}\
                             other => Err(::serde::DeError::new(format!(\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }},\n\
                     _ => Err(::serde::DeError::expected(\"enum ({name})\", value)),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
