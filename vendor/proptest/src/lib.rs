//! Offline stand-in for `proptest`.
//!
//! Provides the macro surface this workspace's property tests use
//! (`proptest!`, `prop_assert!`, `prop_assert_eq!`, `any`, ranges,
//! tuples, `collection::vec`) running each test body over a
//! deterministic sequence of generated cases. There is no shrinking:
//! a failing case panics immediately with the generated inputs left to
//! the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`cases` is the only knob the stand-in honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The per-test deterministic generator.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Seeds the runner from the test name, so every test sees a fixed
    /// but distinct case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { rng: StdRng::seed_from_u64(seed) }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<$ty>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        // Finite, broadly ranged values (no NaN/inf: the consumers
        // assert finite math).
        runner.rng().gen_range(-1e6f64..1e6)
    }
}

/// Strategy producing unconstrained values of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_strategy_range {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, runner: &mut TestRunner) -> $ty {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, runner: &mut TestRunner) -> $ty {
                runner.rng().gen_range(*self.start()..*self.end())
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Element-count specifications accepted by [`vec`]: a fixed size
    /// or a range of sizes.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(*self.start()..=*self.end())
        }
    }

    /// Strategy for `Vec<T>` with the given element strategy and size.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates vectors of `element` values with lengths drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = self.size.pick(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Boolean property assertion (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn` runs its body for every
/// generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)*
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            n in 3usize..9,
            x in -1.5f64..2.5,
            flag in any::<bool>(),
            items in crate::collection::vec(0u64..10, 2..5),
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
            prop_assert!(flag == true || flag == false);
            prop_assert!(items.len() >= 2 && items.len() < 5);
            prop_assert!(items.iter().all(|&v| v < 10));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRunner::deterministic("x");
        let mut b = crate::TestRunner::deterministic("x");
        let s = 0usize..100;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
