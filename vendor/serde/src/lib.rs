//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors a minimal, dependency-free
//! re-implementation of the serde surface it actually uses: the
//! [`Serialize`] / [`Deserialize`] traits, a JSON-shaped [`Value`]
//! data model, and (behind the `derive` feature) `#[derive(Serialize,
//! Deserialize)]` for structs and enums.
//!
//! The data model intentionally mirrors `serde_json`'s conventions so
//! the NDJSON telemetry schema stays conventional:
//!
//! * structs → objects with fields in declaration order;
//! * unit enum variants → strings (`"Cpu"`);
//! * newtype variants → `{"Variant": value}`;
//! * struct variants → `{"Variant": {..}}`;
//! * newtype structs are transparent (serialize as their inner value);
//! * maps with integer keys → objects with stringified keys.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative values).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// Convenience for "expected X" errors.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError::new(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the serde data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// --- Derive support helpers (used by generated code). -----------------

/// Fetches a required object field during derived deserialization.
pub fn field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    value
        .get(name)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Fetches an optional object field (missing ⇒ `Null`), so derived
/// `Option` fields tolerate omission.
pub fn field_or_null<'a>(value: &'a Value, name: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    value.get(name).unwrap_or(&NULL)
}

// --- Primitive impls. -------------------------------------------------

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value.as_u64().ok_or_else(|| DeError::expected("unsigned integer", value))?;
                <$ty>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value.as_i64().ok_or_else(|| DeError::expected("integer", value))?;
                <$ty>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().map(|v| v as f32).ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value.as_str().ok_or_else(|| DeError::expected("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", value)),
        }
    }
}

// --- Composite impls. -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", value)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let expect = 0usize $(+ { let _ = $idx; 1 })+;
                        if items.len() != expect {
                            return Err(DeError::new(format!(
                                "expected {expect}-tuple, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("array (tuple)", value)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys: rendered as JSON object keys (strings).
pub trait MapKey: Sized {
    /// The key as an object-field name.
    fn to_key(&self) -> String;
    /// Parses the key back from a field name.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

macro_rules! impl_map_key_int {
    ($($ty:ty),*) => {$(
        impl MapKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::new(format!("invalid integer key `{key}`")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", value)),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", value)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Some(3u64).to_value(), Value::UInt(3));
    }

    #[test]
    fn array_round_trip() {
        let v = vec![1u64, 2, 3].to_value();
        assert_eq!(Vec::<u64>::from_value(&v).unwrap(), vec![1, 2, 3]);
        let arr: [f64; 2] = [0.5, -1.5];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(7usize, vec![1u64]);
        let v = m.to_value();
        assert_eq!(v.get("7"), Some(&Value::Array(vec![Value::UInt(1)])));
        assert_eq!(BTreeMap::<usize, Vec<u64>>::from_value(&v).unwrap(), m);
    }
}
