/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-1757d8927c3b9f7c.d: src/lib.rs

/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-1757d8927c3b9f7c: src/lib.rs

src/lib.rs:
