/root/repo/vendor/parking_lot/target/debug/deps/parking_lot-44670392adfa9cdd.d: src/lib.rs

/root/repo/vendor/parking_lot/target/debug/deps/libparking_lot-44670392adfa9cdd.rlib: src/lib.rs

/root/repo/vendor/parking_lot/target/debug/deps/libparking_lot-44670392adfa9cdd.rmeta: src/lib.rs

src/lib.rs:
