//! Offline stand-in for `parking_lot` 0.12.
//!
//! Implements the poison-free lock API surface this workspace uses —
//! [`Mutex`], [`RwLock`], and [`Condvar`] — as thin wrappers over
//! `std::sync`. Lock poisoning is swallowed (a panicked holder does
//! not wedge later lockers), which matches `parking_lot` semantics;
//! the fairness and inline-fast-path properties of the real crate are
//! not reproduced, only its interface and blocking behaviour.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` returns the guard directly
/// (no poison `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection lets
/// [`Condvar::wait`] temporarily release and reacquire the underlying
/// std guard in place.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard holds the lock");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A readers-writer lock with poison-free guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Blocks until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let clone = Arc::clone(&shared);
        let waiter = std::thread::spawn(move || {
            let (lock, cond) = &*clone;
            let mut ready = lock.lock();
            while !*ready {
                cond.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cond) = &*shared;
        *lock.lock() = true;
        cond.notify_all();
        waiter.join().expect("waiter finishes");
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let clone = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
