//! Offline stand-in for `rand` 0.8.
//!
//! Implements the API surface this workspace uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`] — over a
//! deterministic xoshiro256++ generator seeded via SplitMix64. The
//! random *streams* differ from upstream `rand`, but every consumer in
//! this repository only relies on determinism per seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64 expansion,
    /// as in upstream `rand`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut splitmix = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types a [`Rng`] can produce via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + value) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + value) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$ty as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`], mirroring upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic per seed (the only property this repository's
    /// consumers rely on); the stream differs from upstream `rand`'s
    /// ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's raw internal state, for checkpointing.
        ///
        /// Together with [`StdRng::from_state`] this lets callers
        /// persist a generator mid-stream and later resume it
        /// bit-identically — the property `e3-store` relies on for
        /// crash-safe run resume.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state captured by
        /// [`StdRng::state`]. The all-zero state is unreachable from
        /// any seed (see [`SeedableRng::from_seed`]) and is mapped to
        /// the same fallback constants, so a round trip through
        /// `state()`/`from_state()` is always exact for real states.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return <Self as SeedableRng>::from_seed([0u8; 32]);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // Avoid the all-zero state, which xoshiro cannot escape.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Random selection from slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniformly random mutable element, or `None` if empty.
        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let index = rng.gen_range(0..self.len());
                self.get_mut(index)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream_exactly() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..37 {
            rng.next_u64_pub();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64_pub(), resumed.next_u64_pub());
        }
        // The unreachable all-zero state maps to the same generator
        // `from_seed` would produce for it.
        let a = StdRng::from_state([0; 4]);
        let b = StdRng::from_seed([0u8; 32]);
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose_cover_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        assert!(Vec::<usize>::new().choose(&mut rng).is_none());
    }
}
