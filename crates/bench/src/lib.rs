//! # e3-bench — the experiment regeneration harness
//!
//! Two entry points:
//!
//! * the **`repro` binary** prints any (or all) of the paper's tables
//!   and figures as text, optionally as JSON:
//!
//!   ```text
//!   cargo run --release -p e3-bench --bin repro -- all
//!   cargo run --release -p e3-bench --bin repro -- fig9b --full
//!   cargo run --release -p e3-bench --bin repro -- fig11 --json
//!   ```
//!
//! * the **Criterion benches** (`cargo bench`) time the kernels behind
//!   each experiment (INAX scheduling, SA lowering, NEAT generations,
//!   RL updates) so performance regressions in the simulator itself are
//!   visible.
//!
//! The experiment logic itself lives in [`e3_platform::experiments`];
//! this crate only drives it.

pub mod svg;

pub use e3_platform::experiments::Scale;

/// The experiment names `repro` accepts, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "table4",
    "table5",
    "fig1b",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "ablation",
    "exec",
    "plan",
    "jit",
    "batch",
    "islands",
    "serve",
    "generalize",
];

/// Default seed used by `repro` (any seed works; results are
/// deterministic per seed).
pub const DEFAULT_SEED: u64 = 42;
