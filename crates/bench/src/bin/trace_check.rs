//! `trace_check` — validate observability artifacts from a traced run.
//!
//! ```text
//! trace_check TRACE.json [METRICS.prom]
//! trace_check --metrics METRICS.prom
//! trace_check --ndjson TELEMETRY.ndjson
//! ```
//!
//! Checks that `TRACE.json` is a well-formed Chrome trace-event file
//! (the `{"traceEvents": [...]}` shape `repro --trace` and
//! `sweep --trace` emit): the event array is non-empty, every event is
//! a complete-phase (`"ph": "X"`) slice with `name`, `cat`, `ts`,
//! `dur`, `pid`, and `tid`, and end times (`ts + dur`) are
//! monotonically nondecreasing in array order — the tracer records
//! spans in completion order, so a violation means the export is
//! broken, not merely reordered.
//!
//! With a second argument, also checks that `METRICS.prom` parses as
//! Prometheus text exposition: every line is either a `# TYPE`/`# HELP`
//! comment or a `name value` sample with a finite numeric value, and
//! at least one sample is present. `--metrics FILE` runs the
//! exposition check alone (no trace file) — CI uses it to validate
//! scrapes fetched from the live `/metrics` endpoint.
//!
//! `--ndjson FILE` validates an NDJSON telemetry export (the
//! `--telemetry` stream of `repro`): every line must be a JSON object
//! wrapping exactly one known record kind, and every `Generalization`
//! record must carry the full pinned key set with finite fitness
//! numbers and a positive held-out scenario count — a malformed
//! generalization report fails CI here.
//!
//! Exits 0 when everything holds, 1 with a diagnostic on stderr
//! otherwise. CI runs this after a short traced `repro` run.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, metrics_path, ndjson_path) = match args.as_slice() {
        [flag, metrics] if flag == "--metrics" => (None, Some(metrics.as_str()), None),
        [flag, ndjson] if flag == "--ndjson" => (None, None, Some(ndjson.as_str())),
        [trace] => (Some(trace.as_str()), None, None),
        [trace, metrics] => (Some(trace.as_str()), Some(metrics.as_str()), None),
        _ => {
            eprintln!(
                "usage: trace_check TRACE.json [METRICS.prom] | \
                 trace_check --metrics FILE | trace_check --ndjson FILE"
            );
            return ExitCode::from(2);
        }
    };

    if let Some(trace_path) = trace_path {
        if let Err(msg) = check_trace(trace_path) {
            eprintln!("trace_check: {trace_path}: {msg}");
            return ExitCode::FAILURE;
        }
        println!("{trace_path}: OK");
    }
    if let Some(path) = metrics_path {
        if let Err(msg) = check_metrics(path) {
            eprintln!("trace_check: {path}: {msg}");
            return ExitCode::FAILURE;
        }
        println!("{path}: OK");
    }
    if let Some(path) = ndjson_path {
        if let Err(msg) = check_ndjson(path) {
            eprintln!("trace_check: {path}: {msg}");
            return ExitCode::FAILURE;
        }
        println!("{path}: OK");
    }
    ExitCode::SUCCESS
}

/// Record kinds the NDJSON telemetry stream may carry, mirroring
/// `e3_telemetry::TelemetryEvent`.
const NDJSON_KINDS: &[&str] = &[
    "Eval",
    "Exec",
    "Jit",
    "Generation",
    "Utilization",
    "Checkpoint",
    "Resume",
    "Island",
    "Migration",
    "Generalization",
    "Summary",
];

/// Keys every `Jit` record must carry on the wire. A `Jit` record is
/// only ever emitted when the tier did work, so an all-zero record is
/// itself a violation.
const JIT_KEYS: &[&str] = &[
    "generation",
    "backend",
    "compiled",
    "bytes",
    "compile_seconds",
    "fallbacks",
    "activations",
    "resident",
];

/// The `e3_jit_*` series a scrape must carry as a set: seeing one of
/// them without the others means the exporter dropped counters.
const JIT_METRICS: &[&str] = &[
    "e3_jit_plans_compiled_total",
    "e3_jit_bytes_emitted_total",
    "e3_jit_fallbacks_total",
    "e3_jit_hot_activations_total",
    "e3_jit_resident_plans",
    "e3_jit_compile_seconds",
];

/// Keys every `Generalization` record must carry on the wire.
const GENERALIZATION_KEYS: &[&str] = &[
    "generation",
    "backend",
    "env",
    "train_fitness",
    "holdout_fitness",
    "holdout_scenarios",
    "holdout_min",
    "holdout_max",
    "holdout_std",
    "gap",
];

/// Validates an NDJSON telemetry export; returns a diagnostic on the
/// first violation.
fn check_ndjson(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut records = 0usize;
    let mut generalizations = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not valid JSON: {e}", lineno + 1))?;
        let serde_json::Value::Object(fields) = &value else {
            return Err(format!("line {}: record is not an object", lineno + 1));
        };
        let [(kind, record)] = fields.as_slice() else {
            return Err(format!(
                "line {}: record must wrap exactly one kind: {line}",
                lineno + 1
            ));
        };
        if !NDJSON_KINDS.contains(&kind.as_str()) {
            return Err(format!("line {}: unknown record kind: {line}", lineno + 1));
        }
        if kind == "Generalization" {
            for key in GENERALIZATION_KEYS {
                record.get(key).ok_or(format!(
                    "line {}: Generalization record missing {key}",
                    lineno + 1
                ))?;
            }
            for key in [
                "train_fitness",
                "holdout_fitness",
                "holdout_min",
                "holdout_max",
                "holdout_std",
                "gap",
            ] {
                let number = record.get(key).and_then(|v| v.as_f64()).ok_or(format!(
                    "line {}: Generalization {key} is not a number",
                    lineno + 1
                ))?;
                if !number.is_finite() {
                    return Err(format!(
                        "line {}: Generalization {key} is not finite",
                        lineno + 1
                    ));
                }
            }
            let scenarios = record
                .get("holdout_scenarios")
                .and_then(|v| v.as_u64())
                .ok_or(format!(
                    "line {}: Generalization holdout_scenarios is not an integer",
                    lineno + 1
                ))?;
            if scenarios == 0 {
                return Err(format!(
                    "line {}: Generalization pass scored zero held-out scenarios",
                    lineno + 1
                ));
            }
            generalizations += 1;
        }
        if kind == "Jit" {
            for key in JIT_KEYS {
                record
                    .get(key)
                    .ok_or(format!("line {}: Jit record missing {key}", lineno + 1))?;
            }
            let seconds = record
                .get("compile_seconds")
                .and_then(|v| v.as_f64())
                .ok_or(format!(
                    "line {}: Jit compile_seconds is not a number",
                    lineno + 1
                ))?;
            if !seconds.is_finite() || seconds < 0.0 {
                return Err(format!(
                    "line {}: Jit compile_seconds is not a finite non-negative number",
                    lineno + 1
                ));
            }
            let activity: u64 = ["compiled", "bytes", "fallbacks", "activations", "resident"]
                .iter()
                .map(|key| {
                    record.get(key).and_then(|v| v.as_u64()).ok_or(format!(
                        "line {}: Jit {key} is not an unsigned integer",
                        lineno + 1
                    ))
                })
                .sum::<Result<u64, String>>()?;
            if activity == 0 {
                return Err(format!(
                    "line {}: all-zero Jit record — the platform only emits \
                     these when the tier did work",
                    lineno + 1
                ));
            }
        }
        records += 1;
    }
    if records == 0 {
        return Err("no records — the telemetry stream is empty".to_string());
    }
    println!("  {records} records ({generalizations} generalization passes)");
    Ok(())
}

/// Validates a Chrome trace-event JSON file; returns a diagnostic on
/// the first violation.
fn check_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = value
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty — the tracer recorded no spans".to_string());
    }
    let mut prev_end = 0u64;
    for (i, event) in events.iter().enumerate() {
        let context = |key: &str| format!("event {i}: missing or malformed {key}");
        event
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| context("name"))?;
        event
            .get("cat")
            .and_then(|v| v.as_str())
            .ok_or_else(|| context("cat"))?;
        let phase = event
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| context("ph"))?;
        if phase != "X" {
            return Err(format!(
                "event {i}: ph is {phase:?}, expected complete slice \"X\""
            ));
        }
        let ts = event
            .get("ts")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| context("ts"))?;
        let dur = event
            .get("dur")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| context("dur"))?;
        event
            .get("pid")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| context("pid"))?;
        event
            .get("tid")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| context("tid"))?;
        let end = ts
            .checked_add(dur)
            .ok_or_else(|| format!("event {i}: ts + dur overflows"))?;
        if end < prev_end {
            return Err(format!(
                "event {i}: end time {end}us precedes previous end {prev_end}us — \
                 spans must be completion-ordered"
            ));
        }
        prev_end = end;
    }
    println!(
        "  {} spans, completion-ordered, {prev_end}us total",
        events.len()
    );
    Ok(())
}

/// Validates a Prometheus text exposition dump; returns a diagnostic
/// on the first violation.
fn check_metrics(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut samples = 0usize;
    let mut jit_seen: Vec<&'static str> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("TYPE") => {
                    let name = words
                        .next()
                        .ok_or(format!("line {}: # TYPE without a metric name", lineno + 1))?;
                    let kind = words
                        .next()
                        .ok_or(format!("line {}: # TYPE {name} without a kind", lineno + 1))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {}: unknown metric type {kind:?}", lineno + 1));
                    }
                }
                Some("HELP") => {}
                _ => return Err(format!("line {}: unrecognized comment: {line}", lineno + 1)),
            }
            continue;
        }
        let (name, value) = line.rsplit_once(' ').ok_or(format!(
            "line {}: sample is not `name value`: {line}",
            lineno + 1
        ))?;
        if name.is_empty() {
            return Err(format!("line {}: empty metric name", lineno + 1));
        }
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("line {}: value {value:?} is not a number", lineno + 1))?;
        if !parsed.is_finite() {
            return Err(format!(
                "line {}: value {value:?} is not finite",
                lineno + 1
            ));
        }
        for series in JIT_METRICS {
            if name.starts_with(series) && !jit_seen.contains(series) {
                jit_seen.push(series);
            }
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples — the metrics registry recorded nothing".to_string());
    }
    // The JIT series travel as a set: one of them without the rest
    // means the exporter dropped counters mid-family.
    if !jit_seen.is_empty() && jit_seen.len() != JIT_METRICS.len() {
        let missing: Vec<&str> = JIT_METRICS
            .iter()
            .filter(|series| !jit_seen.contains(series))
            .copied()
            .collect();
        return Err(format!(
            "scrape carries some e3_jit_* series but is missing {}",
            missing.join(", ")
        ));
    }
    println!("  {samples} samples");
    Ok(())
}
