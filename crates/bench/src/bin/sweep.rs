//! `sweep` — explore the INAX (PU, PE) design space for a workload.
//!
//! ```text
//! sweep [--env NAME] [--inputs N] [--outputs N] [--hidden N]
//!       [--population N] [--steps N] [--threads N] [--csv PATH]
//!       [--telemetry FILE] [--trace FILE]
//! ```
//!
//! Prints the Pareto frontier over {total cycles, LUTs} on the ZCU104
//! and the paper's heuristic point for comparison; `--csv` dumps every
//! evaluated point. `--env` sizes the workload from one of the paper's
//! benchmark environments (observation size → inputs, policy outputs →
//! outputs) instead of raw dimensions. `--threads` shards the (PU, PE)
//! grid across worker threads (bit-identical results at any count).
//! `--telemetry` writes one `e3-telemetry` NDJSON `EvalRecord` per
//! evaluated design point, with the accelerator counters in the `hw`
//! field. `--trace` writes a Chrome trace-event JSON file of the sweep
//! phases (grid pricing, report writing) loadable in Perfetto.

use e3_envs::EnvId;
use e3_inax::synthetic::synthetic_population;
use e3_inax::InaxConfig;
use e3_platform::design_space::sweep_design_space_with;
use e3_platform::exec::AnyExecutor;
use e3_platform::telemetry::{
    Collector, EvalRecord, HwCounters, NdjsonWriter, TelemetryEvent, Tracer,
};
use e3_platform::{BackendKind, FpgaBudget};
use std::process::ExitCode;

struct Args {
    env: Option<EnvId>,
    inputs: usize,
    outputs: usize,
    hidden: usize,
    population: usize,
    steps: u64,
    threads: usize,
    csv: Option<String>,
    telemetry: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        env: None,
        inputs: 8,
        outputs: 4,
        hidden: 30,
        population: 200,
        steps: 100,
        threads: 1,
        csv: None,
        telemetry: None,
        trace: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut take = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--env" => {
                let env: EnvId = take("--env")?.parse().map_err(|e| format!("{e}"))?;
                args.env = Some(env);
                args.inputs = env.observation_size();
                args.outputs = env.policy_outputs();
            }
            "--inputs" => args.inputs = take("--inputs")?.parse().map_err(|e| format!("{e}"))?,
            "--outputs" => args.outputs = take("--outputs")?.parse().map_err(|e| format!("{e}"))?,
            "--hidden" => args.hidden = take("--hidden")?.parse().map_err(|e| format!("{e}"))?,
            "--population" => {
                args.population = take("--population")?.parse().map_err(|e| format!("{e}"))?
            }
            "--steps" => args.steps = take("--steps")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                args.threads = take("--threads")?.parse().map_err(|e| format!("{e}"))?;
                if args.threads == 0 {
                    return Err("--threads needs a positive integer".to_string());
                }
            }
            "--csv" => args.csv = Some(take("--csv")?),
            "--telemetry" => args.telemetry = Some(take("--telemetry")?),
            "--trace" => args.trace = Some(take("--trace")?),
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: sweep [--env NAME] [--inputs N] [--outputs N] [--hidden N] \
                 [--population N] [--steps N] [--threads N] [--csv PATH] [--telemetry FILE] \
                 [--trace FILE]"
            );
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let tracer = if args.trace.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let mut sweep_span = tracer.start("sweep", "platform");

    let nets = synthetic_population(
        args.population,
        args.inputs,
        args.outputs,
        args.hidden,
        0.2,
        42,
    );
    let pu_options: Vec<usize> = [5usize, 10, 20, 25, 40, 50, 67, 100, 150, 200]
        .into_iter()
        .filter(|&p| p <= args.population)
        .collect();
    let pe_options: Vec<usize> = (1..=2 * args.outputs.max(4)).collect();
    let budget = FpgaBudget::zcu104();
    let mut exec = AnyExecutor::new(args.threads);
    let mut price_span = tracer.start("price_grid", "exec");
    price_span.arg("points", (pu_options.len() * pe_options.len()) as f64);
    price_span.arg("threads", args.threads as f64);
    let sweep = sweep_design_space_with(
        &nets,
        args.steps,
        &pu_options,
        &pe_options,
        &budget,
        &mut exec,
    );
    price_span.finish();
    sweep_span.arg("points", sweep.points.len() as f64);
    sweep_span.arg("feasible", sweep.feasible().count() as f64);

    let workload = args
        .env
        .map(|env| env.name().to_string())
        .unwrap_or_else(|| "synthetic".to_string());
    println!(
        "design space: {} points ({} feasible on ZCU104), workload {} {}x{}->{} pop {}",
        sweep.points.len(),
        sweep.feasible().count(),
        workload,
        args.inputs,
        args.hidden,
        args.outputs,
        args.population
    );
    println!("\nPareto frontier (cycles vs LUTs):");
    println!(
        "  {:>4} {:>4} {:>14} {:>8} {:>9} {:>6}",
        "PU", "PE", "cycles", "U(PU)", "LUT", "DSP"
    );
    for p in sweep.pareto_frontier() {
        println!(
            "  {:>4} {:>4} {:>14} {:>7.1}% {:>9} {:>6}",
            p.num_pu,
            p.num_pe,
            p.total_cycles,
            100.0 * p.pu_utilization,
            p.resources.lut,
            p.resources.dsp
        );
    }
    // The paper's heuristic point for reference.
    let heuristic = sweep
        .points
        .iter()
        .find(|p| p.num_pu == 50.min(args.population) && p.num_pe == args.outputs);
    if let Some(p) = heuristic {
        println!(
            "\npaper heuristic (PU=50, PE=outputs): {} cycles, U(PU) {:.1}%, LUT {} — fits: {}",
            p.total_cycles,
            100.0 * p.pu_utilization,
            p.resources.lut,
            p.fits
        );
    }
    if let Some(path) = &args.telemetry {
        let _span = tracer.span("write_telemetry", "platform");
        match write_telemetry(path, &args, &workload, &sweep.points) {
            Ok(()) => println!("wrote telemetry to {path}"),
            Err(e) => {
                eprintln!("error: could not write telemetry {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.csv {
        let _span = tracer.span("write_csv", "platform");
        match std::fs::write(path, sweep.to_csv()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    sweep_span.finish();
    if let Some(path) = &args.trace {
        match tracer.write_chrome_trace(path) {
            Ok(()) => eprintln!(
                "wrote {} spans to {path} (load in https://ui.perfetto.dev)",
                tracer.span_count()
            ),
            Err(e) => {
                eprintln!("error: could not write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Emits one `EvalRecord` per design point: the modeled offload of the
/// whole population for `steps` environment steps on that (PU, PE)
/// configuration. Fitness fields are zero — the sweep evaluates a
/// synthetic workload, so only the timing and counters are meaningful.
fn write_telemetry(
    path: &str,
    args: &Args,
    workload: &str,
    points: &[e3_platform::DesignPoint],
) -> Result<(), e3_platform::telemetry::TelemetryError> {
    let clock = InaxConfig::default();
    let mut sink = NdjsonWriter::create(path)?;
    for (index, p) in points.iter().enumerate() {
        sink.record(&TelemetryEvent::Eval(EvalRecord {
            generation: index,
            backend: BackendKind::Inax.name().to_string(),
            env: format!("{workload}_pu{}_pe{}", p.num_pu, p.num_pe),
            population: args.population,
            eval_seconds: clock.cycles_to_seconds(p.total_cycles),
            env_seconds: 0.0,
            total_steps: args.steps * args.population as u64,
            best_fitness: 0.0,
            mean_fitness: 0.0,
            hw: Some(HwCounters {
                total_cycles: p.total_cycles,
                setup_cycles: 0,
                pe_active_cycles: 0,
                evaluate_control_cycles: 0,
                dma_cycles: 0,
                pu_utilization: p.pu_utilization,
                pe_utilization: 0.0,
                steps: args.steps,
            }),
        }))?;
    }
    sink.flush()?;
    Ok(())
}
