//! `sweep` — explore the INAX (PU, PE) design space for a workload.
//!
//! ```text
//! sweep [--inputs N] [--outputs N] [--hidden N] [--population N]
//!       [--steps N] [--csv PATH]
//! ```
//!
//! Prints the Pareto frontier over {total cycles, LUTs} on the ZCU104
//! and the paper's heuristic point for comparison; `--csv` dumps every
//! evaluated point.

use e3_inax::synthetic::synthetic_population;
use e3_platform::design_space::sweep_design_space;
use e3_platform::FpgaBudget;
use std::process::ExitCode;

struct Args {
    inputs: usize,
    outputs: usize,
    hidden: usize,
    population: usize,
    steps: u64,
    csv: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        inputs: 8,
        outputs: 4,
        hidden: 30,
        population: 200,
        steps: 100,
        csv: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut take = |name: &str| {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--inputs" => args.inputs = take("--inputs")?.parse().map_err(|e| format!("{e}"))?,
            "--outputs" => args.outputs = take("--outputs")?.parse().map_err(|e| format!("{e}"))?,
            "--hidden" => args.hidden = take("--hidden")?.parse().map_err(|e| format!("{e}"))?,
            "--population" => {
                args.population = take("--population")?.parse().map_err(|e| format!("{e}"))?
            }
            "--steps" => args.steps = take("--steps")?.parse().map_err(|e| format!("{e}"))?,
            "--csv" => args.csv = Some(take("--csv")?),
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: sweep [--inputs N] [--outputs N] [--hidden N] [--population N] [--steps N] [--csv PATH]"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };

    let nets = synthetic_population(
        args.population,
        args.inputs,
        args.outputs,
        args.hidden,
        0.2,
        42,
    );
    let pu_options: Vec<usize> = [5usize, 10, 20, 25, 40, 50, 67, 100, 150, 200]
        .into_iter()
        .filter(|&p| p <= args.population)
        .collect();
    let pe_options: Vec<usize> = (1..=2 * args.outputs.max(4)).collect();
    let budget = FpgaBudget::zcu104();
    let sweep = sweep_design_space(&nets, args.steps, &pu_options, &pe_options, &budget);

    println!(
        "design space: {} points ({} feasible on ZCU104), workload {}x{}->{} pop {}",
        sweep.points.len(),
        sweep.feasible().count(),
        args.inputs,
        args.hidden,
        args.outputs,
        args.population
    );
    println!("\nPareto frontier (cycles vs LUTs):");
    println!(
        "  {:>4} {:>4} {:>14} {:>8} {:>9} {:>6}",
        "PU", "PE", "cycles", "U(PU)", "LUT", "DSP"
    );
    for p in sweep.pareto_frontier() {
        println!(
            "  {:>4} {:>4} {:>14} {:>7.1}% {:>9} {:>6}",
            p.num_pu,
            p.num_pe,
            p.total_cycles,
            100.0 * p.pu_utilization,
            p.resources.lut,
            p.resources.dsp
        );
    }
    // The paper's heuristic point for reference.
    let heuristic = sweep
        .points
        .iter()
        .find(|p| p.num_pu == 50.min(args.population) && p.num_pe == args.outputs);
    if let Some(p) = heuristic {
        println!(
            "\npaper heuristic (PU=50, PE=outputs): {} cycles, U(PU) {:.1}%, LUT {} — fits: {}",
            p.total_cycles,
            100.0 * p.pu_utilization,
            p.resources.lut,
            p.fits
        );
    }
    if let Some(path) = args.csv {
        match std::fs::write(&path, sweep.to_csv()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
