//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--full] [--json] [--seed N]
//! ```
//!
//! Experiments: table4 table5 fig1b fig2 fig3 fig4 fig6 fig7 fig9a
//! fig9b fig10a fig10b fig11 ablation. `--full` uses paper-scale
//! parameters (population 200, full step budgets); the default quick
//! scale finishes in seconds per experiment. `--svg DIR` additionally
//! writes figure images for the sweep experiments.

use e3_bench::svg::{LineChart, Series};
use e3_bench::{DEFAULT_SEED, EXPERIMENTS};
use e3_platform::experiments::{
    ablation, fig10, fig11, fig1b, fig2, fig3, fig4, fig6, fig7, fig9, table4, table5, Scale,
};
use e3_platform::PowerModel;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut scale = Scale::Quick;
    let mut json = false;
    let mut seed = DEFAULT_SEED;
    let mut svg_dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--json" => json = true,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--svg" => {
                svg_dir = Some(PathBuf::from(
                    iter.next().unwrap_or_else(|| usage("--svg needs a directory")),
                ));
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && name.is_none() => {
                name = Some(other.to_string());
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    let Some(name) = name else {
        print_usage();
        return ExitCode::FAILURE;
    };

    let targets: Vec<&str> = if name == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&name.as_str()) {
        vec![Box::leak(name.into_boxed_str()) as &str]
    } else {
        usage(&format!("unknown experiment: {name}"));
    };

    if let Some(dir) = &svg_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| usage(&format!("--svg dir: {e}")));
    }
    for target in targets {
        run_experiment(target, scale, seed, json, svg_dir.as_deref());
    }
    ExitCode::SUCCESS
}

fn run_experiment(name: &str, scale: Scale, seed: u64, json: bool, svg_dir: Option<&Path>) {
    macro_rules! emit {
        ($result:expr) => {{
            let result = $result;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&result).expect("results serialize")
                );
            } else {
                println!("{result}");
            }
        }};
    }
    match name {
        "table4" => emit!(table4::run(scale, seed)),
        "table5" => emit!(table5::run(scale, seed)),
        "fig1b" => emit!(fig1b::run(scale, seed)),
        "fig2" => emit!(fig2::run(scale, seed)),
        "fig3" => emit!(fig3::run(scale, seed)),
        "fig4" => emit!(fig4::run(scale, seed)),
        "fig6" => {
            let result = fig6::run();
            if let Some(dir) = svg_dir {
                for panel in &result.panels {
                    let utilization = Series::new(
                        "U(PE)",
                        panel.points.iter().map(|p| (p.num_pe as f64, p.utilization)).collect(),
                    );
                    let chart =
                        LineChart::new(format!("Fig. 6 — U(PE), k = {}", panel.num_outputs), "#PE", "U(PE)")
                            .series(utilization);
                    write_svg(dir, &format!("fig6_k{}.svg", panel.num_outputs), &chart.render());
                    let runtime = Series::new(
                        "cycles/infer",
                        panel.points.iter().map(|p| (p.num_pe as f64, p.mean_cycles)).collect(),
                    );
                    let chart = LineChart::new(
                        format!("Fig. 6 — runtime, k = {}", panel.num_outputs),
                        "#PE",
                        "cycles per inference",
                    )
                    .series(runtime);
                    write_svg(dir, &format!("fig6_runtime_k{}.svg", panel.num_outputs), &chart.render());
                }
            }
            emit!(result);
        }
        "fig7" => {
            let result = fig7::run();
            if let Some(dir) = svg_dir {
                for panel in &result.panels {
                    let chart = LineChart::new(
                        format!("Fig. 7 — U(PU), p = {}", panel.num_individuals),
                        "#PU",
                        "U(PU)",
                    )
                    .series(Series::new(
                        "U(PU)",
                        panel.points.iter().map(|p| (p.num_pu as f64, p.utilization)).collect(),
                    ));
                    write_svg(dir, &format!("fig7_p{}.svg", panel.num_individuals), &chart.render());
                }
            }
            emit!(result);
        }
        "fig9a" => emit!(fig9::run_fig9a()),
        "fig9b" => {
            let result = fig9::run_fig9b(scale, seed);
            if let Some(dir) = svg_dir {
                let mut cpu = Vec::new();
                let mut gpu = Vec::new();
                let mut inax = Vec::new();
                for row in &result.rows {
                    let x = row.env.paper_index() as f64;
                    cpu.push((x, row.runtime_seconds[0]));
                    gpu.push((x, row.runtime_seconds[1]));
                    inax.push((x, row.runtime_seconds[2]));
                }
                let chart = LineChart::new("Fig. 9(b) — runtime (log)", "Env#", "seconds")
                    .log_y()
                    .series(Series::new("E3-CPU", cpu))
                    .series(Series::new("E3-GPU", gpu))
                    .series(Series::new("E3-INAX", inax));
                write_svg(dir, "fig9b_runtime.svg", &chart.render());
            }
            emit!(result);
        }
        "fig10a" => {
            let fig9b = fig9::run_fig9b(scale, seed);
            emit!(fig10::run_fig10a(&fig9b, &PowerModel::default()));
        }
        "fig10b" => emit!(fig10::run_fig10b()),
        "fig11" => {
            let result = fig11::run();
            if let Some(dir) = svg_dir {
                let chart = LineChart::new("Fig. 11 — HW cycles (log)", "#PE", "cycles per inference")
                    .log_y()
                    .series(Series::new(
                        "INAX",
                        result.points.iter().map(|p| (p.num_pe as f64, p.inax_cycles)).collect(),
                    ))
                    .series(Series::new(
                        "SA",
                        result.points.iter().map(|p| (p.num_pe as f64, p.sa_cycles)).collect(),
                    ));
                write_svg(dir, "fig11_cycles.svg", &chart.render());
            }
            emit!(result);
        }
        "ablation" => emit!(ablation::run()),
        other => usage(&format!("unknown experiment: {other}")),
    }
}

fn write_svg(dir: &Path, file: &str, svg: &str) {
    let path = dir.join(file);
    if let Err(e) = std::fs::write(&path, svg) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

fn print_usage() {
    eprintln!("usage: repro <experiment|all> [--full] [--json] [--seed N] [--svg DIR]");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2);
}
