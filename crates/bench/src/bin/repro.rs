//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment|run|all> [--full] [--json] [--seed N]
//!       [--envs LIST] [--backend KIND] [--telemetry FILE] [--svg DIR]
//! ```
//!
//! Experiments: table4 table5 fig1b fig2 fig3 fig4 fig6 fig7 fig9a
//! fig9b fig10a fig10b fig11 ablation exec plan jit batch islands
//! serve generalize, plus `run` (a
//! single evolve/evaluate run on one env/backend; `--threads N` shards
//! the evaluation across N worker threads with bit-identical results).
//! `exec` sweeps the worker-thread count and writes the measured
//! scaling to `BENCH_exec.json`; `plan` times the CSR `NetPlan`
//! executor against the preserved per-node reference, re-checks
//! threaded repro parity, and writes `BENCH_plan.json` (nonzero exit
//! on parity failure); `batch` times the population-major batched
//! evaluation against the scalar path across thread counts, re-checks
//! bitwise parity, and writes `BENCH_batch.json` (nonzero exit on
//! parity failure); `jit` times natively compiled hot plans against
//! the interpreter on every environment, re-runs the seeded repro
//! with the tier on and off at 1 and 4 threads gating exact
//! `RunOutcome` equality, and writes `BENCH_jit.json` (nonzero exit
//! when parity, tier engagement — fallback engagement off x86-64 —
//! or the hot-plan speedup gate fails); `islands` sweeps the
//! asynchronous archipelago
//! over island counts and migration intervals, gates single-island
//! parity against a plain run, determinism across driver counts and
//! pickup orders, and the run-manager submit/stream/stop lifecycle,
//! and writes `BENCH_islands.json` (nonzero exit on any gate
//! failure); `serve` mounts the HTTP observability plane on a live
//! run, scrapes `/metrics` mid-flight, exercises `/healthz`, `/runs`,
//! and the NDJSON event stream, gates bit-identical populations and
//! telemetry versus a server-less run, and writes `BENCH_serve.json`
//! (nonzero exit on any gate failure; `--scrape-out FILE` saves the
//! final scrape for exposition-format validation); `generalize`
//! evolves on a sampled scenario distribution at K ∈ {1, 4, 8}
//! scenarios per evaluation, scores champions on a held-out shifted
//! distribution, gates thread-schedule determinism and per-generation
//! `Generalization` telemetry, and writes `BENCH_generalize.json`
//! (nonzero exit on any gate failure). `--full` uses
//! paper-scale
//! parameters (population 200, full step budgets); the default quick
//! scale finishes in seconds per experiment. `--svg DIR` additionally
//! writes figure images for the sweep experiments. `--telemetry FILE`
//! streams every `e3-telemetry` event of the instrumented experiments
//! (fig1b, fig9a, fig9b, fig10a, run) as NDJSON. `--envs` takes a
//! comma-separated list of environment names or paper indices
//! (`cartpole,env3,...`); `--backend` picks the backend for `run`
//! (`cpu`, `gpu`, or `inax`). `--checkpoint-dir DIR` snapshots `run`
//! state into the crash-safe `e3-store` after every
//! `--checkpoint-every N` generations; `--resume` restarts from the
//! newest intact snapshot and reproduces the uninterrupted run
//! bit-identically; `--crash-after N` simulates a mid-run kill (stops
//! after N generations without writing a summary).

use e3_bench::svg::{LineChart, Series};
use e3_bench::{DEFAULT_SEED, EXPERIMENTS};
use e3_envs::EnvId;
use e3_platform::experiments::{
    ablation, batch, exec, fig10, fig11, fig1b, fig2, fig3, fig4, fig6, fig7, fig9, generalize,
    jit, plan, table4, table5, Scale,
};
use e3_platform::telemetry::{Collector, MeteredCollector, NdjsonWriter, NullCollector, Tracer};
use e3_platform::{BackendKind, CheckpointPolicy, E3Config, E3Platform, PowerModel};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Parsed command-line options shared by every experiment.
struct Options {
    scale: Scale,
    seed: u64,
    json: bool,
    svg_dir: Option<PathBuf>,
    /// Environment subset (`--envs`); defaults to the paper suite.
    envs: Vec<EnvId>,
    /// Backend for the single-run experiment (`--backend`).
    backend: BackendKind,
    /// Evaluation worker threads for `run` (`--threads`, default 1).
    threads: usize,
    /// Span tracer (`--trace`); disabled (zero-cost) by default.
    tracer: Tracer,
    /// Snapshot directory for `run` (`--checkpoint-dir`); no
    /// checkpointing when absent.
    checkpoint_dir: Option<PathBuf>,
    /// Generations between snapshots (`--checkpoint-every`, default 1).
    checkpoint_every: usize,
    /// Resume `run` from the newest intact snapshot (`--resume`).
    resume: bool,
    /// Simulate a crash: stop `run` after N generations without a
    /// summary (`--crash-after`, for the kill-and-resume smoke test).
    crash_after: Option<usize>,
    /// Write the final `/metrics` scrape of the `serve` experiment to
    /// this file (`--scrape-out`, for CI exposition validation).
    scrape_out: Option<PathBuf>,
    /// Enable the tiered native execution path for `run` (`--jit`);
    /// bit-identical to the interpreter, off by default.
    jit: bool,
    /// Promotion threshold for `--jit` (`--jit-threshold`, default 3):
    /// decode-cache uses before a plan compiles to native code.
    jit_threshold: u64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name: Option<String> = None;
    let mut opts = Options {
        scale: Scale::Quick,
        seed: DEFAULT_SEED,
        json: false,
        svg_dir: None,
        envs: Vec::new(),
        backend: BackendKind::Inax,
        threads: 1,
        tracer: Tracer::disabled(),
        checkpoint_dir: None,
        checkpoint_every: 1,
        resume: false,
        crash_after: None,
        scrape_out: None,
        jit: false,
        jit_threshold: e3_platform::JitConfig::default().hot_threshold,
    };
    let mut telemetry_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => opts.scale = Scale::Full,
            "--json" => opts.json = true,
            "--seed" => {
                opts.seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--svg" => {
                opts.svg_dir = Some(PathBuf::from(
                    iter.next()
                        .unwrap_or_else(|| usage("--svg needs a directory")),
                ));
            }
            "--telemetry" => {
                telemetry_path = Some(PathBuf::from(
                    iter.next()
                        .unwrap_or_else(|| usage("--telemetry needs a file path")),
                ));
            }
            "--trace" => {
                trace_path = Some(PathBuf::from(
                    iter.next()
                        .unwrap_or_else(|| usage("--trace needs a file path")),
                ));
            }
            "--metrics" => {
                metrics_path = Some(PathBuf::from(
                    iter.next()
                        .unwrap_or_else(|| usage("--metrics needs a file path")),
                ));
            }
            "--envs" | "--env" => {
                let list = iter.next().unwrap_or_else(|| usage("--envs needs a list"));
                for part in list.split(',').filter(|p| !p.is_empty()) {
                    opts.envs.push(
                        part.parse::<EnvId>()
                            .unwrap_or_else(|e| usage(&e.to_string())),
                    );
                }
            }
            "--backend" => {
                let kind = iter
                    .next()
                    .unwrap_or_else(|| usage("--backend needs a name"));
                opts.backend = kind
                    .parse::<BackendKind>()
                    .unwrap_or_else(|e| usage(&e.to_string()));
            }
            "--threads" => {
                opts.threads = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir =
                    Some(PathBuf::from(iter.next().unwrap_or_else(|| {
                        usage("--checkpoint-dir needs a directory")
                    })));
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--checkpoint-every needs a positive integer"));
            }
            "--resume" => opts.resume = true,
            "--jit" => opts.jit = true,
            "--jit-threshold" => {
                opts.jit_threshold = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--jit-threshold needs a positive integer"));
            }
            "--scrape-out" => {
                opts.scrape_out = Some(PathBuf::from(
                    iter.next()
                        .unwrap_or_else(|| usage("--scrape-out needs a file path")),
                ));
            }
            "--crash-after" => {
                opts.crash_after = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--crash-after needs an integer")),
                );
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && name.is_none() => {
                name = Some(other.to_string());
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    let Some(name) = name else {
        print_usage();
        return ExitCode::FAILURE;
    };
    if opts.envs.is_empty() {
        opts.envs = EnvId::ALL.to_vec();
    }

    let targets: Vec<&str> = if name == "all" {
        EXPERIMENTS.to_vec()
    } else if name == "run" || EXPERIMENTS.contains(&name.as_str()) {
        vec![Box::leak(name.into_boxed_str()) as &str]
    } else {
        usage(&format!("unknown experiment: {name}"));
    };

    if let Some(dir) = &opts.svg_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| usage(&format!("--svg dir: {e}")));
    }
    if trace_path.is_some() {
        opts.tracer = Tracer::enabled();
    }
    let inner: Box<dyn Collector> = match &telemetry_path {
        Some(path) => Box::new(
            NdjsonWriter::create(path)
                .unwrap_or_else(|e| usage(&format!("--telemetry {}: {e}", path.display()))),
        ),
        None => Box::new(NullCollector),
    };
    // Tee every record through the metrics registry; the inner
    // collector sees the identical stream.
    let mut sink = MeteredCollector::new(inner);
    // Keep running artifacts (metrics, trace, telemetry) flushable
    // even when an experiment fails mid-way: record the failure, dump
    // everything collected so far, then exit nonzero.
    let mut failure: Option<String> = None;
    for target in targets {
        if let Err(message) = run_experiment(target, &opts, &mut sink) {
            failure = Some(message);
            break;
        }
    }
    if let Err(e) = sink.flush() {
        eprintln!("warning: telemetry flush failed: {e}");
        failure.get_or_insert_with(|| format!("telemetry flush failed: {e}"));
    }
    if let Some(path) = &telemetry_path {
        eprintln!("wrote telemetry to {}", path.display());
    }
    let (_, registry) = sink.into_parts();
    if let Some(path) = &metrics_path {
        if let Err(e) = std::fs::write(path, registry.prometheus_text()) {
            usage(&format!("--metrics {}: {e}", path.display()));
        }
        eprintln!("wrote metrics to {}", path.display());
        if !registry.is_empty() {
            eprint!("{}", registry.summary_table());
        }
    }
    if let Some(path) = &trace_path {
        if let Err(e) = opts.tracer.write_chrome_trace(path) {
            usage(&format!("--trace {}: {e}", path.display()));
        }
        eprintln!(
            "wrote {} spans to {} (load in https://ui.perfetto.dev)",
            opts.tracer.span_count(),
            path.display()
        );
    }
    match failure {
        Some(message) => usage(&message),
        None => ExitCode::SUCCESS,
    }
}

/// Runs one experiment; a failure comes back as `Err` (instead of
/// exiting) so `main` can still flush `--metrics`/`--trace` artifacts
/// collected up to the failure point.
fn run_experiment(name: &str, opts: &Options, collector: &mut dyn Collector) -> Result<(), String> {
    let Options {
        scale, seed, json, ..
    } = *opts;
    let svg_dir = opts.svg_dir.as_deref();
    macro_rules! emit {
        ($result:expr) => {{
            let result = $result;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&result).expect("results serialize")
                );
            } else {
                println!("{result}");
            }
        }};
    }
    macro_rules! try_run {
        ($result:expr) => {
            match $result {
                Ok(value) => value,
                Err(e) => return Err(format!("{name} failed: {e}")),
            }
        };
    }
    match name {
        "run" => {
            let env = *opts
                .envs
                .first()
                .expect("envs default to the paper suite when the flag is absent");
            let mut builder = E3Config::builder(env)
                .population_size(scale.population())
                .max_generations(scale.max_generations())
                .threads(opts.threads);
            if opts.jit {
                builder = builder.jit(e3_platform::JitConfig {
                    enabled: true,
                    hot_threshold: opts.jit_threshold,
                });
            }
            if let Some(dir) = &opts.checkpoint_dir {
                builder = builder.checkpoint(
                    CheckpointPolicy::new(dir.to_string_lossy().into_owned())
                        .every(opts.checkpoint_every),
                );
            }
            let config = builder.build();
            let target_fitness = config.target_fitness;
            let max_generations = config.max_generations;
            let mut platform = if opts.resume {
                if opts.checkpoint_dir.is_none() {
                    usage("--resume needs --checkpoint-dir");
                }
                match try_run!(E3Platform::resume(config.clone(), opts.backend, seed)) {
                    Some(platform) => {
                        eprintln!("resuming from generation {}", platform.generation());
                        platform
                    }
                    None => {
                        eprintln!("no intact snapshot found; starting fresh");
                        E3Platform::new(config, opts.backend, seed)
                    }
                }
            } else {
                E3Platform::new(config, opts.backend, seed)
            };
            platform.set_tracer(opts.tracer.clone());
            if let Some(crash_after) = opts.crash_after {
                // Simulated crash: step the loop, then drop the
                // platform without emitting a summary — exactly the
                // state a killed process leaves behind on disk.
                for _ in 0..crash_after {
                    if platform.generation() >= max_generations {
                        break;
                    }
                    let best = try_run!(platform.step_with(collector));
                    if best >= target_fitness {
                        break;
                    }
                }
                eprintln!(
                    "simulated crash after generation {} (no summary written)",
                    platform.generation()
                );
                return Ok(());
            }
            let outcome = try_run!(platform.run_with(collector));
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&outcome).expect("results serialize")
                );
            } else {
                println!(
                    "{env} on {}: solved={} generations={} best={:.2} modeled={:.4}s",
                    opts.backend,
                    outcome.solved,
                    outcome.generations_run,
                    outcome.best_fitness,
                    outcome.modeled_seconds
                );
                if let Some(util) = &outcome.hw_utilization {
                    let total_cycles = outcome.hw_report.map_or(0, |r| r.total_cycles);
                    let report = util.to_telemetry(opts.backend.name(), env.name(), total_cycles);
                    print!("{}", report.summary_table());
                }
            }
        }
        "table4" => emit!(table4::run_on(&opts.envs, scale, seed)),
        "table5" => emit!(table5::run_on(&opts.envs, scale, seed)),
        "fig1b" => emit!(try_run!(fig1b::run_with(
            &opts.envs, scale, seed, collector
        ))),
        "fig2" => emit!(fig2::run_on(&opts.envs, scale, seed)),
        "fig3" => emit!(fig3::run(scale, seed)),
        "fig4" => emit!(fig4::run_on(&opts.envs, scale, seed)),
        "fig6" => {
            let result = fig6::run();
            if let Some(dir) = svg_dir {
                for panel in &result.panels {
                    let utilization = Series::new(
                        "U(PE)",
                        panel
                            .points
                            .iter()
                            .map(|p| (p.num_pe as f64, p.utilization))
                            .collect(),
                    );
                    let chart = LineChart::new(
                        format!("Fig. 6 — U(PE), k = {}", panel.num_outputs),
                        "#PE",
                        "U(PE)",
                    )
                    .series(utilization);
                    write_svg(
                        dir,
                        &format!("fig6_k{}.svg", panel.num_outputs),
                        &chart.render(),
                    );
                    let runtime = Series::new(
                        "cycles/infer",
                        panel
                            .points
                            .iter()
                            .map(|p| (p.num_pe as f64, p.mean_cycles))
                            .collect(),
                    );
                    let chart = LineChart::new(
                        format!("Fig. 6 — runtime, k = {}", panel.num_outputs),
                        "#PE",
                        "cycles per inference",
                    )
                    .series(runtime);
                    write_svg(
                        dir,
                        &format!("fig6_runtime_k{}.svg", panel.num_outputs),
                        &chart.render(),
                    );
                }
            }
            emit!(result);
        }
        "fig7" => {
            let result = fig7::run();
            if let Some(dir) = svg_dir {
                for panel in &result.panels {
                    let chart = LineChart::new(
                        format!("Fig. 7 — U(PU), p = {}", panel.num_individuals),
                        "#PU",
                        "U(PU)",
                    )
                    .series(Series::new(
                        "U(PU)",
                        panel
                            .points
                            .iter()
                            .map(|p| (p.num_pu as f64, p.utilization))
                            .collect(),
                    ));
                    write_svg(
                        dir,
                        &format!("fig7_p{}.svg", panel.num_individuals),
                        &chart.render(),
                    );
                }
            }
            emit!(result);
        }
        "fig9a" => emit!(try_run!(fig9::run_fig9a_with(collector))),
        "fig9b" => {
            let result = try_run!(fig9::run_fig9b_with(&opts.envs, scale, seed, collector));
            if let Some(dir) = svg_dir {
                let mut cpu = Vec::new();
                let mut gpu = Vec::new();
                let mut inax = Vec::new();
                for row in &result.rows {
                    let x = row.env.paper_index() as f64;
                    cpu.push((x, row.runtime_seconds[0]));
                    gpu.push((x, row.runtime_seconds[1]));
                    inax.push((x, row.runtime_seconds[2]));
                }
                let chart = LineChart::new("Fig. 9(b) — runtime (log)", "Env#", "seconds")
                    .log_y()
                    .series(Series::new("E3-CPU", cpu))
                    .series(Series::new("E3-GPU", gpu))
                    .series(Series::new("E3-INAX", inax));
                write_svg(dir, "fig9b_runtime.svg", &chart.render());
            }
            emit!(result);
        }
        "fig10a" => {
            let fig9b = try_run!(fig9::run_fig9b_with(&opts.envs, scale, seed, collector));
            emit!(fig10::run_fig10a(&fig9b, &PowerModel::default()));
        }
        "fig10b" => emit!(fig10::run_fig10b()),
        "fig11" => {
            let result = fig11::run();
            if let Some(dir) = svg_dir {
                let chart =
                    LineChart::new("Fig. 11 — HW cycles (log)", "#PE", "cycles per inference")
                        .log_y()
                        .series(Series::new(
                            "INAX",
                            result
                                .points
                                .iter()
                                .map(|p| (p.num_pe as f64, p.inax_cycles))
                                .collect(),
                        ))
                        .series(Series::new(
                            "SA",
                            result
                                .points
                                .iter()
                                .map(|p| (p.num_pe as f64, p.sa_cycles))
                                .collect(),
                        ));
                write_svg(dir, "fig11_cycles.svg", &chart.render());
            }
            emit!(result);
        }
        "ablation" => emit!(ablation::run()),
        "exec" => {
            let result = try_run!(exec::run(scale, seed));
            let json = serde_json::to_string_pretty(&result).expect("scaling results serialize");
            if let Err(e) = std::fs::write("BENCH_exec.json", &json) {
                eprintln!("warning: could not write BENCH_exec.json: {e}");
            } else {
                eprintln!("wrote BENCH_exec.json");
            }
            emit!(result);
        }
        "plan" => {
            let result = try_run!(plan::run(scale, seed));
            let json = serde_json::to_string_pretty(&result).expect("bench results serialize");
            if let Err(e) = std::fs::write("BENCH_plan.json", &json) {
                eprintln!("warning: could not write BENCH_plan.json: {e}");
            } else {
                eprintln!("wrote BENCH_plan.json");
            }
            if !result.parity_ok {
                // A parity break means the plan executor drifted from
                // the reference or the threaded repro changed fitness —
                // fail loudly so CI catches it.
                return Err("plan executor parity FAILED (see BENCH_plan.json)".to_string());
            }
            emit!(result);
        }
        "jit" => {
            let result = try_run!(jit::run(scale, seed));
            let json = serde_json::to_string_pretty(&result).expect("bench results serialize");
            if let Err(e) = std::fs::write("BENCH_jit.json", &json) {
                eprintln!("warning: could not write BENCH_jit.json: {e}");
            } else {
                eprintln!("wrote BENCH_jit.json");
            }
            if !result.gate_ok() {
                // The native tier is contractually bit-identical to
                // the interpreter, must demonstrably engage (or, off
                // x86-64, demonstrably fall back — never silently
                // skip), and must beat the interpreter on hot plans —
                // fail loudly so CI catches any of the three breaking.
                return Err("jit tier parity/speedup gate FAILED (see BENCH_jit.json)".to_string());
            }
            emit!(result);
        }
        "islands" => {
            let result = try_run!(e3_islands::bench::run(scale, seed));
            let json = serde_json::to_string_pretty(&result).expect("bench results serialize");
            if let Err(e) = std::fs::write("BENCH_islands.json", &json) {
                eprintln!("warning: could not write BENCH_islands.json: {e}");
            } else {
                eprintln!("wrote BENCH_islands.json");
            }
            if !result.parity_ok {
                // A failed gate means the archipelago layer changed
                // results (vs the plain platform, across schedules, or
                // through the service boundary) — a correctness bug,
                // so fail loudly for CI.
                return Err(
                    "islands parity/determinism/smoke FAILED (see BENCH_islands.json)".to_string(),
                );
            }
            emit!(result);
        }
        "batch" => {
            let result = try_run!(batch::run(scale, seed));
            let json = serde_json::to_string_pretty(&result).expect("bench results serialize");
            if let Err(e) = std::fs::write("BENCH_batch.json", &json) {
                eprintln!("warning: could not write BENCH_batch.json: {e}");
            } else {
                eprintln!("wrote BENCH_batch.json");
            }
            if !result.parity_ok {
                // The batched eval contract is bit-identity with the
                // scalar serial path — a drift is a correctness bug,
                // not a perf regression; fail loudly so CI catches it.
                return Err("batched evaluation parity FAILED (see BENCH_batch.json)".to_string());
            }
            emit!(result);
        }
        "generalize" => {
            let result = try_run!(generalize::run(scale, seed, collector));
            let json = serde_json::to_string_pretty(&result).expect("bench results serialize");
            if let Err(e) = std::fs::write("BENCH_generalize.json", &json) {
                eprintln!("warning: could not write BENCH_generalize.json: {e}");
            } else {
                eprintln!("wrote BENCH_generalize.json");
            }
            if !result.parity_ok {
                // Scenario sampling is seeded per (run, generation,
                // genome, scenario): a thread-count-dependent result or
                // a missing Generalization record is a correctness bug,
                // so fail loudly for CI.
                return Err(
                    "generalize determinism/coverage FAILED (see BENCH_generalize.json)"
                        .to_string(),
                );
            }
            emit!(result);
        }
        "serve" => {
            let output = try_run!(e3_serve::bench::run(scale, seed));
            let result = output.result;
            let json_text = serde_json::to_string_pretty(&result).expect("bench results serialize");
            if let Err(e) = std::fs::write("BENCH_serve.json", &json_text) {
                eprintln!("warning: could not write BENCH_serve.json: {e}");
            } else {
                eprintln!("wrote BENCH_serve.json");
            }
            if let Some(path) = &opts.scrape_out {
                if let Err(e) = std::fs::write(path, &output.scraped_metrics) {
                    return Err(format!("--scrape-out {}: {e}", path.display()));
                }
                eprintln!("wrote scraped metrics to {}", path.display());
            }
            if !result.parity_ok {
                // The observability plane must be inert: scraping a
                // run mid-flight cannot change its populations or its
                // telemetry stream. A failed gate is a correctness
                // bug, so fail loudly for CI.
                return Err("serve observability parity FAILED (see BENCH_serve.json)".to_string());
            }
            emit!(result);
        }
        other => usage(&format!("unknown experiment: {other}")),
    }
    Ok(())
}

fn write_svg(dir: &Path, file: &str, svg: &str) {
    let path = dir.join(file);
    if let Err(e) = std::fs::write(&path, svg) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro <experiment|run|all> [--full] [--json] [--seed N] \
         [--envs LIST] [--backend KIND] [--threads N] [--telemetry FILE] \
         [--trace FILE] [--metrics FILE] [--svg DIR] [--checkpoint-dir DIR] \
         [--checkpoint-every N] [--resume] [--crash-after N] \
         [--jit] [--jit-threshold N]"
    );
    eprintln!("experiments: {} run", EXPERIMENTS.join(" "));
    eprintln!("  --envs      comma-separated env names/indices (default: paper suite)");
    eprintln!("  --backend   cpu | gpu | inax (for `run`; default inax)");
    eprintln!("  --threads   evaluation worker threads for `run` (default 1 = serial)");
    eprintln!("  --telemetry write NDJSON telemetry records to FILE");
    eprintln!("  --trace     write Chrome trace-event JSON spans to FILE (Perfetto)");
    eprintln!("  --metrics   write a Prometheus text metrics dump to FILE");
    eprintln!("  --checkpoint-dir   snapshot `run` state into DIR (crash-safe store)");
    eprintln!("  --checkpoint-every snapshot every N generations (default 1)");
    eprintln!("  --resume           resume `run` from the newest intact snapshot");
    eprintln!("  --crash-after      stop `run` after N generations without a summary");
    eprintln!("  --scrape-out       write the `serve` experiment's final /metrics scrape to FILE");
    eprintln!("  --jit              enable tiered native execution for `run` (cpu/gpu software");
    eprintln!("                     eval; bit-identical to the interpreter, off by default)");
    eprintln!("  --jit-threshold    decode-cache uses before a plan compiles natively (default 3)");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2);
}
