//! Minimal SVG chart writer (no dependencies) so `repro --svg` can
//! regenerate the paper's figures as actual images: line charts for
//! the sweeps (Figs. 6, 7, 11), grouped bars for the comparisons
//! (Figs. 9(b), 10(a)).
//!
//! Deliberately small: fixed 640×400 canvas, linear or log-y axes,
//! automatic ticks, a simple legend. Enough to eyeball the shapes
//! against the paper's plots.

use std::fmt::Write as _;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 50.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
];

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A line chart with shared axes.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    log_y: bool,
}

impl LineChart {
    /// Starts a chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_y: false,
        }
    }

    /// Switches the y axis to log scale (values must be positive).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series.
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Renders the chart to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if no series has any points, or if `log_y` is set and a
    /// y value is not positive.
    pub fn render(&self) -> String {
        let points: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        assert!(!points.is_empty(), "chart needs at least one point");
        let map_y = |y: f64| -> f64 {
            if self.log_y {
                assert!(y > 0.0, "log axis requires positive values, got {y}");
                y.log10()
            } else {
                y
            }
        };
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(map_y(y));
            y_max = y_max.max(map_y(y));
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let sx = move |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = move |y: f64| MARGIN_TOP + plot_h - (map_y(y) - y_min) / (y_max - y_min) * plot_h;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        // Axes.
        let _ = writeln!(
            svg,
            r#"<line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/><line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/>"#,
            l = MARGIN_LEFT,
            t = MARGIN_TOP,
            b = MARGIN_TOP + plot_h,
            r = MARGIN_LEFT + plot_w
        );
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x_min + (x_max - x_min) * i as f64 / 4.0;
            let px = sx(fx);
            let _ = writeln!(
                svg,
                r#"<line x1="{px}" y1="{b}" x2="{px}" y2="{b2}" stroke="black"/><text x="{px}" y="{ty}" text-anchor="middle" font-size="11">{}</text>"#,
                format_tick(fx),
                b = MARGIN_TOP + plot_h,
                b2 = MARGIN_TOP + plot_h + 5.0,
                ty = MARGIN_TOP + plot_h + 18.0,
            );
            let fy_mapped = y_min + (y_max - y_min) * i as f64 / 4.0;
            let fy = if self.log_y {
                10f64.powf(fy_mapped)
            } else {
                fy_mapped
            };
            let py = MARGIN_TOP + plot_h - (fy_mapped - y_min) / (y_max - y_min) * plot_h;
            let _ = writeln!(
                svg,
                r#"<line x1="{x2}" y1="{py}" x2="{l}" y2="{py}" stroke="black"/><text x="{tx}" y="{tyy}" text-anchor="end" font-size="11">{}</text>"#,
                format_tick(fy),
                l = MARGIN_LEFT,
                x2 = MARGIN_LEFT - 5.0,
                tx = MARGIN_LEFT - 8.0,
                tyy = py + 4.0,
            );
        }
        // Axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
            MARGIN_LEFT + plot_w / 2.0,
            HEIGHT - 10.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            escape(&self.y_label)
        );
        // Series.
        for (i, series) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<String> = series
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                pts.join(" ")
            );
            for &(x, y) in &series.points {
                let _ = writeln!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.4" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_TOP + 6.0 + 16.0 * i as f64;
            let _ = writeln!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{lx2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}" font-size="11">{}</text>"#,
                escape(&series.label),
                lx = MARGIN_LEFT + plot_w - 130.0,
                lx2 = MARGIN_LEFT + plot_w - 110.0,
                tx = MARGIN_LEFT + plot_w - 105.0,
                ty = ly + 4.0,
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let magnitude = v.abs();
    if !(0.01..10_000.0).contains(&magnitude) {
        format!("{v:.1e}")
    } else if magnitude >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new("title", "x", "y")
            .series(Series::new(
                "a",
                vec![(1.0, 10.0), (2.0, 20.0), (3.0, 15.0)],
            ))
            .series(Series::new("b", vec![(1.0, 5.0), (3.0, 25.0)]))
    }

    #[test]
    fn renders_wellformed_svg_with_all_series() {
        let svg = chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
        assert!(svg.contains(">a</text>") && svg.contains(">b</text>"));
    }

    #[test]
    fn points_stay_inside_the_canvas() {
        let svg = chart().render();
        for part in svg.split("cx=\"").skip(1) {
            let x: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x));
        }
    }

    #[test]
    fn log_axis_renders_positive_data() {
        let svg = LineChart::new("t", "x", "y")
            .log_y()
            .series(Series::new("s", vec![(1.0, 1.0), (2.0, 1000.0)]))
            .render();
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn log_axis_rejects_nonpositive() {
        let _ = LineChart::new("t", "x", "y")
            .log_y()
            .series(Series::new("s", vec![(1.0, 0.0)]))
            .render();
    }

    #[test]
    fn titles_are_escaped() {
        let svg = LineChart::new("a < b & c", "x", "y")
            .series(Series::new("s", vec![(0.0, 1.0)]))
            .render();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn ticks_format_sanely() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(12.0), "12");
        assert_eq!(format_tick(0.5), "0.50");
        assert!(format_tick(123456.0).contains('e'));
    }
}
