//! Table IV bench: the genome operations behind the overhead numbers
//! (decode, mutate, crossover, distance).

use criterion::{criterion_group, criterion_main, Criterion};
use e3_neat::{Genome, InnovationTracker, NeatConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let config = NeatConfig::builder(8, 4)
        .initial_hidden_nodes(30)
        .initial_connection_density(0.2)
        .build();
    let mut tracker = InnovationTracker::with_reserved_nodes(12);
    let mut rng = StdRng::seed_from_u64(1);
    let mut a = Genome::initial(&config, &mut tracker, &mut rng);
    let mut b = a.clone();
    for _ in 0..20 {
        a.mutate(&config, &mut tracker, &mut rng);
        b.mutate(&config, &mut tracker, &mut rng);
    }
    let mut group = c.benchmark_group("table4_overhead");
    group.bench_function("decode", |bch| bch.iter(|| black_box(&a).decode().unwrap()));
    group.bench_function("mutate", |bch| {
        bch.iter(|| {
            let mut g = a.clone();
            g.mutate(&config, &mut tracker, &mut rng);
            g
        })
    });
    group.bench_function("crossover", |bch| {
        bch.iter(|| black_box(&a).crossover(black_box(&b), false, &config, &mut rng))
    });
    group.bench_function("compatibility_distance", |bch| {
        bch.iter(|| black_box(&a).compatibility_distance(black_box(&b), &config))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
