//! Fig. 1(b) bench: one NEAT evaluate+evolve generation on E3-CPU.

use criterion::{criterion_group, criterion_main, Criterion};
use e3_envs::EnvId;
use e3_platform::{BackendKind, E3Config, E3Platform};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1b_neat_profile");
    group.sample_size(10);
    group.bench_function("cartpole_generation_cpu", |b| {
        b.iter(|| {
            let config = E3Config::builder(EnvId::CartPole)
                .population_size(48)
                .max_generations(1)
                .target_fitness(f64::INFINITY)
                .build();
            let outcome = E3Platform::new(config, BackendKind::Cpu, 7)
                .run()
                .expect("feed-forward population");
            black_box(outcome.profile)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
