//! batch_activate bench: the population-major `PlanBatch` kernel vs
//! per-individual `NetPlan` execution.
//!
//! Times one lockstep forward pass of a whole population (one call to
//! `PlanBatch::activate_batch_into` with every lane active) against
//! the equivalent loop of solo `NetPlan::execute_into_buf` calls, on
//! CartPole- and LunarLander-sized evolved populations. The batched
//! kernel's win is structural — one level sweep over SoA buffers
//! instead of per-individual dispatch — and its outputs are
//! bit-identical to the solo loop (asserted before timing; `fast-math`
//! would trade that for approximate activations but is off here).
//!
//! A half-parked variant times the lane-masked sweep the eval loop
//! actually runs once episodes start finishing at different steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_envs::EnvId;
use e3_neat::{Genome, NeatConfig, NetPlan, PlanBatch, Population};
use std::hint::black_box;

const LANES: usize = 48;

/// Evolves a population with `env`-shaped IO and grown hidden
/// structure — the same workload class `repro -- batch` measures.
fn evolved_population(env: EnvId, seed: u64) -> Vec<Genome> {
    let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
        .population_size(LANES)
        .build();
    let mut pop = Population::new(config, seed);
    for _ in 0..10 {
        pop.evaluate(|g| (g.num_enabled_connections() + g.nodes().len()) as f64);
        pop.evolve();
    }
    pop.genomes().to_vec()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_activate");
    for env in [EnvId::CartPole, EnvId::LunarLander] {
        let genomes = evolved_population(env, 7);
        let plans: Vec<NetPlan> = genomes
            .iter()
            .map(|g| NetPlan::compile(g).expect("evolved genomes decode"))
            .collect();
        let refs: Vec<&NetPlan> = plans.iter().collect();
        let batch = PlanBatch::build(&refs);
        let n = env.observation_size();
        let k = batch.num_outputs();
        let inputs: Vec<f64> = (0..LANES * n).map(|j| (j as f64).sin() * 0.5).collect();
        let active = vec![true; LANES];
        let mut values = vec![0.0; batch.value_buffer_slots()];
        let mut outputs = vec![0.0; LANES * k];
        // Sanity: the batched kernel agrees with the solo loop bit for
        // bit before timing (fast-math off in benches).
        batch.activate_batch_into(&inputs, &active, &mut values, &mut outputs);
        let mut solo_values = Vec::new();
        let mut solo_out = Vec::new();
        for (b, plan) in plans.iter().enumerate() {
            solo_values.resize(plan.value_buffer_slots(), 0.0);
            plan.execute_into_buf(&inputs[b * n..(b + 1) * n], &mut solo_values, &mut solo_out);
            assert_eq!(
                solo_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                outputs[b * k..(b + 1) * k]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "batched kernel drifted from solo execution on {env} lane {b}"
            );
        }
        group.bench_with_input(
            BenchmarkId::new("solo_loop", env.name()),
            &inputs,
            |bch, x| {
                bch.iter(|| {
                    for (b, plan) in plans.iter().enumerate() {
                        solo_values.resize(plan.value_buffer_slots(), 0.0);
                        plan.execute_into_buf(
                            black_box(&x[b * n..(b + 1) * n]),
                            &mut solo_values,
                            &mut solo_out,
                        );
                        black_box(solo_out.as_slice());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", env.name()),
            &inputs,
            |bch, x| {
                bch.iter(|| {
                    batch.activate_batch_into(black_box(x), &active, &mut values, &mut outputs);
                    black_box(outputs.as_slice());
                })
            },
        );
        let half_parked: Vec<bool> = (0..LANES).map(|b| b % 2 == 0).collect();
        group.bench_with_input(
            BenchmarkId::new("batched_half_parked", env.name()),
            &inputs,
            |bch, x| {
                bch.iter(|| {
                    batch.activate_batch_into(
                        black_box(x),
                        &half_parked,
                        &mut values,
                        &mut outputs,
                    );
                    black_box(outputs.as_slice());
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("build", env.name()),
            &plans,
            |bch, plans| {
                bch.iter(|| {
                    let refs: Vec<&NetPlan> = plans.iter().collect();
                    black_box(PlanBatch::build(black_box(&refs)))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
