//! Fig. 3 bench: RL rollout + update cost (the Forward/Training split).

use criterion::{criterion_group, criterion_main, Criterion};
use e3_envs::EnvId;
use e3_rl::{A2c, A2cConfig, NetworkSize, Ppo, PpoConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_rl_split");
    group.sample_size(10);
    group.bench_function("a2c_small_64_steps", |b| {
        b.iter(|| {
            let mut agent = A2c::new(A2cConfig::new(EnvId::CartPole, NetworkSize::Small), 3);
            agent.train_steps(64);
            black_box(agent.profile())
        })
    });
    group.bench_function("ppo_small_128_steps", |b| {
        b.iter(|| {
            let mut agent = Ppo::new(PpoConfig::new(EnvId::CartPole, NetworkSize::Small), 3);
            agent.train_steps(128);
            black_box(agent.profile())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
