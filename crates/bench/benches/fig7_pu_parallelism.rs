//! Fig. 7 bench: PU-batching analysis across PU counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_inax::cluster::{analyze_pu_parallelism, EpisodeWork};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let episodes = vec![
        EpisodeWork {
            inference_cycles: 120,
            steps: 100
        };
        200
    ];
    let mut group = c.benchmark_group("fig7_pu_parallelism");
    group.sample_size(30);
    for num_pu in [1usize, 50, 99, 100, 200] {
        group.bench_with_input(
            BenchmarkId::from_parameter(num_pu),
            &num_pu,
            |b, &num_pu| b.iter(|| analyze_pu_parallelism(black_box(num_pu), black_box(&episodes))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
