//! plan_activate bench: the flat-CSR `NetPlan` executor vs the
//! preserved per-node reference decoder.
//!
//! Times one forward pass (`activate`) of CartPole- and
//! LunarLander-sized evolved genomes through three paths:
//!
//! * `reference` — `ReferenceNetwork`, the verbatim pre-refactor
//!   per-node executor kept as the bit-identity oracle;
//! * `plan` — `NetPlan::execute_into` with a caller-owned scratch
//!   buffer (the production hot path inside `Network::activate`);
//! * `compile` — `NetPlan::compile`, the CreateNet cost the
//!   `DecodeCache` amortizes across generations.
//!
//! The acceptance target is plan ≥ 1.2x the reference on these sizes
//! (`repro -- plan` records the measured ratio in `BENCH_plan.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_envs::EnvId;
use e3_neat::{Genome, NeatConfig, NetPlan, Population, ReferenceNetwork};
use std::hint::black_box;

/// Evolves a genome with `env`-shaped IO and grown hidden structure —
/// the same size class `repro -- plan` measures.
fn evolved_genome(env: EnvId, seed: u64) -> Genome {
    let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
        .population_size(48)
        .build();
    let mut pop = Population::new(config, seed);
    for _ in 0..15 {
        pop.evaluate(|g| (g.num_enabled_connections() + g.nodes().len()) as f64);
        pop.evolve();
    }
    pop.genomes()
        .iter()
        .max_by_key(|g| (g.num_enabled_connections(), g.nodes().len()))
        .expect("population is non-empty")
        .clone()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_activate");
    for env in [EnvId::CartPole, EnvId::LunarLander] {
        let genome = evolved_genome(env, 7);
        let plan = NetPlan::compile(&genome).expect("evolved genomes decode");
        let mut reference = ReferenceNetwork::from_genome(&genome).expect("decodes");
        let inputs: Vec<f64> = (0..env.observation_size())
            .map(|j| (j as f64).sin() * 0.5)
            .collect();
        // Sanity: both executors agree bit for bit before timing.
        let want = reference.activate(&inputs);
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            plan.execute(&inputs)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "plan drifted from the reference on {env}"
        );
        group.bench_with_input(
            BenchmarkId::new("reference", env.name()),
            &inputs,
            |b, x| b.iter(|| black_box(reference.activate(black_box(x)))),
        );
        let mut values = vec![0.0; plan.value_buffer_slots()];
        group.bench_with_input(BenchmarkId::new("plan", env.name()), &inputs, |b, x| {
            b.iter(|| black_box(plan.execute_into(black_box(x), &mut values)))
        });
        let mut outputs = Vec::new();
        group.bench_with_input(
            BenchmarkId::new("plan_noalloc", env.name()),
            &inputs,
            |b, x| {
                b.iter(|| {
                    plan.execute_into_buf(black_box(x), &mut values, &mut outputs);
                    black_box(outputs.as_slice());
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("compile", env.name()), &genome, |b, g| {
            b.iter(|| black_box(NetPlan::compile(black_box(g)).expect("decodes")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
