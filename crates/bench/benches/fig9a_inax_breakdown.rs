//! Fig. 9(a) bench: closed-loop INAX stepping across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_inax::synthetic::synthetic_population;
use e3_inax::{InaxAccelerator, InaxConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_inax_breakdown");
    group.sample_size(20);
    for hidden in [10usize, 30, 60] {
        let nets = synthetic_population(4, 8, 4, hidden, 0.2, 9);
        group.bench_with_input(BenchmarkId::from_parameter(hidden), &nets, |b, nets| {
            b.iter(|| {
                let mut acc =
                    InaxAccelerator::new(InaxConfig::builder().num_pu(4).num_pe(4).build());
                acc.load_batch(nets.clone());
                let inputs = vec![Some(vec![0.3f64; 8]); nets.len()];
                for _ in 0..50 {
                    black_box(acc.step(&inputs));
                }
                acc.report()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
