//! jit_activate bench: the `e3-jit` native tier vs the `NetPlan`
//! interpreter it compiles from.
//!
//! Times single-genome forward passes on evolved genomes at two size
//! classes (CartPole-small, LunarLander-medium) through both
//! executors. The native tier is contractually bit-identical to the
//! interpreter (asserted before timing); its win is dispatch-free
//! straight-line code, so the gap widens with genome size while tiny
//! nets stay pinned to the activation-function floor. On targets the
//! emitter cannot serve only the interpreter series is registered —
//! `repro -- jit` separately asserts the fallback engaged there.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_envs::EnvId;
use e3_jit::CompiledPlan;
use e3_neat::{Genome, NeatConfig, Network, Population};
use std::hint::black_box;

/// Evolves one genome with `env`-shaped IO and grown hidden structure
/// — the same workload class `repro -- jit` measures.
fn evolved_genome(env: EnvId, seed: u64) -> Genome {
    let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
        .population_size(32)
        .build();
    let mut pop = Population::new(config, seed);
    for _ in 0..10 {
        pop.evaluate(|g| (g.num_enabled_connections() + g.nodes().len()) as f64);
        pop.evolve();
    }
    pop.genomes()
        .iter()
        .max_by_key(|g| g.num_enabled_connections())
        .expect("population is non-empty")
        .clone()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("jit_activate");
    for env in [EnvId::CartPole, EnvId::LunarLander] {
        let genome = evolved_genome(env, 7);
        let mut net = Network::from_genome(&genome).expect("evolved genomes decode");
        let inputs: Vec<f64> = (0..env.observation_size())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("interpreter", env),
            &inputs,
            |b, inputs| b.iter(|| black_box(net.activate_into(black_box(inputs))).len()),
        );
        if let Ok(mut jit) = CompiledPlan::compile(net.plan()) {
            let want = net.activate(&inputs);
            let got = jit.activate(&inputs);
            assert!(
                want.iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "native tier drifted from interpreter on {env}"
            );
            group.bench_with_input(BenchmarkId::new("jit", env), &inputs, |b, inputs| {
                b.iter(|| black_box(jit.activate_into(black_box(inputs))).len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
