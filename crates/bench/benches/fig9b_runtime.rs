//! Fig. 9(b) bench: population evaluation on each backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_envs::EnvId;
use e3_inax::InaxConfig;
use e3_neat::{NeatConfig, Population};
use e3_platform::{CpuBackend, EvalBackend, GpuBackend, InaxBackend, SwCostModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let env = EnvId::CartPole;
    let neat = NeatConfig::builder(env.observation_size(), env.policy_outputs())
        .population_size(32)
        .build();
    let genomes = Population::new(neat, 3).genomes().to_vec();
    let mut group = c.benchmark_group("fig9b_runtime");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("cpu"),
        &genomes,
        |b, genomes| {
            b.iter(|| {
                let mut backend = CpuBackend::default();
                black_box(
                    backend
                        .try_evaluate_population(genomes, env, 5)
                        .expect("feed-forward population"),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("gpu"),
        &genomes,
        |b, genomes| {
            b.iter(|| {
                let mut backend = GpuBackend::default();
                black_box(
                    backend
                        .try_evaluate_population(genomes, env, 5)
                        .expect("feed-forward population"),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("inax"),
        &genomes,
        |b, genomes| {
            b.iter(|| {
                let mut backend = InaxBackend::new(
                    InaxConfig::builder().num_pu(16).num_pe(2).build(),
                    SwCostModel::default(),
                );
                black_box(
                    backend
                        .try_evaluate_population(genomes, env, 5)
                        .expect("feed-forward population"),
                )
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
