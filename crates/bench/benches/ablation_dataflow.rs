//! Ablation bench: output- vs weight- vs input-stationary dataflows
//! (the design choice of paper §IV-E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_inax::synthetic::synthetic_population;
use e3_inax::{schedule_inference, Dataflow, InaxConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let nets = synthetic_population(20, 8, 4, 30, 0.2, 11);
    let mut group = c.benchmark_group("ablation_dataflow");
    group.sample_size(20);
    for (name, dataflow) in [
        ("output_stationary", Dataflow::OutputStationary),
        ("weight_stationary", Dataflow::WeightStationary),
        ("input_stationary", Dataflow::InputStationary),
    ] {
        let config = InaxConfig::builder().num_pe(4).dataflow(dataflow).build();
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                nets.iter()
                    .map(|n| schedule_inference(black_box(config), n).wall_cycles)
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
