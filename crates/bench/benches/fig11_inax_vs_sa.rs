//! Fig. 11 bench: INAX scheduling vs systolic-array lowering + timing.

use criterion::{criterion_group, criterion_main, Criterion};
use e3_inax::synthetic::synthetic_population;
use e3_inax::{schedule_inference, InaxConfig};
use e3_systolic::{DensePaddedNet, SystolicArray, SystolicConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let nets = synthetic_population(20, 8, 4, 30, 0.2, 5);
    let padded: Vec<DensePaddedNet> = nets.iter().map(DensePaddedNet::from_irregular).collect();
    let mut group = c.benchmark_group("fig11_inax_vs_sa");
    group.sample_size(20);
    group.bench_function("inax_schedule_16pe", |b| {
        let config = InaxConfig::builder().num_pe(16).build();
        b.iter(|| {
            nets.iter()
                .map(|n| schedule_inference(black_box(&config), n).wall_cycles)
                .sum::<u64>()
        })
    });
    group.bench_function("sa_cycles_16pe", |b| {
        let sa = SystolicArray::new(SystolicConfig::builder().num_pe(16).build());
        b.iter(|| {
            padded
                .iter()
                .map(|p| sa.inference_cycles(black_box(p)))
                .sum::<u64>()
        })
    });
    group.bench_function("sa_lowering", |b| {
        b.iter(|| {
            nets.iter()
                .map(|n| DensePaddedNet::from_irregular(black_box(n)).dense_connections())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
