//! exec scaling bench: population evaluation wall time vs worker
//! threads (the host-side analogue of Fig. 7's PU sweep).
//!
//! Measures `CpuBackend::try_evaluate_population` at 1/2/4/8 worker
//! threads on CartPole and LunarLander with a population of 64.
//! Results are bit-identical at every thread count (the determinism
//! contract of `e3-exec`); only the wall clock should move, and only
//! when free cores exist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_envs::EnvId;
use e3_neat::{NeatConfig, Population};
use e3_platform::{CpuBackend, EvalBackend, SwCostModel};
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const POPULATION: usize = 64;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_scaling");
    group.sample_size(10);
    for env in [EnvId::CartPole, EnvId::LunarLander] {
        let neat = NeatConfig::builder(env.observation_size(), env.policy_outputs())
            .population_size(POPULATION)
            .build();
        let genomes = Population::new(neat, 3).genomes().to_vec();
        for threads in THREADS {
            // The pool is built once per configuration so the bench
            // times steady-state evaluation, not worker spawning.
            let mut backend = CpuBackend::with_threads(SwCostModel::default(), threads);
            group.bench_with_input(
                BenchmarkId::new(env.name(), threads),
                &genomes,
                |b, genomes| {
                    b.iter(|| {
                        black_box(
                            backend
                                .try_evaluate_population(genomes, env, 5)
                                .expect("feed-forward population"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
