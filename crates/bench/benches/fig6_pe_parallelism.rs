//! Fig. 6 bench: INAX inference scheduling across PE counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e3_inax::synthetic::synthetic_population_with_mutations;
use e3_inax::{schedule_inference, InaxConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let population = synthetic_population_with_mutations(40, 8, 10, 30, 0.2, 0, 70);
    let mut group = c.benchmark_group("fig6_pe_parallelism");
    group.sample_size(20);
    for num_pe in [1usize, 5, 10, 15, 20] {
        let config = InaxConfig::builder().num_pe(num_pe).build();
        group.bench_with_input(BenchmarkId::from_parameter(num_pe), &config, |b, config| {
            b.iter(|| {
                let mut cycles = 0u64;
                for net in &population {
                    cycles += schedule_inference(black_box(config), black_box(net)).wall_cycles;
                }
                cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
