//! Property tests: the dense lowering is semantics-preserving and the
//! SA cycle model behaves sanely on arbitrary evolved topologies.

use e3_inax::synthetic::synthetic_genome_with_mutations;
use e3_inax::IrregularNet;
use e3_systolic::{DensePaddedNet, SystolicArray, SystolicConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense padding computes the same function as the irregular net.
    #[test]
    fn lowering_preserves_semantics(
        seed in any::<u64>(),
        hidden in 0usize..20,
        mutations in 0usize..8,
        density in 0.1f64..0.9,
        x in proptest::collection::vec(-4.0f64..4.0, 5),
    ) {
        let genome = synthetic_genome_with_mutations(5, 3, hidden, density, mutations, seed);
        let net = IrregularNet::try_from(&genome).expect("feed-forward");
        let padded = DensePaddedNet::from_irregular(&net);
        let want = net.evaluate(&x);
        let got = padded.evaluate(&x);
        prop_assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            prop_assert!((w - g).abs() < 1e-9, "{w} vs {g}");
        }
    }

    /// The dense counterpart never has fewer connections than the real
    /// network, and dummy nodes appear only when links skip levels.
    #[test]
    fn padding_counts_are_consistent(
        seed in any::<u64>(),
        hidden in 0usize..20,
        mutations in 0usize..8,
    ) {
        let genome = synthetic_genome_with_mutations(5, 3, hidden, 0.4, mutations, seed);
        let net = IrregularNet::try_from(&genome).expect("feed-forward");
        let padded = DensePaddedNet::from_irregular(&net);
        prop_assert!(padded.dense_connections() >= net.num_connections());
        prop_assert_eq!(padded.real_nodes(), net.num_compute_nodes());
        let total_outputs: usize = padded.layers().iter().map(|l| l.out_width()).sum();
        prop_assert_eq!(total_outputs, padded.real_nodes() + padded.dummy_nodes());
    }

    /// SA cycles have an interior optimum: some PE count beats both
    /// the serial extreme and the over-provisioned extreme (the paper's
    /// Fig. 11 observation that the SA is best at 16 PEs and *worse*
    /// at 64 — pipeline fill/drain grows with the array length, so SA
    /// scaling is NOT monotone).
    #[test]
    fn sa_cycles_have_an_interior_optimum(
        seed in any::<u64>(),
        hidden in 1usize..20,
    ) {
        let genome = synthetic_genome_with_mutations(5, 3, hidden, 0.4, 2, seed);
        let net = IrregularNet::try_from(&genome).expect("feed-forward");
        let padded = DensePaddedNet::from_irregular(&net);
        let sweep = [1usize, 2, 4, 8, 16, 64];
        let cycles: Vec<u64> = sweep
            .iter()
            .map(|&pes| {
                let sa = SystolicArray::new(SystolicConfig::builder().num_pe(pes).build());
                sa.inference_cycles(&padded)
            })
            .collect();
        prop_assert!(cycles.iter().all(|&c| c > 0));
        let best = cycles.iter().copied().min().expect("non-empty");
        prop_assert!(best <= cycles[0], "some parallel point is at least as good as serial");
        // Over-provisioning far past every layer's width cannot beat
        // the best interior point (fill/drain dominates).
        prop_assert!(*cycles.last().expect("non-empty") >= best);
    }
}
