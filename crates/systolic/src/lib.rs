//! # e3-systolic — the GeneSys-style systolic-array baseline
//!
//! The E3 paper's Fig. 11 contrasts INAX against the accelerator
//! structure GeneSys uses for NEAT inference: a **1-D systolic array**
//! (SA) executing MLP-type calculations, parallelized across PUs for a
//! fair comparison. A regular array cannot consume an irregular network
//! directly; it must execute the network's *dense MLP counterpart*
//! (paper Fig. 4(d)):
//!
//! * sparse connectivity is **zero-filled** — every output node pays
//!   for a full row of MACs over the whole previous layer;
//! * cross-level skip links force **dummy pass-through nodes** that
//!   repeat a value through every intermediate layer so data always
//!   flows layer-by-layer.
//!
//! [`DensePaddedNet`] performs that lowering (and evaluates it, so the
//! tests can prove the padding is semantics-preserving), and
//! [`SystolicArray`] applies the 1-D SA cycle model on top.
//!
//! ## Example
//!
//! ```
//! use e3_systolic::{DensePaddedNet, SystolicArray, SystolicConfig};
//! use e3_inax::synthetic::synthetic_net;
//!
//! let net = synthetic_net(8, 4, 30, 0.2, 1);
//! let padded = DensePaddedNet::from_irregular(&net);
//! assert!(padded.dense_connections() > net.num_connections());
//! let sa = SystolicArray::new(SystolicConfig::builder().num_pe(16).build());
//! assert!(sa.inference_cycles(&padded) > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod padding;

pub use array::{SystolicArray, SystolicConfig, SystolicConfigBuilder};
pub use padding::{DenseLayer, DensePaddedNet};
