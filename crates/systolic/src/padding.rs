//! Lowering an irregular network to its dense MLP counterpart.
//!
//! A systolic array only understands layer-to-layer dense matrices, so
//! an irregular network is rewritten (paper Fig. 4(c)→(d)):
//!
//! * every compute level becomes one dense layer whose input is *every
//!   value alive* at that point;
//! * a value produced at level `i` and consumed at level `j > i + 1`
//!   is carried by **dummy pass-through nodes** (identity activation,
//!   single unit weight) through levels `i+1 .. j-1`;
//! * output nodes that settle at early levels are likewise carried to
//!   the final layer, where the result vector is read out.
//!
//! The lowering is semantics-preserving: evaluating the dense
//! counterpart produces bit-identical outputs to the irregular
//! network, which the tests verify.
//!
//! Like every backend view, the lowering starts from the compiled
//! [`NetPlan`] IR: [`DensePaddedNet::from_plan`] consumes the plan's
//! level ranges and value-buffer slot convention (via the hardware
//! view [`IrregularNet`], which is itself a direct copy of the plan).

use e3_inax::IrregularNet;
use e3_neat::{Activation, NetPlan};
use serde::{Deserialize, Serialize};

/// One dense layer of the padded counterpart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Number of input values to this layer.
    pub in_width: usize,
    /// Row-major weights: `out_width × in_width`.
    pub weights: Vec<f64>,
    /// Per-output bias.
    pub biases: Vec<f64>,
    /// Per-output activation (dummies use identity).
    pub activations: Vec<Activation>,
    /// How many of the outputs are dummy pass-through nodes.
    pub dummy_outputs: usize,
}

impl DenseLayer {
    /// Number of output values this layer produces.
    pub fn out_width(&self) -> usize {
        self.biases.len()
    }

    /// Evaluates the layer.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.in_width`.
    pub fn evaluate(&self, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(inputs.len(), self.in_width, "layer input width mismatch");
        (0..self.out_width())
            .map(|row| {
                let base = row * self.in_width;
                let sum: f64 = self.weights[base..base + self.in_width]
                    .iter()
                    .zip(inputs)
                    .map(|(w, x)| w * x)
                    .sum();
                self.activations[row].apply(sum + self.biases[row])
            })
            .collect()
    }
}

/// The dense MLP counterpart of an irregular network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensePaddedNet {
    num_inputs: usize,
    layers: Vec<DenseLayer>,
    /// Positions of the network outputs in the last layer's output
    /// vector, in genome output order.
    output_positions: Vec<usize>,
    dummy_nodes: usize,
    real_nodes: usize,
}

impl DensePaddedNet {
    /// Lowers a compiled [`NetPlan`] into its dense counterpart: the
    /// plan's compute-level ranges become the dense layers, and its
    /// value-buffer slots become the carried values.
    pub fn from_plan(plan: &NetPlan) -> Self {
        Self::from_irregular(&IrregularNet::from_plan(plan))
    }

    /// Lowers an irregular network into its dense counterpart.
    pub fn from_irregular(net: &IrregularNet) -> Self {
        let num_inputs = net.num_inputs();
        let num_levels = net.levels().len();
        let total_slots = net.value_buffer_slots();

        // Slot bookkeeping: production level and last level of use.
        let mut produce_level = vec![0usize; total_slots];
        let mut node_level = vec![0usize; net.num_compute_nodes()];
        for (level_idx, &(start, end)) in net.levels().iter().enumerate() {
            for node in start..end {
                node_level[node] = level_idx + 1; // compute levels are 1-based
                produce_level[num_inputs + node] = level_idx + 1;
            }
        }
        let mut last_use = produce_level.clone(); // unused values die immediately
        for (node, hw) in net.nodes().iter().enumerate() {
            for &(slot, _) in &hw.ingress {
                last_use[slot] = last_use[slot].max(node_level[node]);
            }
        }
        // The SA streams the full observation vector, so every input is
        // alive at least into layer 1 even if nothing reads it.
        for lu in last_use.iter_mut().take(num_inputs) {
            *lu = (*lu).max(1);
        }
        // The read-out happens after the final layer: outputs must
        // survive to the end.
        let mut output_slots = Vec::new();
        for &node in net.output_node_indices() {
            let slot = num_inputs + node;
            // `num_levels + 1` so an early-level output is still carried
            // through (and appears in) the final layer's output vector.
            last_use[slot] = last_use[slot].max(num_levels + 1);
            output_slots.push(slot);
        }

        // Build layers level by level; all inputs enter layer 1.
        let mut layers: Vec<DenseLayer> = Vec::with_capacity(num_levels);
        let mut alive: Vec<usize> = (0..num_inputs).collect();
        let mut dummy_nodes = 0usize;
        for level in 1..=num_levels {
            let in_slots = alive.clone();
            let slot_pos = |slot: usize, set: &[usize]| -> usize {
                set.iter()
                    .position(|&s| s == slot)
                    .expect("ingress slot must be alive")
            };
            let (start, end) = net.levels()[level - 1];
            let mut out_slots: Vec<usize> = Vec::new();
            let mut weights: Vec<f64> = Vec::new();
            let mut biases = Vec::new();
            let mut activations = Vec::new();
            // Real nodes of this level.
            for node in start..end {
                let hw = &net.nodes()[node];
                let mut row = vec![0.0; in_slots.len()];
                for &(slot, w) in &hw.ingress {
                    row[slot_pos(slot, &in_slots)] += w;
                }
                weights.extend_from_slice(&row);
                biases.push(hw.bias);
                activations.push(hw.activation);
                out_slots.push(num_inputs + node);
            }
            // Dummy pass-throughs: alive values still needed later.
            let mut dummies = 0usize;
            for &slot in &in_slots {
                if last_use[slot] > level {
                    let mut row = vec![0.0; in_slots.len()];
                    row[slot_pos(slot, &in_slots)] = 1.0;
                    weights.extend_from_slice(&row);
                    biases.push(0.0);
                    activations.push(Activation::Identity);
                    out_slots.push(slot);
                    dummies += 1;
                }
            }
            dummy_nodes += dummies;
            layers.push(DenseLayer {
                in_width: in_slots.len(),
                weights,
                biases,
                activations,
                dummy_outputs: dummies,
            });
            alive = out_slots;
        }

        let output_positions = output_slots
            .iter()
            .map(|&slot| {
                alive
                    .iter()
                    .position(|&s| s == slot)
                    .expect("outputs are carried to the final layer")
            })
            .collect();

        DensePaddedNet {
            num_inputs,
            layers,
            output_positions,
            dummy_nodes,
            real_nodes: net.num_compute_nodes(),
        }
    }

    /// The dense layers in execution order.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Number of dummy pass-through nodes the padding inserted
    /// (the transparent nodes of paper Fig. 4(d)).
    pub fn dummy_nodes(&self) -> usize {
        self.dummy_nodes
    }

    /// Number of real compute nodes.
    pub fn real_nodes(&self) -> usize {
        self.real_nodes
    }

    /// Total dense connections the SA must compute (zero-filled):
    /// `Σ out_width × in_width`.
    pub fn dense_connections(&self) -> usize {
        self.layers.iter().map(|l| l.out_width() * l.in_width).sum()
    }

    /// Evaluates the dense counterpart; bit-identical to the source
    /// irregular network.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the source input count.
    pub fn evaluate(&self, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(inputs.len(), self.num_inputs, "input size mismatch");
        let mut values = inputs.to_vec();
        for layer in &self.layers {
            values = layer.evaluate(&values);
        }
        self.output_positions.iter().map(|&p| values[p]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_inax::synthetic::synthetic_net;
    use e3_inax::IrregularNet;
    use e3_neat::{Genome, InnovationTracker};

    fn skip_net() -> IrregularNet {
        // 2 inputs -> hidden chain of 2 -> output, with a skip from
        // input 1 straight to the output (spans 3 levels).
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let i1 = g.add_connection(0, 2, 0.8, &mut tracker).unwrap();
        let h1 = g
            .split_connection(i1, Activation::Relu, &mut tracker)
            .unwrap();
        let i2 = g.connection_between(h1, 2).unwrap().innovation;
        let _h2 = g
            .split_connection(i2, Activation::Tanh, &mut tracker)
            .unwrap();
        g.add_connection(1, 2, -0.5, &mut tracker).unwrap();
        IrregularNet::try_from(&g).unwrap()
    }

    #[test]
    fn from_plan_matches_plan_execution_bit_for_bit() {
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let i1 = g.add_connection(0, 2, 0.8, &mut tracker).unwrap();
        g.split_connection(i1, Activation::Relu, &mut tracker)
            .unwrap();
        g.add_connection(1, 2, -0.5, &mut tracker).unwrap();
        let plan = NetPlan::compile(&g).unwrap();
        let padded = DensePaddedNet::from_plan(&plan);
        assert_eq!(
            padded,
            DensePaddedNet::from_irregular(&IrregularNet::from_plan(&plan))
        );
        for input in [[0.0, 0.0], [1.0, -1.0], [0.3, 0.7]] {
            assert_eq!(padded.evaluate(&input), plan.execute(&input));
        }
    }

    #[test]
    fn skip_links_create_dummies() {
        let net = skip_net();
        let padded = DensePaddedNet::from_irregular(&net);
        assert!(
            padded.dummy_nodes() > 0,
            "the input-to-output skip needs carrying"
        );
        assert_eq!(padded.real_nodes(), net.num_compute_nodes());
        assert!(padded.dense_connections() > net.num_connections());
    }

    #[test]
    fn padding_preserves_semantics_on_skip_net() {
        let net = skip_net();
        let padded = DensePaddedNet::from_irregular(&net);
        for input in [[0.0, 0.0], [1.0, 1.0], [-0.5, 2.0], [3.0, -3.0]] {
            let want = net.evaluate(&input);
            let got = padded.evaluate(&input);
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() < 1e-12, "{w} vs {g}");
            }
        }
    }

    #[test]
    fn padding_preserves_semantics_on_synthetic_nets() {
        for seed in 0..8 {
            let net = synthetic_net(8, 4, 20, 0.25, seed);
            let padded = DensePaddedNet::from_irregular(&net);
            let input: Vec<f64> = (0..8).map(|i| ((seed + i) as f64 * 0.61).cos()).collect();
            let want = net.evaluate(&input);
            let got = padded.evaluate(&input);
            assert_eq!(want.len(), got.len());
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() < 1e-9, "seed {seed}: {w} vs {g}");
            }
        }
    }

    #[test]
    fn dense_connection_count_matches_fig4_example() {
        // A 3-3-3 regular net: padding adds nothing, dense counterpart
        // = 18 connections.
        let mut tracker = InnovationTracker::with_reserved_nodes(6);
        let mut g = Genome::bare(3, 3);
        let mut hidden = Vec::new();
        for i in 0..3 {
            let inv = g.add_connection(i, 3 + i, 1.0, &mut tracker).unwrap();
            hidden.push(
                g.split_connection(inv, Activation::Tanh, &mut tracker)
                    .unwrap(),
            );
        }
        for &h in &hidden {
            for o in 3..6 {
                if g.connection_between(h, o).is_none() {
                    g.add_connection(h, o, 0.5, &mut tracker).unwrap();
                }
            }
        }
        for i in 0..3usize {
            for &h in &hidden {
                if g.connection_between(i, h).is_none() {
                    g.add_connection(i, h, 0.5, &mut tracker).unwrap();
                }
            }
        }
        let net = IrregularNet::try_from(&g).unwrap();
        let padded = DensePaddedNet::from_irregular(&net);
        assert_eq!(
            padded.dummy_nodes(),
            0,
            "fully regular net needs no dummies"
        );
        assert_eq!(padded.dense_connections(), 18);
    }

    #[test]
    fn layer_evaluate_checks_width() {
        let net = skip_net();
        let padded = DensePaddedNet::from_irregular(&net);
        let layer = &padded.layers()[0];
        let err = std::panic::catch_unwind(|| layer.evaluate(&[0.0]));
        assert!(err.is_err() || layer.in_width == 1);
    }
}
