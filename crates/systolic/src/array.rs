//! 1-D systolic array cycle model.
//!
//! The baseline accelerator of paper Fig. 11: a weight-stationary 1-D
//! systolic array executing the dense MLP counterpart layer by layer.
//! For a layer with `m_in` inputs and `m_out` outputs on `n` PEs:
//!
//! * outputs are processed in `⌈m_out/n⌉` passes;
//! * each pass streams the full (zero-filled) input vector through the
//!   array: `m_in` MAC beats plus `n` pipeline fill/drain beats;
//! * every layer pays an **input-data-alignment** phase (the paper's
//!   GeneSys critique): gathering the previous layer's outputs — real
//!   and dummy — into the streaming order costs one beat per input.
//!
//! Functional output equals [`DensePaddedNet::evaluate`]; this module
//! adds only timing.

use crate::padding::DensePaddedNet;
use serde::{Deserialize, Serialize};

/// Configuration of the systolic-array baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystolicConfig {
    /// Number of PEs in the 1-D array.
    pub num_pe: usize,
    /// Cycles per MAC beat.
    pub mac_cycles: u64,
    /// Cycles to apply activation to one emitted output.
    pub activation_cycles: u64,
    /// Per-layer input alignment cost in cycles per input value.
    pub alignment_cycles_per_input: u64,
    /// Cycles to load one weight during set-up (the SA loads the dense
    /// zero-filled matrices).
    pub setup_cycles_per_weight: u64,
}

impl SystolicConfig {
    /// Starts a builder with defaults matching the INAX cost model
    /// (MAC = 1 cycle) for a fair comparison.
    pub fn builder() -> SystolicConfigBuilder {
        SystolicConfigBuilder {
            config: SystolicConfig {
                num_pe: 1,
                mac_cycles: 1,
                activation_cycles: 2,
                alignment_cycles_per_input: 1,
                setup_cycles_per_weight: 1,
            },
        }
    }
}

impl Default for SystolicConfig {
    fn default() -> Self {
        Self::builder().build()
    }
}

/// Builder for [`SystolicConfig`].
#[derive(Debug, Clone)]
pub struct SystolicConfigBuilder {
    config: SystolicConfig,
}

impl SystolicConfigBuilder {
    /// Sets the PE count.
    pub fn num_pe(mut self, n: usize) -> Self {
        self.config.num_pe = n;
        self
    }

    /// Sets the per-layer alignment cost per input value.
    pub fn alignment_cycles_per_input(mut self, c: u64) -> Self {
        self.config.alignment_cycles_per_input = c;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_pe == 0`.
    pub fn build(self) -> SystolicConfig {
        assert!(self.config.num_pe > 0, "the array needs at least one PE");
        self.config
    }
}

/// The systolic-array baseline accelerator (one PU's worth; PU-level
/// parallelism reuses [`e3_inax::cluster::analyze_pu_parallelism`]).
#[derive(Debug, Clone)]
pub struct SystolicArray {
    config: SystolicConfig,
}

impl SystolicArray {
    /// Creates an array with the given configuration.
    pub fn new(config: SystolicConfig) -> Self {
        SystolicArray { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// Cycles for one inference of the padded network.
    pub fn inference_cycles(&self, net: &DensePaddedNet) -> u64 {
        let n = self.config.num_pe as u64;
        let mut cycles = 0u64;
        for layer in net.layers() {
            let m_in = layer.in_width as u64;
            let m_out = layer.out_width() as u64;
            let passes = m_out.div_ceil(n);
            cycles += self.config.alignment_cycles_per_input * m_in;
            cycles += passes * (m_in * self.config.mac_cycles + n);
            cycles +=
                m_out * self.config.activation_cycles / n.max(1) + self.config.activation_cycles;
        }
        cycles
    }

    /// Useful MAC cycles per inference: only the real (non-dummy,
    /// non-zero-filled) connections do useful work. Everything else in
    /// [`SystolicArray::inference_cycles`] is padding/zero-fill loss.
    pub fn useful_mac_cycles(&self, real_connections: usize) -> u64 {
        real_connections as u64 * self.config.mac_cycles
    }

    /// Set-up cycles: loading the full dense weight matrices.
    pub fn setup_cycles(&self, net: &DensePaddedNet) -> u64 {
        net.dense_connections() as u64 * self.config.setup_cycles_per_weight
    }

    /// Utilization proxy: useful MACs over total inference
    /// PE-cycles.
    pub fn efficiency(&self, net: &DensePaddedNet, real_connections: usize) -> f64 {
        let total = self.inference_cycles(net) * self.config.num_pe as u64;
        if total == 0 {
            return 1.0;
        }
        self.useful_mac_cycles(real_connections) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_inax::synthetic::synthetic_net;
    use e3_inax::{schedule_inference, InaxConfig};

    fn padded(seed: u64) -> (DensePaddedNet, usize) {
        let net = synthetic_net(8, 4, 30, 0.2, seed);
        let real = net.num_connections();
        (DensePaddedNet::from_irregular(&net), real)
    }

    #[test]
    fn more_pes_reduce_cycles_with_diminishing_returns() {
        let (net, _) = padded(1);
        let mut prev = u64::MAX;
        for n in [1, 2, 4, 8, 16, 64] {
            let sa = SystolicArray::new(SystolicConfig::builder().num_pe(n).build());
            let c = sa.inference_cycles(&net);
            assert!(c <= prev, "{n} PEs: {c} > {prev}");
            prev = c;
        }
        // At 64 PEs every layer is one pass; streaming dominates, so
        // doubling PEs further would win almost nothing.
        let sa64 = SystolicArray::new(SystolicConfig::builder().num_pe(64).build());
        let sa128 = SystolicArray::new(SystolicConfig::builder().num_pe(128).build());
        let (c64, c128) = (sa64.inference_cycles(&net), sa128.inference_cycles(&net));
        assert!(
            c128 as f64 >= 0.6 * c64 as f64,
            "diminishing returns past one pass"
        );
    }

    #[test]
    fn sa_is_slower_than_inax_at_matched_pe_count() {
        // The headline claim of Fig. 11: the SA pays for zero-filling
        // and dummy padding that INAX avoids.
        for seed in 0..5 {
            let irregular = synthetic_net(8, 4, 30, 0.2, seed);
            let dense = DensePaddedNet::from_irregular(&irregular);
            for pes in [1usize, 4, 16] {
                let inax =
                    schedule_inference(&InaxConfig::builder().num_pe(pes).build(), &irregular)
                        .wall_cycles;
                let sa = SystolicArray::new(SystolicConfig::builder().num_pe(pes).build());
                let sa_cycles = sa.inference_cycles(&dense);
                assert!(
                    sa_cycles > inax,
                    "seed {seed}, {pes} PEs: SA {sa_cycles} <= INAX {inax}"
                );
            }
        }
    }

    #[test]
    fn setup_loads_dense_matrices() {
        let (net, real) = padded(2);
        let sa = SystolicArray::new(SystolicConfig::default());
        assert_eq!(sa.setup_cycles(&net), net.dense_connections() as u64);
        assert!(
            net.dense_connections() > real,
            "zero-filling inflates the load"
        );
    }

    #[test]
    fn efficiency_decreases_with_overprovisioning() {
        let (net, real) = padded(3);
        let e1 =
            SystolicArray::new(SystolicConfig::builder().num_pe(1).build()).efficiency(&net, real);
        let e64 =
            SystolicArray::new(SystolicConfig::builder().num_pe(64).build()).efficiency(&net, real);
        assert!(e1 > e64);
        assert!(e1 <= 1.0);
    }
}
