//! Op-count and memory accounting (paper Tables IV and V).
//!
//! Table IV contrasts the per-step compute and memory of RL (A2C), a
//! fixed-topology EA, and NEAT. Table V lists the node/connection
//! counts of the Small/Large RL networks versus NEAT's evolved
//! networks. Both are pure functions of the network shapes, computed
//! here.

use crate::mlp::Mlp;
use serde::{Deserialize, Serialize};

/// Node/connection counts of a network (Table V rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkComplexity {
    /// Total nodes, including inputs.
    pub nodes: usize,
    /// Total connections (weights).
    pub connections: usize,
}

impl NetworkComplexity {
    /// Complexity of an MLP.
    pub fn of_mlp(net: &Mlp) -> Self {
        NetworkComplexity {
            nodes: net.num_nodes(),
            connections: net.num_connections(),
        }
    }

    /// Complexity of a layered MLP described by its sizes (input
    /// first), without building it.
    pub fn of_sizes(sizes: &[usize]) -> Self {
        NetworkComplexity {
            nodes: sizes.iter().sum(),
            connections: sizes.windows(2).map(|w| w[0] * w[1]).sum(),
        }
    }
}

/// Per-environment-step operation and memory overheads (Table IV
/// rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmOverhead {
    /// Operations in the forward/predict path per env step (MACs
    /// counted as 2 ops).
    pub ops_forward: u64,
    /// Operations in the backward/update path per env step.
    pub ops_backward: u64,
    /// Working memory in bytes: parameters, activations, and any
    /// replay/rollout storage, at 4 bytes per value (deployment
    /// precision).
    pub local_memory_bytes: u64,
}

impl AlgorithmOverhead {
    /// A2C overhead: actor + critic forward each step; one backward
    /// pass (≈ 2× forward ops) amortized per step; memory holds both
    /// networks' parameters + activations + optimizer state (2× params
    /// for Adam) + the n-step rollout buffer.
    pub fn a2c(actor: &Mlp, critic: &Mlp, n_steps: usize, obs_size: usize) -> Self {
        let fwd = 2 * (actor.num_connections() + critic.num_connections()) as u64;
        let bwd = 2 * fwd;
        let params = (actor.num_params() + critic.num_params()) as u64;
        let activations = (actor.num_nodes() + critic.num_nodes()) as u64;
        let rollout = (n_steps * (obs_size + 4)) as u64;
        AlgorithmOverhead {
            ops_forward: fwd,
            ops_backward: bwd,
            local_memory_bytes: 4 * (params * 3 + activations + rollout),
        }
    }

    /// Fixed-topology EA (OpenAI-ES / GA style): same forward inference
    /// as the RL actor (policy only — no critic), no backward pass;
    /// memory holds the parameter vector (and a perturbation copy).
    pub fn fixed_topology_ea(policy: &Mlp) -> Self {
        let fwd = 2 * policy.num_connections() as u64 * 2; // policy + perturbed copy evaluated
        AlgorithmOverhead {
            ops_forward: fwd,
            ops_backward: 0,
            local_memory_bytes: 4 * (2 * policy.num_params() as u64 + policy.num_nodes() as u64),
        }
    }

    /// NEAT overhead for an evolved genome of the given complexity:
    /// forward is the sparse connection count, no backward; memory is
    /// the genome (per connection: endpoints + weight ≈ 3 words; per
    /// node: bias + activation ≈ 2 words) plus the value buffer.
    pub fn neat(complexity: NetworkComplexity) -> Self {
        AlgorithmOverhead {
            ops_forward: 2 * complexity.connections as u64,
            ops_backward: 0,
            local_memory_bytes: 4
                * (3 * complexity.connections as u64 + 3 * complexity.nodes as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkSize;

    #[test]
    fn table5_small_network_counts() {
        // Paper Table V (Small): Acrobot 137 nodes / Bipedal 156 nodes.
        // (The paper counts a single policy head; see EXPERIMENTS.md.)
        let acrobot = NetworkComplexity::of_sizes(&[6, 64, 64, 3]);
        assert_eq!(acrobot.nodes, 137);
        assert_eq!(acrobot.connections, 6 * 64 + 64 * 64 + 64 * 3);
        let bipedal = NetworkComplexity::of_sizes(&[24, 64, 64, 4]);
        assert_eq!(bipedal.nodes, 156);
        assert_eq!(bipedal.connections, 5_888);
    }

    #[test]
    fn table5_large_network_counts() {
        // Paper Table V (Large): Acrobot 5,443 nodes; our 3×256 layout.
        let acrobot = NetworkComplexity::of_sizes(&[6, 256, 256, 256, 3]);
        assert_eq!(acrobot.nodes, 6 + 768 + 3);
        assert!(acrobot.connections > 100_000);
    }

    #[test]
    fn overhead_ordering_matches_table4() {
        // Table IV: A2C ≫ EA ≫ NEAT on every column.
        let sizes = NetworkSize::Small.hidden_layers();
        let mut actor_sizes = vec![8usize];
        actor_sizes.extend_from_slice(sizes);
        actor_sizes.push(4);
        let actor = Mlp::new(&actor_sizes, 1);
        let mut critic_sizes = vec![8usize];
        critic_sizes.extend_from_slice(sizes);
        critic_sizes.push(1);
        let critic = Mlp::new(&critic_sizes, 2);
        let a2c = AlgorithmOverhead::a2c(&actor, &critic, 8, 8);
        let ea = AlgorithmOverhead::fixed_topology_ea(&actor);
        let neat = AlgorithmOverhead::neat(NetworkComplexity {
            nodes: 14,
            connections: 17,
        });
        assert!(a2c.ops_backward > 0 && ea.ops_backward == 0 && neat.ops_backward == 0);
        assert!(a2c.local_memory_bytes > ea.local_memory_bytes);
        assert!(ea.local_memory_bytes > neat.local_memory_bytes);
        assert!(
            a2c.ops_forward > neat.ops_forward * 100,
            "orders of magnitude apart"
        );
        // Magnitude classes from the paper: A2C forward ~33K ops,
        // NEAT ~0.1K, memory ~268KB vs ~0.4KB.
        assert!(a2c.ops_forward > 10_000);
        assert!(neat.ops_forward < 200);
        assert!(neat.local_memory_bytes < 1_024);
    }
}
