//! # e3-rl — gradient-based RL baselines for the E3 comparison
//!
//! The E3 paper motivates NEAT by profiling it against two popular
//! deep-RL algorithms (§III): **A2C** (Advantage Actor-Critic) and
//! **PPO2** (Proximal Policy Optimization), run with *Small* (2 hidden
//! layers × 64) and *Large* (3 × 256) MLP policies. This crate
//! reimplements both from scratch on a minimal dense-MLP backprop
//! framework so the reproduction can regenerate:
//!
//! * Fig. 2 — fitness-vs-runtime convergence traces;
//! * Fig. 3 — the Forward vs Training runtime split (Training ≈ 60%);
//! * Table IV — forward/backward op counts and local memory;
//! * Table V — node/connection counts of the Small and Large networks.
//!
//! ## Example
//!
//! ```
//! use e3_rl::{A2c, A2cConfig, NetworkSize};
//! use e3_envs::EnvId;
//!
//! let config = A2cConfig::new(EnvId::CartPole, NetworkSize::Small);
//! let mut agent = A2c::new(config, 7);
//! let reward = agent.train_steps(200); // a short burst of training
//! assert!(reward.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod a2c;
pub mod accounting;
pub mod dqn;
pub mod head;
pub mod mlp;
pub mod ppo;
pub mod profile;

pub use a2c::{A2c, A2cConfig};
pub use accounting::{AlgorithmOverhead, NetworkComplexity};
pub use dqn::{Dqn, DqnConfig};
pub use head::PolicyHead;
pub use mlp::{Adam, Mlp};
pub use ppo::{Ppo, PpoConfig};
pub use profile::RlProfile;

use serde::{Deserialize, Serialize};

/// The two policy-network sizes profiled in the paper (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkSize {
    /// Two hidden layers of 64 units.
    Small,
    /// Three hidden layers of 256 units.
    Large,
}

impl NetworkSize {
    /// Hidden layer widths.
    pub fn hidden_layers(self) -> &'static [usize] {
        match self {
            NetworkSize::Small => &[64, 64],
            NetworkSize::Large => &[256, 256, 256],
        }
    }
}
