//! Runtime split instrumentation (paper Fig. 3).
//!
//! The paper divides RL runtime into **Forward** (the predict/rollout
//! phase: action selection and environment interaction) and
//! **Training** (backpropagation and optimizer updates), observing
//! Training ≈ 60%. The agents accumulate both here.

use std::time::Duration;

/// Accumulated Forward/Training wall-time of an RL agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RlProfile {
    forward: Duration,
    training: Duration,
}

impl RlProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds time spent in the Forward (rollout/predict) phase.
    pub fn add_forward(&mut self, d: Duration) {
        self.forward += d;
    }

    /// Adds time spent in the Training (backprop/update) phase.
    pub fn add_training(&mut self, d: Duration) {
        self.training += d;
    }

    /// Total Forward time.
    pub fn forward(&self) -> Duration {
        self.forward
    }

    /// Total Training time.
    pub fn training(&self) -> Duration {
        self.training
    }

    /// Total profiled time.
    pub fn total(&self) -> Duration {
        self.forward + self.training
    }

    /// `(forward_fraction, training_fraction)`; zeros when empty.
    pub fn fractions(&self) -> (f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0);
        }
        (
            self.forward.as_secs_f64() / total,
            self.training.as_secs_f64() / total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let mut p = RlProfile::new();
        p.add_forward(Duration::from_millis(40));
        p.add_training(Duration::from_millis(60));
        let (f, t) = p.fractions();
        assert!((f + t - 1.0).abs() < 1e-12);
        assert!((t - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_reports_zero() {
        assert_eq!(RlProfile::new().fractions(), (0.0, 0.0));
        assert_eq!(RlProfile::new().total(), Duration::ZERO);
    }
}
