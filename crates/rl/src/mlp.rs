//! Minimal dense MLP with backpropagation and Adam.
//!
//! Deliberately simple — row-major `f64` matrices and explicit loops —
//! because the policy networks are small and the point is a faithful,
//! dependency-free baseline, not a deep-learning framework.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fully-connected network with `tanh` hidden activations and a
/// linear output layer (policy/value heads are applied by the caller).
///
/// # Example
///
/// ```
/// use e3_rl::Mlp;
///
/// let net = Mlp::new(&[3, 8, 2], 1);
/// let out = net.forward(&[0.1, -0.2, 0.3]);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    sizes: Vec<usize>,
    /// Per layer: `out × in` row-major weights.
    weights: Vec<Vec<f64>>,
    biases: Vec<Vec<f64>>,
}

/// Cached per-layer values from [`Mlp::forward_cached`], needed by the
/// backward pass.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Layer inputs: `activations[0]` is the network input,
    /// `activations[l]` the post-activation output of layer `l-1`.
    activations: Vec<Vec<f64>>,
    /// Pre-activation sums per layer.
    pre_activations: Vec<Vec<f64>>,
}

/// Gradients with the same shapes as the network parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// Weight gradients per layer (row-major, like [`Mlp`]'s weights).
    pub weights: Vec<Vec<f64>>,
    /// Bias gradients per layer.
    pub biases: Vec<Vec<f64>>,
}

impl Gradients {
    /// Zero gradients shaped for `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        Gradients {
            weights: net.weights.iter().map(|w| vec![0.0; w.len()]).collect(),
            biases: net.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    /// Accumulates `other` into `self`.
    pub fn accumulate(&mut self, other: &Gradients) {
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (a, b) in self.biases.iter_mut().zip(&other.biases) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Scales every gradient by `factor` (e.g. `1/batch`).
    pub fn scale(&mut self, factor: f64) {
        for w in &mut self.weights {
            for x in w {
                *x *= factor;
            }
        }
        for b in &mut self.biases {
            for x in b {
                *x *= factor;
            }
        }
    }
}

impl Mlp {
    /// Creates a network with the given layer sizes (first = input,
    /// last = output) and Xavier-style initialization.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(sizes.len() - 1);
        let mut biases = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = (2.0 / (fan_in + fan_out) as f64).sqrt();
            weights.push(
                (0..fan_in * fan_out)
                    .map(|_| rng.gen_range(-scale..scale))
                    .collect(),
            );
            biases.push(vec![0.0; fan_out]);
        }
        Mlp {
            sizes: sizes.to_vec(),
            weights,
            biases,
        }
    }

    /// Layer sizes, input first.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of layers with parameters.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Total parameter count (weights + biases).
    pub fn num_params(&self) -> usize {
        self.weights.iter().map(Vec::len).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Total connection count (Table V's "connections": weights only).
    pub fn num_connections(&self) -> usize {
        self.weights.iter().map(Vec::len).sum()
    }

    /// Total node count including inputs (Table V's "nodes").
    pub fn num_nodes(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Forward pass without caching.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_cached(input).0
    }

    /// Forward pass, returning the output and a cache for
    /// [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input size.
    pub fn forward_cached(&self, input: &[f64]) -> (Vec<f64>, ForwardCache) {
        assert_eq!(input.len(), self.sizes[0], "input size mismatch");
        let mut activations = vec![input.to_vec()];
        let mut pre_activations = Vec::with_capacity(self.num_layers());
        for layer in 0..self.num_layers() {
            let (fan_in, fan_out) = (self.sizes[layer], self.sizes[layer + 1]);
            let x = &activations[layer];
            let mut z = self.biases[layer].clone();
            for (row, z_row) in z.iter_mut().enumerate() {
                let base = row * fan_in;
                let mut sum = 0.0;
                for (i, xi) in x.iter().enumerate() {
                    sum += self.weights[layer][base + i] * xi;
                }
                *z_row += sum;
            }
            let last = layer + 1 == self.num_layers();
            let a: Vec<f64> = if last {
                z.clone()
            } else {
                z.iter().map(|v| v.tanh()).collect()
            };
            pre_activations.push(z);
            activations.push(a);
            let _ = fan_out;
        }
        (
            activations.last().expect("at least one layer").clone(),
            ForwardCache {
                activations,
                pre_activations,
            },
        )
    }

    /// Backward pass: given `grad_output = dL/d(output)`, computes
    /// parameter gradients (and discards the input gradient).
    pub fn backward(&self, cache: &ForwardCache, grad_output: &[f64]) -> Gradients {
        assert_eq!(
            grad_output.len(),
            *self.sizes.last().expect("non-empty"),
            "grad size"
        );
        let mut grads = Gradients::zeros_like(self);
        let mut delta = grad_output.to_vec();
        for layer in (0..self.num_layers()).rev() {
            let fan_in = self.sizes[layer];
            // Non-final layers pass through tanh': 1 - tanh(z)^2.
            if layer + 1 != self.num_layers() {
                for (d, z) in delta.iter_mut().zip(&cache.pre_activations[layer]) {
                    let t = z.tanh();
                    *d *= 1.0 - t * t;
                }
            }
            let x = &cache.activations[layer];
            for (row, d) in delta.iter().enumerate() {
                let base = row * fan_in;
                for (i, xi) in x.iter().enumerate() {
                    grads.weights[layer][base + i] += d * xi;
                }
                grads.biases[layer][row] += d;
            }
            if layer > 0 {
                let mut prev = vec![0.0; fan_in];
                for (row, d) in delta.iter().enumerate() {
                    let base = row * fan_in;
                    for (i, p) in prev.iter_mut().enumerate() {
                        *p += self.weights[layer][base + i] * d;
                    }
                }
                delta = prev;
            }
        }
        grads
    }

    /// Applies a raw gradient-descent step (used by tests; training
    /// uses [`Adam`]).
    pub fn apply_sgd(&mut self, grads: &Gradients, lr: f64) {
        for (w, g) in self.weights.iter_mut().zip(&grads.weights) {
            for (x, y) in w.iter_mut().zip(g) {
                *x -= lr * y;
            }
        }
        for (b, g) in self.biases.iter_mut().zip(&grads.biases) {
            for (x, y) in b.iter_mut().zip(g) {
                *x -= lr * y;
            }
        }
    }
}

/// Adam optimizer state for one [`Mlp`].
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Gradients,
    v: Gradients,
}

impl Adam {
    /// Creates an optimizer for `net` with the given learning rate.
    pub fn new(net: &Mlp, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Gradients::zeros_like(net),
            v: Gradients::zeros_like(net),
        }
    }

    /// Applies one Adam update of `grads` to `net`.
    pub fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let update = |param: &mut [f64], grad: &[f64], m: &mut [f64], v: &mut [f64]| {
            for i in 0..param.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                param[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        };
        for layer in 0..net.weights.len() {
            update(
                &mut net.weights[layer],
                &grads.weights[layer],
                &mut self.m.weights[layer],
                &mut self.v.weights[layer],
            );
            update(
                &mut net.biases[layer],
                &grads.biases[layer],
                &mut self.m.biases[layer],
                &mut self.v.biases[layer],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_param_counts() {
        let net = Mlp::new(&[4, 64, 64, 2], 1);
        assert_eq!(net.num_connections(), 4 * 64 + 64 * 64 + 64 * 2);
        assert_eq!(net.num_params(), net.num_connections() + 64 + 64 + 2);
        assert_eq!(net.num_nodes(), 4 + 64 + 64 + 2);
        assert_eq!(net.forward(&[0.0; 4]).len(), 2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut net = Mlp::new(&[3, 5, 2], 42);
        let input = [0.3, -0.7, 0.5];
        // Loss = sum of outputs; dL/dout = 1.
        let (out0, cache) = net.forward_cached(&input);
        let grads = net.backward(&cache, &[1.0, 1.0]);
        let loss = |n: &Mlp| n.forward(&input).iter().sum::<f64>();
        let base = loss(&net);
        let _ = out0;
        let eps = 1e-6;
        // Check a sample of weight gradients in every layer.
        for layer in 0..net.num_layers() {
            for &idx in &[0usize, net.weights[layer].len() / 2] {
                let orig = net.weights[layer][idx];
                net.weights[layer][idx] = orig + eps;
                let plus = loss(&net);
                net.weights[layer][idx] = orig;
                let numeric = (plus - base) / eps;
                let analytic = grads.weights[layer][idx];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {layer} idx {idx}: numeric {numeric} vs analytic {analytic}"
                );
            }
            let orig = net.biases[layer][0];
            net.biases[layer][0] = orig + eps;
            let plus = loss(&net);
            net.biases[layer][0] = orig;
            let numeric = (plus - base) / eps;
            assert!((numeric - grads.biases[layer][0]).abs() < 1e-4);
        }
    }

    #[test]
    fn sgd_reduces_regression_loss() {
        let mut net = Mlp::new(&[2, 16, 1], 3);
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let loss_of = |n: &Mlp| -> f64 {
            data.iter()
                .map(|(x, y)| (n.forward(x)[0] - y).powi(2))
                .sum()
        };
        let before = loss_of(&net);
        for _ in 0..2000 {
            let mut grads = Gradients::zeros_like(&net);
            for (x, y) in &data {
                let (out, cache) = net.forward_cached(x);
                let g = net.backward(&cache, &[2.0 * (out[0] - y)]);
                grads.accumulate(&g);
            }
            grads.scale(1.0 / data.len() as f64);
            net.apply_sgd(&grads, 0.1);
        }
        let after = loss_of(&net);
        assert!(after < before * 0.2, "XOR loss {before} -> {after}");
    }

    #[test]
    fn adam_converges_faster_than_tiny_sgd() {
        let train = |use_adam: bool| -> f64 {
            let mut net = Mlp::new(&[1, 8, 1], 5);
            let mut adam = Adam::new(&net, 0.01);
            for _ in 0..200 {
                let mut grads = Gradients::zeros_like(&net);
                for i in 0..8 {
                    let x = i as f64 / 8.0;
                    let (out, cache) = net.forward_cached(&[x]);
                    let g = net.backward(&cache, &[2.0 * (out[0] - (2.0 * x - 1.0))]);
                    grads.accumulate(&g);
                }
                grads.scale(1.0 / 8.0);
                if use_adam {
                    adam.step(&mut net, &grads);
                } else {
                    net.apply_sgd(&grads, 0.0001);
                }
            }
            (0..8)
                .map(|i| {
                    let x = i as f64 / 8.0;
                    (net.forward(&[x])[0] - (2.0 * x - 1.0)).powi(2)
                })
                .sum()
        };
        assert!(train(true) < train(false));
    }

    #[test]
    fn gradient_accumulate_and_scale() {
        let net = Mlp::new(&[2, 2], 1);
        let mut a = Gradients::zeros_like(&net);
        let mut b = Gradients::zeros_like(&net);
        b.weights[0][0] = 4.0;
        a.accumulate(&b);
        a.accumulate(&b);
        a.scale(0.5);
        assert_eq!(a.weights[0][0], 4.0);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_panics() {
        let net = Mlp::new(&[3, 2], 1);
        let _ = net.forward(&[1.0]);
    }
}
