//! Advantage Actor-Critic (A2C), as profiled in paper §III.
//!
//! Synchronous n-step A2C with separate actor and critic MLPs:
//! rollouts of `n_steps` transitions, bootstrapped discounted returns,
//! advantage-weighted policy gradient with an entropy bonus, and an
//! MSE critic loss, optimized with Adam.

use crate::head::PolicyHead;
use crate::mlp::{Adam, Gradients, Mlp};
use crate::profile::RlProfile;
use crate::NetworkSize;
use e3_envs::{EnvId, Environment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// A2C hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct A2cConfig {
    /// Task environment.
    pub env: EnvId,
    /// Policy/critic network size (paper: Small or Large).
    pub size: NetworkSize,
    /// Rollout length between updates.
    pub n_steps: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Critic loss weight.
    pub value_coef: f64,
    /// Entropy bonus weight.
    pub entropy_coef: f64,
}

impl A2cConfig {
    /// Stable-baselines-like defaults for the given task and size.
    pub fn new(env: EnvId, size: NetworkSize) -> Self {
        A2cConfig {
            env,
            size,
            n_steps: 8,
            gamma: 0.99,
            learning_rate: 7e-4,
            value_coef: 0.5,
            entropy_coef: 0.01,
        }
    }
}

/// One stored transition of a rollout.
#[derive(Debug, Clone)]
struct Transition {
    obs: Vec<f64>,
    raw: Vec<f64>,
    reward: f64,
    done: bool,
    value: f64,
}

/// An A2C agent bound to one environment.
///
/// # Example
///
/// ```
/// use e3_rl::{A2c, A2cConfig, NetworkSize};
/// use e3_envs::EnvId;
///
/// let mut agent = A2c::new(A2cConfig::new(EnvId::CartPole, NetworkSize::Small), 3);
/// agent.train_steps(64);
/// assert!(agent.total_env_steps() >= 64);
/// ```
pub struct A2c {
    config: A2cConfig,
    actor: Mlp,
    critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    head: PolicyHead,
    env: Box<dyn Environment>,
    obs: Vec<f64>,
    rng: StdRng,
    profile: RlProfile,
    episode_reward: f64,
    recent_rewards: Vec<f64>,
    episode_seed: u64,
    total_env_steps: u64,
}

impl std::fmt::Debug for A2c {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("A2c")
            .field("env", &self.env.name())
            .field("config", &self.config)
            .field("total_env_steps", &self.total_env_steps)
            .finish_non_exhaustive()
    }
}

impl A2c {
    /// Creates an agent with deterministic initialization.
    pub fn new(config: A2cConfig, seed: u64) -> Self {
        let mut env = config.env.make();
        let head = PolicyHead::for_space(&env.action_space());
        let mut actor_sizes = vec![config.env.observation_size()];
        actor_sizes.extend_from_slice(config.size.hidden_layers());
        actor_sizes.push(head.input_size());
        let mut critic_sizes = vec![config.env.observation_size()];
        critic_sizes.extend_from_slice(config.size.hidden_layers());
        critic_sizes.push(1);
        let actor = Mlp::new(&actor_sizes, seed.wrapping_mul(2).wrapping_add(1));
        let critic = Mlp::new(&critic_sizes, seed.wrapping_mul(2).wrapping_add(2));
        let actor_opt = Adam::new(&actor, config.learning_rate);
        let critic_opt = Adam::new(&critic, config.learning_rate);
        let obs = env.reset(seed);
        A2c {
            config,
            actor,
            critic,
            actor_opt,
            critic_opt,
            head,
            env,
            obs,
            rng: StdRng::seed_from_u64(seed),
            profile: RlProfile::new(),
            episode_reward: 0.0,
            recent_rewards: Vec::new(),
            episode_seed: seed,
            total_env_steps: 0,
        }
    }

    /// The actor network (for complexity accounting).
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The critic network (for complexity accounting).
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// Accumulated Forward/Training runtime split.
    pub fn profile(&self) -> RlProfile {
        self.profile
    }

    /// Environment steps taken so far.
    pub fn total_env_steps(&self) -> u64 {
        self.total_env_steps
    }

    /// Mean reward of the most recent completed episodes (up to 20);
    /// NaN-free, `NEG_INFINITY` before any episode finishes.
    pub fn recent_reward(&self) -> f64 {
        if self.recent_rewards.is_empty() {
            return f64::NEG_INFINITY;
        }
        let tail = &self.recent_rewards[self.recent_rewards.len().saturating_sub(20)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Trains for at least `env_steps` environment steps (whole
    /// rollouts) and returns [`A2c::recent_reward`].
    pub fn train_steps(&mut self, env_steps: u64) -> f64 {
        let target = self.total_env_steps + env_steps;
        while self.total_env_steps < target {
            let (transitions, bootstrap) = self.rollout();
            self.update(&transitions, bootstrap);
        }
        self.recent_reward()
    }

    fn rollout(&mut self) -> (Vec<Transition>, f64) {
        let start = Instant::now();
        let mut transitions = Vec::with_capacity(self.config.n_steps);
        for _ in 0..self.config.n_steps {
            let logits = self.actor.forward(&self.obs);
            let value = self.critic.forward(&self.obs)[0];
            let sampled = self.head.sample(&logits, &mut self.rng);
            let step = self.env.step(&sampled.action);
            self.episode_reward += step.reward;
            self.total_env_steps += 1;
            let done = step.terminated || step.truncated;
            transitions.push(Transition {
                obs: std::mem::replace(&mut self.obs, step.observation),
                raw: sampled.raw,
                reward: step.reward,
                done,
                value,
            });
            if done {
                self.recent_rewards.push(self.episode_reward);
                self.episode_reward = 0.0;
                self.episode_seed += 1;
                self.obs = self.env.reset(self.episode_seed);
            }
        }
        let bootstrap = if transitions.last().is_some_and(|t| t.done) {
            0.0
        } else {
            self.critic.forward(&self.obs)[0]
        };
        self.profile.add_forward(start.elapsed());
        (transitions, bootstrap)
    }

    fn update(&mut self, transitions: &[Transition], bootstrap: f64) {
        let start = Instant::now();
        // Discounted bootstrapped returns, walked backwards.
        let mut returns = vec![0.0; transitions.len()];
        let mut ret = bootstrap;
        for (i, t) in transitions.iter().enumerate().rev() {
            if t.done {
                ret = 0.0;
            }
            ret = t.reward + self.config.gamma * ret;
            returns[i] = ret;
        }

        let mut actor_grads = Gradients::zeros_like(&self.actor);
        let mut critic_grads = Gradients::zeros_like(&self.critic);
        for (t, &ret) in transitions.iter().zip(&returns) {
            let advantage = ret - t.value;
            let (logits, actor_cache) = self.actor.forward_cached(&t.obs);
            // L = -logπ(a)·A - β·H ⇒ dL/dout = -A·∇logπ - β·∇H.
            let glp = self.head.grad_log_prob(&logits, &t.raw);
            let gent = self.head.grad_entropy(&logits);
            let grad_out: Vec<f64> = glp
                .iter()
                .zip(&gent)
                .map(|(g, e)| -advantage * g - self.config.entropy_coef * e)
                .collect();
            actor_grads.accumulate(&self.actor.backward(&actor_cache, &grad_out));

            let (value, critic_cache) = self.critic.forward_cached(&t.obs);
            let grad_v = 2.0 * self.config.value_coef * (value[0] - ret);
            critic_grads.accumulate(&self.critic.backward(&critic_cache, &[grad_v]));
        }
        let scale = 1.0 / transitions.len().max(1) as f64;
        actor_grads.scale(scale);
        critic_grads.scale(scale);
        self.actor_opt.step(&mut self.actor, &actor_grads);
        self.critic_opt.step(&mut self.critic, &critic_grads);
        self.profile.add_training(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_accumulates_steps_and_profiles_both_phases() {
        let mut agent = A2c::new(A2cConfig::new(EnvId::CartPole, NetworkSize::Small), 5);
        agent.train_steps(256);
        assert!(agent.total_env_steps() >= 256);
        let profile = agent.profile();
        assert!(profile.forward() > std::time::Duration::ZERO);
        assert!(profile.training() > std::time::Duration::ZERO);
    }

    #[test]
    fn cartpole_reward_improves_with_training() {
        let mut agent = A2c::new(A2cConfig::new(EnvId::CartPole, NetworkSize::Small), 11);
        agent.train_steps(2_000);
        let early = agent.recent_reward();
        agent.train_steps(30_000);
        let late = agent.recent_reward();
        assert!(
            late > early + 10.0 || late > 100.0,
            "A2C should improve on CartPole: {early} -> {late}"
        );
    }

    #[test]
    fn continuous_envs_are_supported() {
        let mut agent = A2c::new(A2cConfig::new(EnvId::Pendulum, NetworkSize::Small), 2);
        let reward = agent.train_steps(600);
        assert!(reward.is_finite() || reward == f64::NEG_INFINITY);
        assert!(agent.total_env_steps() >= 600);
    }

    #[test]
    fn network_sizes_follow_paper_table5() {
        let agent = A2c::new(A2cConfig::new(EnvId::Acrobot, NetworkSize::Small), 1);
        // Acrobot small actor: 6 inputs, 64, 64, 3 outputs.
        assert_eq!(agent.actor().num_nodes(), 6 + 64 + 64 + 3);
        let large = A2c::new(A2cConfig::new(EnvId::Bipedal, NetworkSize::Large), 1);
        assert_eq!(large.actor().num_nodes(), 24 + 256 * 3 + 4);
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let run = |seed| {
            let mut a = A2c::new(A2cConfig::new(EnvId::CartPole, NetworkSize::Small), seed);
            a.train_steps(200);
            a.recent_reward()
        };
        assert_eq!(run(9), run(9));
    }
}
