//! Policy heads: categorical (discrete actions) and Gaussian
//! (continuous actions), with closed-form gradients with respect to
//! the network's raw outputs.

use e3_envs::{Action, ActionSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A stochastic policy head over an environment's action space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyHead {
    /// Softmax over `n` logits.
    Categorical {
        /// Number of actions.
        n: usize,
    },
    /// Independent Gaussians: the network outputs the means; a fixed
    /// exploration stddev is used (common for small control tasks).
    Gaussian {
        /// Per-dimension bounds, used to rescale the tanh-squashed
        /// mean.
        low: Vec<f64>,
        /// Upper bounds.
        high: Vec<f64>,
        /// Exploration standard deviation in squashed units.
        sigma: f64,
    },
}

/// A sampled action together with the statistics the losses need.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledAction {
    /// The environment action.
    pub action: Action,
    /// `log π(a | s)`.
    pub log_prob: f64,
    /// Raw sample in head-space (the action index, or the unsquashed
    /// Gaussian sample), needed to re-evaluate log-probs in PPO.
    pub raw: Vec<f64>,
}

impl PolicyHead {
    /// Builds the natural head for an action space.
    pub fn for_space(space: &ActionSpace) -> Self {
        match space {
            ActionSpace::Discrete(n) => PolicyHead::Categorical { n: *n },
            ActionSpace::Continuous { low, high } => PolicyHead::Gaussian {
                low: low.clone(),
                high: high.clone(),
                sigma: 0.3,
            },
        }
    }

    /// Number of network outputs the head consumes.
    pub fn input_size(&self) -> usize {
        match self {
            PolicyHead::Categorical { n } => *n,
            PolicyHead::Gaussian { low, .. } => low.len(),
        }
    }

    /// Samples an action from the head applied to `outputs`.
    pub fn sample<R: Rng + ?Sized>(&self, outputs: &[f64], rng: &mut R) -> SampledAction {
        match self {
            PolicyHead::Categorical { n } => {
                let probs = softmax(outputs);
                debug_assert_eq!(probs.len(), *n);
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                let mut pick = n - 1;
                for (i, p) in probs.iter().enumerate() {
                    acc += p;
                    if u <= acc {
                        pick = i;
                        break;
                    }
                }
                SampledAction {
                    action: Action::Discrete(pick),
                    log_prob: probs[pick].max(1e-12).ln(),
                    raw: vec![pick as f64],
                }
            }
            PolicyHead::Gaussian { low, high, sigma } => {
                let mut raw = Vec::with_capacity(outputs.len());
                let mut log_prob = 0.0;
                let mut values = Vec::with_capacity(outputs.len());
                for (i, &mean) in outputs.iter().enumerate() {
                    let z = sample_normal(rng);
                    let x = mean + sigma * z;
                    log_prob += gaussian_log_pdf(x, mean, *sigma);
                    raw.push(x);
                    let unit = x.tanh();
                    values.push(low[i] + (unit + 1.0) / 2.0 * (high[i] - low[i]));
                }
                SampledAction {
                    action: Action::Continuous(values),
                    log_prob,
                    raw,
                }
            }
        }
    }

    /// `log π(raw | outputs)` for a previously sampled raw action.
    pub fn log_prob(&self, outputs: &[f64], raw: &[f64]) -> f64 {
        match self {
            PolicyHead::Categorical { .. } => {
                let probs = softmax(outputs);
                probs[raw[0] as usize].max(1e-12).ln()
            }
            PolicyHead::Gaussian { sigma, .. } => raw
                .iter()
                .zip(outputs)
                .map(|(&x, &mean)| gaussian_log_pdf(x, mean, *sigma))
                .sum(),
        }
    }

    /// Policy entropy at `outputs`.
    pub fn entropy(&self, outputs: &[f64]) -> f64 {
        match self {
            PolicyHead::Categorical { .. } => {
                let probs = softmax(outputs);
                -probs.iter().map(|p| p * p.max(1e-12).ln()).sum::<f64>()
            }
            PolicyHead::Gaussian { sigma, low, .. } => {
                // Entropy of an isotropic Gaussian is constant in the
                // mean: d/2 · ln(2πeσ²).
                0.5 * low.len() as f64
                    * (2.0 * std::f64::consts::PI * std::f64::consts::E * sigma * sigma).ln()
            }
        }
    }

    /// Gradient of `log π(raw)` with respect to the network outputs.
    pub fn grad_log_prob(&self, outputs: &[f64], raw: &[f64]) -> Vec<f64> {
        match self {
            PolicyHead::Categorical { .. } => {
                // d log π(a) / d logit_i = 1[i == a] - π_i.
                let probs = softmax(outputs);
                let a = raw[0] as usize;
                probs
                    .iter()
                    .enumerate()
                    .map(|(i, p)| if i == a { 1.0 - p } else { -p })
                    .collect()
            }
            PolicyHead::Gaussian { sigma, .. } => {
                // d log N(x; μ, σ) / dμ = (x - μ) / σ².
                raw.iter()
                    .zip(outputs)
                    .map(|(&x, &mean)| (x - mean) / (sigma * sigma))
                    .collect()
            }
        }
    }

    /// Gradient of the entropy with respect to the network outputs
    /// (zero for the fixed-σ Gaussian head).
    pub fn grad_entropy(&self, outputs: &[f64]) -> Vec<f64> {
        match self {
            PolicyHead::Categorical { .. } => {
                // dH/dlogit_i = -π_i (log π_i + H).
                let probs = softmax(outputs);
                let h = -probs.iter().map(|p| p * p.max(1e-12).ln()).sum::<f64>();
                probs
                    .iter()
                    .map(|&p| -p * (p.max(1e-12).ln() + h))
                    .collect()
            }
            PolicyHead::Gaussian { low, .. } => vec![0.0; low.len()],
        }
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

fn gaussian_log_pdf(x: f64, mean: f64, sigma: f64) -> f64 {
    let z = (x - mean) / sigma;
    -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
}

fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large logits.
        let q = softmax(&[1000.0, 1001.0]);
        assert!(q.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn categorical_sampling_tracks_probabilities() {
        let head = PolicyHead::Categorical { n: 3 };
        let logits = [0.0, 2.0, 0.0];
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            if let Action::Discrete(a) = head.sample(&logits, &mut rng).action {
                counts[a] += 1;
            }
        }
        let probs = softmax(&logits);
        for (c, p) in counts.iter().zip(&probs) {
            let freq = *c as f64 / 3000.0;
            assert!((freq - p).abs() < 0.05, "freq {freq} vs prob {p}");
        }
    }

    #[test]
    fn categorical_grad_log_prob_matches_finite_difference() {
        let head = PolicyHead::Categorical { n: 3 };
        let logits = [0.3, -0.2, 0.9];
        let raw = [2.0];
        let grad = head.grad_log_prob(&logits, &raw);
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = logits;
            plus[i] += eps;
            let numeric = (head.log_prob(&plus, &raw) - head.log_prob(&logits, &raw)) / eps;
            assert!(
                (numeric - grad[i]).abs() < 1e-5,
                "dim {i}: {numeric} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn categorical_grad_entropy_matches_finite_difference() {
        let head = PolicyHead::Categorical { n: 3 };
        let logits = [0.1, 0.5, -0.4];
        let grad = head.grad_entropy(&logits);
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = logits;
            plus[i] += eps;
            let numeric = (head.entropy(&plus) - head.entropy(&logits)) / eps;
            assert!((numeric - grad[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn gaussian_grad_log_prob_matches_finite_difference() {
        let head = PolicyHead::Gaussian {
            low: vec![-2.0, -2.0],
            high: vec![2.0, 2.0],
            sigma: 0.5,
        };
        let means = [0.2, -0.6];
        let raw = [0.5, -0.1];
        let grad = head.grad_log_prob(&means, &raw);
        let eps = 1e-6;
        for i in 0..2 {
            let mut plus = means;
            plus[i] += eps;
            let numeric = (head.log_prob(&plus, &raw) - head.log_prob(&means, &raw)) / eps;
            assert!((numeric - grad[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn gaussian_actions_respect_bounds() {
        let head = PolicyHead::Gaussian {
            low: vec![-2.0],
            high: vec![2.0],
            sigma: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            if let Action::Continuous(v) = head.sample(&[10.0], &mut rng).action {
                assert!((-2.0..=2.0).contains(&v[0]));
            }
        }
    }

    #[test]
    fn head_for_space_picks_matching_variant() {
        assert_eq!(
            PolicyHead::for_space(&ActionSpace::Discrete(4)).input_size(),
            4
        );
        let space = ActionSpace::Continuous {
            low: vec![-1.0; 3],
            high: vec![1.0; 3],
        };
        assert_eq!(PolicyHead::for_space(&space).input_size(), 3);
    }
}
