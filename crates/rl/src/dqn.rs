//! Deep Q-Network (DQN), the replay-buffer DRL the paper's background
//! singles out (§II-B: "in many DRLs a large replay buffer, which
//! stores the experiences along the episodes, [is] often required.
//! This intensifies the memory requirement.").
//!
//! Classic DQN: ε-greedy behaviour policy, uniform experience replay,
//! a target network refreshed periodically, and TD(0) regression on
//! the Bellman target. Discrete action spaces only.

use crate::head::softmax;
use crate::mlp::{Adam, Gradients, Mlp};
use crate::profile::RlProfile;
use crate::NetworkSize;
use e3_envs::{Action, ActionSpace, EnvId, Environment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One stored transition.
#[derive(Debug, Clone)]
struct Transition {
    obs: Vec<f64>,
    action: usize,
    reward: f64,
    next_obs: Vec<f64>,
    done: bool,
}

/// A bounded uniform replay buffer.
#[derive(Debug, Default)]
struct ReplayBuffer {
    storage: Vec<Transition>,
    capacity: usize,
    cursor: usize,
}

impl ReplayBuffer {
    fn new(capacity: usize) -> Self {
        ReplayBuffer {
            storage: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
        }
    }

    fn push(&mut self, t: Transition) {
        if self.storage.len() < self.capacity {
            self.storage.push(t);
        } else {
            self.storage[self.cursor] = t;
        }
        self.cursor = (self.cursor + 1) % self.capacity;
    }

    fn len(&self) -> usize {
        self.storage.len()
    }

    fn sample<'a, R: Rng + ?Sized>(&'a self, rng: &mut R, batch: usize) -> Vec<&'a Transition> {
        (0..batch)
            .map(|_| &self.storage[rng.gen_range(0..self.storage.len())])
            .collect()
    }

    /// Bytes this buffer occupies at 4 bytes per stored value — the
    /// Table IV "local memory" contribution the paper attributes to
    /// replay.
    fn memory_bytes(&self, obs_size: usize) -> u64 {
        (self.capacity as u64) * (2 * obs_size as u64 + 3) * 4
    }
}

/// DQN hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DqnConfig {
    /// Task environment (must have a discrete action space).
    pub env: EnvId,
    /// Q-network size.
    pub size: NetworkSize,
    /// Replay capacity (the paper's "large replay buffer").
    pub replay_capacity: usize,
    /// Minibatch size per update.
    pub batch_size: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Initial exploration rate.
    pub epsilon_start: f64,
    /// Final exploration rate.
    pub epsilon_end: f64,
    /// Env steps over which ε anneals linearly.
    pub epsilon_decay_steps: u64,
    /// Env steps between target-network refreshes.
    pub target_refresh: u64,
    /// Env steps between gradient updates.
    pub train_every: u64,
    /// Replay size required before training starts.
    pub warmup: usize,
}

impl DqnConfig {
    /// Classic defaults scaled for the control suite.
    pub fn new(env: EnvId, size: NetworkSize) -> Self {
        DqnConfig {
            env,
            size,
            replay_capacity: 20_000,
            batch_size: 32,
            gamma: 0.99,
            learning_rate: 5e-4,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 10_000,
            target_refresh: 500,
            train_every: 4,
            warmup: 500,
        }
    }
}

/// A DQN agent bound to one environment.
///
/// # Example
///
/// ```
/// use e3_rl::{Dqn, DqnConfig, NetworkSize};
/// use e3_envs::EnvId;
///
/// let mut agent = Dqn::new(DqnConfig::new(EnvId::CartPole, NetworkSize::Small), 3);
/// agent.train_steps(256);
/// assert!(agent.total_env_steps() >= 256);
/// ```
///
/// # Panics
///
/// [`Dqn::new`] panics if the environment's action space is
/// continuous.
pub struct Dqn {
    config: DqnConfig,
    q: Mlp,
    target: Mlp,
    optimizer: Adam,
    env: Box<dyn Environment>,
    replay: ReplayBuffer,
    obs: Vec<f64>,
    num_actions: usize,
    rng: StdRng,
    profile: RlProfile,
    episode_reward: f64,
    recent_rewards: Vec<f64>,
    episode_seed: u64,
    total_env_steps: u64,
}

impl std::fmt::Debug for Dqn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dqn")
            .field("env", &self.env.name())
            .field("config", &self.config)
            .field("total_env_steps", &self.total_env_steps)
            .finish_non_exhaustive()
    }
}

impl Dqn {
    /// Creates an agent with deterministic initialization.
    pub fn new(config: DqnConfig, seed: u64) -> Self {
        let mut env = config.env.make();
        let num_actions = match env.action_space() {
            ActionSpace::Discrete(n) => n,
            ActionSpace::Continuous { .. } => {
                panic!(
                    "DQN requires a discrete action space; {} is continuous",
                    env.name()
                )
            }
        };
        let mut sizes = vec![config.env.observation_size()];
        sizes.extend_from_slice(config.size.hidden_layers());
        sizes.push(num_actions);
        let q = Mlp::new(&sizes, seed.wrapping_mul(5).wrapping_add(1));
        let target = q.clone();
        let optimizer = Adam::new(&q, config.learning_rate);
        let obs = env.reset(seed);
        let replay = ReplayBuffer::new(config.replay_capacity);
        Dqn {
            config,
            q,
            target,
            optimizer,
            env,
            replay,
            obs,
            num_actions,
            rng: StdRng::seed_from_u64(seed),
            profile: RlProfile::new(),
            episode_reward: 0.0,
            recent_rewards: Vec::new(),
            episode_seed: seed,
            total_env_steps: 0,
        }
    }

    /// The Q-network (for complexity accounting).
    pub fn q_network(&self) -> &Mlp {
        &self.q
    }

    /// Accumulated Forward/Training runtime split.
    pub fn profile(&self) -> RlProfile {
        self.profile
    }

    /// Environment steps taken so far.
    pub fn total_env_steps(&self) -> u64 {
        self.total_env_steps
    }

    /// Replay-buffer memory at capacity, in bytes (Table IV's replay
    /// contribution).
    pub fn replay_memory_bytes(&self) -> u64 {
        self.replay.memory_bytes(self.config.env.observation_size())
    }

    /// Mean reward of the most recent completed episodes (up to 20).
    pub fn recent_reward(&self) -> f64 {
        if self.recent_rewards.is_empty() {
            return f64::NEG_INFINITY;
        }
        let tail = &self.recent_rewards[self.recent_rewards.len().saturating_sub(20)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    fn epsilon(&self) -> f64 {
        let c = &self.config;
        let progress = (self.total_env_steps as f64 / c.epsilon_decay_steps as f64).clamp(0.0, 1.0);
        c.epsilon_start + (c.epsilon_end - c.epsilon_start) * progress
    }

    /// Trains for at least `env_steps` environment steps and returns
    /// [`Dqn::recent_reward`].
    pub fn train_steps(&mut self, env_steps: u64) -> f64 {
        let target_steps = self.total_env_steps + env_steps;
        while self.total_env_steps < target_steps {
            self.act_once();
            if self.replay.len() >= self.config.warmup
                && self.total_env_steps.is_multiple_of(self.config.train_every)
            {
                self.update();
            }
            if self
                .total_env_steps
                .is_multiple_of(self.config.target_refresh)
            {
                self.target = self.q.clone();
            }
        }
        self.recent_reward()
    }

    fn act_once(&mut self) {
        let start = Instant::now();
        let action = if self.rng.gen_bool(self.epsilon()) {
            self.rng.gen_range(0..self.num_actions)
        } else {
            let values = self.q.forward(&self.obs);
            argmax(&values)
        };
        let step = self.env.step(&Action::Discrete(action));
        self.episode_reward += step.reward;
        self.total_env_steps += 1;
        let done = step.terminated; // truncation is not a true terminal
        self.replay.push(Transition {
            obs: std::mem::replace(&mut self.obs, step.observation.clone()),
            action,
            reward: step.reward,
            next_obs: step.observation,
            done,
        });
        if step.terminated || step.truncated {
            self.recent_rewards.push(self.episode_reward);
            self.episode_reward = 0.0;
            self.episode_seed += 1;
            self.obs = self.env.reset(self.episode_seed);
        }
        self.profile.add_forward(start.elapsed());
    }

    fn update(&mut self) {
        let start = Instant::now();
        let batch = self.replay.sample(&mut self.rng, self.config.batch_size);
        let mut grads = Gradients::zeros_like(&self.q);
        for t in &batch {
            let next_q = self.target.forward(&t.next_obs);
            let bootstrap = if t.done {
                0.0
            } else {
                next_q.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            };
            let target_value = t.reward + self.config.gamma * bootstrap;
            let (q_values, cache) = self.q.forward_cached(&t.obs);
            let mut grad_out = vec![0.0; q_values.len()];
            // Huber-less MSE on the taken action's Q-value.
            grad_out[t.action] = 2.0 * (q_values[t.action] - target_value);
            grads.accumulate(&self.q.backward(&cache, &grad_out));
        }
        grads.scale(1.0 / batch.len() as f64);
        self.optimizer.step(&mut self.q, &grads);
        self.profile.add_training(start.elapsed());
    }
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty action space")
}

/// Softmax sanity helper re-exported for tests (keeps `head::softmax`
/// the single implementation).
#[doc(hidden)]
pub fn action_distribution(values: &[f64]) -> Vec<f64> {
    softmax(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_buffer_is_bounded_ring() {
        let mut buffer = ReplayBuffer::new(3);
        for i in 0..5 {
            buffer.push(Transition {
                obs: vec![i as f64],
                action: 0,
                reward: i as f64,
                next_obs: vec![],
                done: false,
            });
        }
        assert_eq!(buffer.len(), 3);
        let rewards: Vec<f64> = buffer.storage.iter().map(|t| t.reward).collect();
        assert_eq!(rewards, vec![3.0, 4.0, 2.0], "ring overwrite order");
    }

    #[test]
    fn replay_memory_matches_table4_class() {
        let agent = Dqn::new(DqnConfig::new(EnvId::CartPole, NetworkSize::Small), 1);
        // 20k transitions × (2×4 obs + 3) × 4B ≈ 880 KB: the "large
        // replay buffer" the paper contrasts against NEAT's 0.4 KB.
        let bytes = agent.replay_memory_bytes();
        assert!(bytes > 500_000, "replay should dominate memory: {bytes}");
    }

    #[test]
    fn epsilon_anneals_linearly() {
        let mut agent = Dqn::new(DqnConfig::new(EnvId::CartPole, NetworkSize::Small), 2);
        assert!((agent.epsilon() - 1.0).abs() < 1e-12);
        agent.train_steps(1_000);
        let mid = agent.epsilon();
        assert!(mid < 1.0 && mid > agent.config.epsilon_end);
    }

    #[test]
    fn training_profiles_both_phases_and_improves() {
        let mut agent = Dqn::new(DqnConfig::new(EnvId::CartPole, NetworkSize::Small), 7);
        agent.train_steps(4_000);
        assert!(agent.profile().forward() > std::time::Duration::ZERO);
        assert!(agent.profile().training() > std::time::Duration::ZERO);
        let early = agent.recent_reward();
        agent.train_steps(25_000);
        let late = agent.recent_reward();
        assert!(
            late > early || late > 100.0,
            "DQN should improve on CartPole: {early} -> {late}"
        );
    }

    #[test]
    #[should_panic(expected = "discrete action space")]
    fn continuous_envs_are_rejected() {
        let _ = Dqn::new(DqnConfig::new(EnvId::Pendulum, NetworkSize::Small), 1);
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let run = |seed| {
            let mut a = Dqn::new(DqnConfig::new(EnvId::CartPole, NetworkSize::Small), seed);
            a.train_steps(1_500);
            a.recent_reward()
        };
        assert_eq!(run(11), run(11));
    }
}
