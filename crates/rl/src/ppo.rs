//! Proximal Policy Optimization (PPO2), as profiled in paper §III.
//!
//! Clipped-surrogate PPO with GAE(λ) advantages, minibatch epochs, and
//! separate actor/critic MLPs — a from-scratch equivalent of the
//! stable-baselines PPO2 the paper profiles.

use crate::head::PolicyHead;
use crate::mlp::{Adam, Gradients, Mlp};
use crate::profile::RlProfile;
use crate::NetworkSize;
use e3_envs::{EnvId, Environment};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// PPO hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PpoConfig {
    /// Task environment.
    pub env: EnvId,
    /// Policy/critic network size.
    pub size: NetworkSize,
    /// Rollout horizon between updates.
    pub horizon: usize,
    /// Discount factor.
    pub gamma: f64,
    /// GAE smoothing factor λ.
    pub gae_lambda: f64,
    /// Surrogate clip range ε.
    pub clip: f64,
    /// Optimization epochs per rollout.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Critic loss weight.
    pub value_coef: f64,
    /// Entropy bonus weight.
    pub entropy_coef: f64,
}

impl PpoConfig {
    /// Stable-baselines-like defaults.
    pub fn new(env: EnvId, size: NetworkSize) -> Self {
        PpoConfig {
            env,
            size,
            horizon: 128,
            gamma: 0.99,
            gae_lambda: 0.95,
            clip: 0.2,
            epochs: 4,
            minibatch: 32,
            learning_rate: 3e-4,
            value_coef: 0.5,
            entropy_coef: 0.01,
        }
    }
}

#[derive(Debug, Clone)]
struct Sample {
    obs: Vec<f64>,
    raw: Vec<f64>,
    log_prob_old: f64,
    reward: f64,
    done: bool,
    value: f64,
}

/// A PPO agent bound to one environment.
///
/// # Example
///
/// ```
/// use e3_rl::{Ppo, PpoConfig, NetworkSize};
/// use e3_envs::EnvId;
///
/// let mut agent = Ppo::new(PpoConfig::new(EnvId::CartPole, NetworkSize::Small), 3);
/// agent.train_steps(128);
/// assert!(agent.total_env_steps() >= 128);
/// ```
pub struct Ppo {
    config: PpoConfig,
    actor: Mlp,
    critic: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    head: PolicyHead,
    env: Box<dyn Environment>,
    obs: Vec<f64>,
    rng: StdRng,
    profile: RlProfile,
    episode_reward: f64,
    recent_rewards: Vec<f64>,
    episode_seed: u64,
    total_env_steps: u64,
}

impl std::fmt::Debug for Ppo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ppo")
            .field("env", &self.env.name())
            .field("config", &self.config)
            .field("total_env_steps", &self.total_env_steps)
            .finish_non_exhaustive()
    }
}

impl Ppo {
    /// Creates an agent with deterministic initialization.
    pub fn new(config: PpoConfig, seed: u64) -> Self {
        let mut env = config.env.make();
        let head = PolicyHead::for_space(&env.action_space());
        let mut actor_sizes = vec![config.env.observation_size()];
        actor_sizes.extend_from_slice(config.size.hidden_layers());
        actor_sizes.push(head.input_size());
        let mut critic_sizes = vec![config.env.observation_size()];
        critic_sizes.extend_from_slice(config.size.hidden_layers());
        critic_sizes.push(1);
        let actor = Mlp::new(&actor_sizes, seed.wrapping_mul(3).wrapping_add(1));
        let critic = Mlp::new(&critic_sizes, seed.wrapping_mul(3).wrapping_add(2));
        let actor_opt = Adam::new(&actor, config.learning_rate);
        let critic_opt = Adam::new(&critic, config.learning_rate);
        let obs = env.reset(seed);
        Ppo {
            config,
            actor,
            critic,
            actor_opt,
            critic_opt,
            head,
            env,
            obs,
            rng: StdRng::seed_from_u64(seed),
            profile: RlProfile::new(),
            episode_reward: 0.0,
            recent_rewards: Vec::new(),
            episode_seed: seed,
            total_env_steps: 0,
        }
    }

    /// The actor network (for complexity accounting).
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }

    /// The critic network (for complexity accounting).
    pub fn critic(&self) -> &Mlp {
        &self.critic
    }

    /// Accumulated Forward/Training runtime split.
    pub fn profile(&self) -> RlProfile {
        self.profile
    }

    /// Environment steps taken so far.
    pub fn total_env_steps(&self) -> u64 {
        self.total_env_steps
    }

    /// Mean reward of the most recent completed episodes (up to 20).
    pub fn recent_reward(&self) -> f64 {
        if self.recent_rewards.is_empty() {
            return f64::NEG_INFINITY;
        }
        let tail = &self.recent_rewards[self.recent_rewards.len().saturating_sub(20)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Trains for at least `env_steps` environment steps (whole
    /// horizons) and returns [`Ppo::recent_reward`].
    pub fn train_steps(&mut self, env_steps: u64) -> f64 {
        let target = self.total_env_steps + env_steps;
        while self.total_env_steps < target {
            let (samples, bootstrap) = self.rollout();
            self.update(&samples, bootstrap);
        }
        self.recent_reward()
    }

    fn rollout(&mut self) -> (Vec<Sample>, f64) {
        let start = Instant::now();
        let mut samples = Vec::with_capacity(self.config.horizon);
        for _ in 0..self.config.horizon {
            let logits = self.actor.forward(&self.obs);
            let value = self.critic.forward(&self.obs)[0];
            let sampled = self.head.sample(&logits, &mut self.rng);
            let step = self.env.step(&sampled.action);
            self.episode_reward += step.reward;
            self.total_env_steps += 1;
            let done = step.terminated || step.truncated;
            samples.push(Sample {
                obs: std::mem::replace(&mut self.obs, step.observation),
                raw: sampled.raw,
                log_prob_old: sampled.log_prob,
                reward: step.reward,
                done,
                value,
            });
            if done {
                self.recent_rewards.push(self.episode_reward);
                self.episode_reward = 0.0;
                self.episode_seed += 1;
                self.obs = self.env.reset(self.episode_seed);
            }
        }
        let bootstrap = if samples.last().is_some_and(|s| s.done) {
            0.0
        } else {
            self.critic.forward(&self.obs)[0]
        };
        self.profile.add_forward(start.elapsed());
        (samples, bootstrap)
    }

    fn update(&mut self, samples: &[Sample], bootstrap: f64) {
        let start = Instant::now();
        // GAE(λ) advantages.
        let n = samples.len();
        let mut advantages = vec![0.0; n];
        let mut next_value = bootstrap;
        let mut gae = 0.0;
        for i in (0..n).rev() {
            let s = &samples[i];
            let not_done = if s.done { 0.0 } else { 1.0 };
            let delta = s.reward + self.config.gamma * next_value * not_done - s.value;
            gae = delta + self.config.gamma * self.config.gae_lambda * not_done * gae;
            advantages[i] = gae;
            next_value = s.value;
        }
        let returns: Vec<f64> = advantages
            .iter()
            .zip(samples)
            .map(|(a, s)| a + s.value)
            .collect();
        // Normalize advantages.
        let mean = advantages.iter().sum::<f64>() / n as f64;
        let var = advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / n as f64;
        let std = var.sqrt().max(1e-8);
        for a in &mut advantages {
            *a = (*a - mean) / std;
        }

        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..self.config.epochs {
            indices.shuffle(&mut self.rng);
            for chunk in indices.chunks(self.config.minibatch) {
                let mut actor_grads = Gradients::zeros_like(&self.actor);
                let mut critic_grads = Gradients::zeros_like(&self.critic);
                for &i in chunk {
                    let s = &samples[i];
                    let adv = advantages[i];
                    let (logits, actor_cache) = self.actor.forward_cached(&s.obs);
                    let log_prob = self.head.log_prob(&logits, &s.raw);
                    let ratio = (log_prob - s.log_prob_old).exp();
                    // Clipped surrogate: gradient is zero where the
                    // clipped branch is active.
                    let clipped = (adv > 0.0 && ratio > 1.0 + self.config.clip)
                        || (adv < 0.0 && ratio < 1.0 - self.config.clip);
                    let glp = self.head.grad_log_prob(&logits, &s.raw);
                    let gent = self.head.grad_entropy(&logits);
                    let grad_out: Vec<f64> = glp
                        .iter()
                        .zip(&gent)
                        .map(|(g, e)| {
                            let policy = if clipped { 0.0 } else { -adv * ratio * g };
                            policy - self.config.entropy_coef * e
                        })
                        .collect();
                    actor_grads.accumulate(&self.actor.backward(&actor_cache, &grad_out));

                    let (value, critic_cache) = self.critic.forward_cached(&s.obs);
                    let grad_v = 2.0 * self.config.value_coef * (value[0] - returns[i]);
                    critic_grads.accumulate(&self.critic.backward(&critic_cache, &[grad_v]));
                }
                let scale = 1.0 / chunk.len() as f64;
                actor_grads.scale(scale);
                critic_grads.scale(scale);
                self.actor_opt.step(&mut self.actor, &actor_grads);
                self.critic_opt.step(&mut self.critic, &critic_grads);
            }
        }
        self.profile.add_training(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_profiles_both_phases() {
        let mut agent = Ppo::new(PpoConfig::new(EnvId::CartPole, NetworkSize::Small), 4);
        agent.train_steps(128);
        assert!(agent.profile().forward() > std::time::Duration::ZERO);
        assert!(agent.profile().training() > std::time::Duration::ZERO);
    }

    #[test]
    fn training_dominates_runtime_as_in_fig3() {
        // Paper Fig. 3: Training ≈ 60% of RL runtime. With 4 epochs of
        // reuse the backward work must outweigh the rollout.
        let mut agent = Ppo::new(PpoConfig::new(EnvId::CartPole, NetworkSize::Small), 6);
        agent.train_steps(1024);
        let (_, training) = agent.profile().fractions();
        assert!(
            training > 0.5,
            "training fraction {training} should dominate"
        );
    }

    #[test]
    fn cartpole_reward_improves_with_training() {
        let mut agent = Ppo::new(PpoConfig::new(EnvId::CartPole, NetworkSize::Small), 8);
        agent.train_steps(1_000);
        let early = agent.recent_reward();
        agent.train_steps(25_000);
        let late = agent.recent_reward();
        assert!(
            late > early + 10.0 || late > 150.0,
            "PPO should improve on CartPole: {early} -> {late}"
        );
    }

    #[test]
    fn continuous_envs_are_supported() {
        let mut agent = Ppo::new(PpoConfig::new(EnvId::Pendulum, NetworkSize::Small), 2);
        agent.train_steps(256);
        assert!(agent.total_env_steps() >= 256);
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let run = |seed| {
            let mut a = Ppo::new(PpoConfig::new(EnvId::CartPole, NetworkSize::Small), seed);
            a.train_steps(256);
            a.recent_reward()
        };
        assert_eq!(run(12), run(12));
    }
}
