//! Fault-injection harness: every simulated crash mode must leave the
//! store recoverable, landing on the newest *intact* snapshot, and
//! must never panic.

use e3_store::{RunFingerprint, RunStore, StoreFault};
use std::fs;
use std::path::PathBuf;

fn fp() -> RunFingerprint {
    RunFingerprint {
        config_hash: 0x5eed,
        backend: "E3-CPU".to_string(),
        seed: 42,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e3-store-fault-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// A faulted final save must fall back to the last intact generation
/// (stale-manifest is the exception: its snapshot is intact, so the
/// newest generation itself must be recovered despite the manifest
/// still pointing at an older one).
#[test]
fn every_fault_mode_recovers_to_the_newest_intact_snapshot() {
    for fault in StoreFault::ALL {
        let dir = scratch(fault.name());
        let mut store = RunStore::open(&dir, fp(), 5).unwrap();
        store.save(0, Some(1.0), &vec![0u64]).unwrap();
        store.save(1, Some(2.0), &vec![1u64]).unwrap();
        store.inject_fault(fault);
        store.save(2, Some(3.0), &vec![2u64]).unwrap();

        // Recover through a fresh store, as a restarted process would.
        let mut reopened = RunStore::open(&dir, fp(), 5).unwrap();
        let recovered = reopened
            .recover::<Vec<u64>>()
            .unwrap_or_else(|e| panic!("{fault}: recovery errored: {e}"))
            .unwrap_or_else(|| panic!("{fault}: no snapshot recovered"));

        let expect_generation = match fault {
            StoreFault::StaleManifest => 2,
            _ => 1,
        };
        assert_eq!(
            recovered.generation, expect_generation,
            "{fault}: wrong generation recovered"
        );
        assert_eq!(recovered.state, vec![expect_generation as u64]);
        let expect_skipped = usize::from(fault != StoreFault::StaleManifest);
        assert_eq!(
            recovered.skipped_corrupt, expect_skipped,
            "{fault}: wrong skip count"
        );
        assert_eq!(reopened.stats().corrupt_skipped, expect_skipped as u64);
        assert_eq!(reopened.stats().recoveries, 1);
        fs::remove_dir_all(&dir).ok();
    }
}

/// A run of consecutive damaged snapshots must all be skipped — the
/// scan keeps walking back until something validates.
#[test]
fn recovery_walks_past_multiple_corrupt_generations() {
    let dir = scratch("multi");
    let mut store = RunStore::open(&dir, fp(), 10).unwrap();
    store.save(0, Some(1.0), &"intact".to_string()).unwrap();
    for (generation, fault) in [
        (1, StoreFault::TornWrite),
        (2, StoreFault::ShortWrite),
        (3, StoreFault::ChecksumCorruption),
    ] {
        store.inject_fault(fault);
        store
            .save(generation, Some(2.0), &"damaged".to_string())
            .unwrap();
    }
    let recovered = store.recover::<String>().unwrap().unwrap();
    assert_eq!(recovered.generation, 0);
    assert_eq!(recovered.state, "intact");
    assert_eq!(recovered.skipped_corrupt, 3);
    fs::remove_dir_all(&dir).ok();
}

/// If *every* snapshot is damaged, recovery reports "nothing to
/// resume" — it must not panic and must not fabricate state.
#[test]
fn all_snapshots_damaged_recovers_to_none() {
    let dir = scratch("all-damaged");
    let mut store = RunStore::open(&dir, fp(), 10).unwrap();
    for (generation, fault) in StoreFault::ALL.iter().enumerate() {
        if *fault == StoreFault::StaleManifest {
            continue; // leaves an intact snapshot by design
        }
        store.inject_fault(*fault);
        store.save(generation, None, &0u8).unwrap();
    }
    assert!(store.recover::<u8>().unwrap().is_none());
    assert_eq!(store.stats().corrupt_skipped, 3);
    fs::remove_dir_all(&dir).ok();
}

/// After recovering from a faulted write, saving the same generation
/// again must overwrite the wreckage and become recoverable.
#[test]
fn rewriting_a_damaged_generation_heals_it() {
    let dir = scratch("heal");
    let mut store = RunStore::open(&dir, fp(), 5).unwrap();
    store.inject_fault(StoreFault::TornWrite);
    store.save(7, Some(1.0), &"first try".to_string()).unwrap();
    assert!(store.recover::<String>().unwrap().is_none());
    store.save(7, Some(1.0), &"second try".to_string()).unwrap();
    let recovered = store.recover::<String>().unwrap().unwrap();
    assert_eq!(recovered.generation, 7);
    assert_eq!(recovered.state, "second try");
    fs::remove_dir_all(&dir).ok();
}

/// Recovery from a stale manifest repairs the manifest: a subsequent
/// open sees the true latest generation.
#[test]
fn stale_manifest_is_reconciled_by_recovery() {
    let dir = scratch("reconcile");
    let mut store = RunStore::open(&dir, fp(), 5).unwrap();
    store.save(0, Some(1.0), &0u32).unwrap();
    store.inject_fault(StoreFault::StaleManifest);
    store.save(1, Some(2.0), &1u32).unwrap();

    let mut reopened = RunStore::open(&dir, fp(), 5).unwrap();
    assert_eq!(reopened.latest_generation(), Some(0)); // stale view
    let recovered = reopened.recover::<u32>().unwrap().unwrap();
    assert_eq!(recovered.generation, 1);

    let repaired = RunStore::open(&dir, fp(), 5).unwrap();
    assert_eq!(repaired.latest_generation(), Some(1));
    fs::remove_dir_all(&dir).ok();
}

/// Faults disarm after firing once: the save after a faulted one is
/// clean without re-arming.
#[test]
fn faults_fire_once() {
    let dir = scratch("once");
    let mut store = RunStore::open(&dir, fp(), 5).unwrap();
    store.inject_fault(StoreFault::ChecksumCorruption);
    store.save(0, None, &0u32).unwrap();
    store.save(1, None, &1u32).unwrap();
    let recovered = store.recover::<u32>().unwrap().unwrap();
    assert_eq!(recovered.generation, 1);
    assert_eq!(store.stats().snapshots_written, 1);
    fs::remove_dir_all(&dir).ok();
}
