//! The versioned on-disk snapshot format.
//!
//! A snapshot file is three sections, in order:
//!
//! ```text
//! e3snap 1\n                  magic + format version
//! {header JSON}\n             SnapshotHeader: fingerprint, generation,
//!                             payload length, payload checksum
//! {payload JSON}              the serialized run state
//! ```
//!
//! The header carries the payload's byte length and FNV-1a 64
//! checksum, so every corruption mode a power cut can leave behind is
//! detectable without trusting anything beyond the first line:
//!
//! * a *short write* truncates inside the magic or header — the file
//!   fails to parse;
//! * a *torn write* truncates inside the payload — `payload_len`
//!   disagrees with the bytes actually present;
//! * silent *bit corruption* in the payload — the checksum disagrees.
//!
//! Recovery treats any of these as "not a snapshot" and moves on to
//! the next newest file; see [`crate::RunStore::recover`].

use serde::{Deserialize, Serialize};

/// Current snapshot format version. Bump when the layout changes.
pub const FORMAT_VERSION: u32 = 1;

/// Magic line opening every snapshot file.
pub const MAGIC: &str = "e3snap";

/// Identity of the run a snapshot belongs to. Snapshots from a
/// different configuration, backend, or seed must never be resumed
/// into the wrong run — the store refuses them at recovery time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunFingerprint {
    /// FNV-1a 64 hash of the canonical run-configuration JSON
    /// (excluding fields that do not affect results, e.g. thread
    /// count and the checkpoint policy itself).
    pub config_hash: u64,
    /// Backend display name (`"E3-CPU"`, `"E3-GPU"`, `"E3-INAX"`).
    pub backend: String,
    /// The run seed.
    pub seed: u64,
}

/// Parsed first-section metadata of a snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Format version the file was written with.
    pub format_version: u32,
    /// Which run this snapshot belongs to.
    pub fingerprint: RunFingerprint,
    /// Generation the captured state had completed.
    pub generation: usize,
    /// Best fitness seen so far (`None` when non-finite or absent —
    /// the vendored JSON encoder maps non-finite floats to null).
    pub best_fitness: Option<f64>,
    /// Exact byte length of the payload section.
    pub payload_len: u64,
    /// FNV-1a 64 checksum of the payload bytes.
    pub payload_fnv: u64,
}

/// Why a snapshot file failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The file does not begin with the `e3snap` magic line.
    BadMagic,
    /// The magic line carries an unsupported format version.
    UnsupportedVersion(String),
    /// The header line is missing or not valid header JSON.
    BadHeader(String),
    /// The payload is shorter than the header promises (torn write).
    TruncatedPayload {
        /// Bytes the header declared.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The payload bytes hash to a different checksum (corruption).
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "missing `{MAGIC}` magic line"),
            FormatError::UnsupportedVersion(v) => write!(f, "unsupported format version `{v}`"),
            FormatError::BadHeader(msg) => write!(f, "invalid snapshot header: {msg}"),
            FormatError::TruncatedPayload { expected, found } => {
                write!(
                    f,
                    "torn payload: header promises {expected} B, found {found} B"
                )
            }
            FormatError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "payload checksum mismatch: header {expected:#018x}, computed {found:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// FNV-1a 64-bit hash — the same cheap, dependency-free fingerprint
/// the exec decode cache uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one snapshot file: magic line, header line, payload bytes.
pub fn encode(
    fingerprint: &RunFingerprint,
    generation: usize,
    best_fitness: Option<f64>,
    payload: &[u8],
) -> Result<Vec<u8>, String> {
    let header = SnapshotHeader {
        format_version: FORMAT_VERSION,
        fingerprint: fingerprint.clone(),
        generation,
        best_fitness: best_fitness.filter(|f| f.is_finite()),
        payload_len: payload.len() as u64,
        payload_fnv: fnv1a(payload),
    };
    let header_json = serde_json::to_string(&header).map_err(|e| e.to_string())?;
    let mut out = Vec::with_capacity(header_json.len() + payload.len() + 32);
    out.extend_from_slice(MAGIC.as_bytes());
    out.push(b' ');
    out.extend_from_slice(FORMAT_VERSION.to_string().as_bytes());
    out.push(b'\n');
    out.extend_from_slice(header_json.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decodes and fully validates a snapshot file, returning the header
/// and the payload bytes.
pub fn decode(bytes: &[u8]) -> Result<(SnapshotHeader, &[u8]), FormatError> {
    let first_nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(FormatError::BadMagic)?;
    let magic_line = std::str::from_utf8(&bytes[..first_nl]).map_err(|_| FormatError::BadMagic)?;
    let mut parts = magic_line.split(' ');
    if parts.next() != Some(MAGIC) {
        return Err(FormatError::BadMagic);
    }
    let version = parts.next().unwrap_or("");
    if version.parse::<u32>() != Ok(FORMAT_VERSION) {
        return Err(FormatError::UnsupportedVersion(version.to_string()));
    }
    let rest = &bytes[first_nl + 1..];
    let header_nl = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| FormatError::BadHeader("truncated header line".to_string()))?;
    let header_text = std::str::from_utf8(&rest[..header_nl])
        .map_err(|_| FormatError::BadHeader("header is not UTF-8".to_string()))?;
    let header: SnapshotHeader =
        serde_json::from_str(header_text).map_err(|e| FormatError::BadHeader(e.to_string()))?;
    let payload = &rest[header_nl + 1..];
    if payload.len() as u64 != header.payload_len {
        return Err(FormatError::TruncatedPayload {
            expected: header.payload_len,
            found: payload.len() as u64,
        });
    }
    let found = fnv1a(payload);
    if found != header.payload_fnv {
        return Err(FormatError::ChecksumMismatch {
            expected: header.payload_fnv,
            found,
        });
    }
    Ok((header, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> RunFingerprint {
        RunFingerprint {
            config_hash: 0xdead_beef,
            backend: "E3-CPU".to_string(),
            seed: 7,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let payload = br#"{"hello":"world"}"#;
        let bytes = encode(&fp(), 12, Some(3.5), payload).unwrap();
        let (header, got) = decode(&bytes).unwrap();
        assert_eq!(header.format_version, FORMAT_VERSION);
        assert_eq!(header.generation, 12);
        assert_eq!(header.best_fitness, Some(3.5));
        assert_eq!(header.fingerprint, fp());
        assert_eq!(got, payload);
    }

    #[test]
    fn non_finite_best_fitness_is_stored_as_absent() {
        let bytes = encode(&fp(), 0, Some(f64::NEG_INFINITY), b"{}").unwrap();
        let (header, _) = decode(&bytes).unwrap();
        assert_eq!(header.best_fitness, None);
    }

    #[test]
    fn torn_payload_is_detected() {
        let bytes = encode(&fp(), 3, None, b"0123456789").unwrap();
        let torn = &bytes[..bytes.len() - 4];
        assert!(matches!(
            decode(torn),
            Err(FormatError::TruncatedPayload {
                expected: 10,
                found: 6
            })
        ));
    }

    #[test]
    fn short_write_is_detected() {
        let bytes = encode(&fp(), 3, None, b"0123456789").unwrap();
        assert!(matches!(decode(&bytes[..4]), Err(FormatError::BadMagic)));
        // Truncation inside the header line.
        assert!(matches!(
            decode(&bytes[..MAGIC.len() + 10]),
            Err(FormatError::BadHeader(_))
        ));
    }

    #[test]
    fn checksum_corruption_is_detected() {
        let mut bytes = encode(&fp(), 3, None, b"0123456789").unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode(&bytes),
            Err(FormatError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn alien_files_are_rejected() {
        assert!(matches!(decode(b""), Err(FormatError::BadMagic)));
        assert!(matches!(
            decode(b"not a snapshot\n"),
            Err(FormatError::BadMagic)
        ));
        assert!(matches!(
            decode(b"e3snap 999\n{}\n"),
            Err(FormatError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
