//! `e3-store`: crash-safe run persistence for the E3 platform.
//!
//! The E3 paper targets edge deployments that learn autonomously over
//! hours or days — a power cut must not throw away a run, and a
//! resumed run must be indistinguishable from one that never stopped.
//! This crate provides the storage half of that contract:
//!
//! * **Versioned snapshot format** ([`format`]) — magic + format
//!   version + run fingerprint + checksummed payload, so torn, short,
//!   and bit-flipped files are all detectable.
//! * **Atomic writes** — each snapshot goes to a temp file, is
//!   `fsync`ed, and is renamed into place; the directory is synced so
//!   the rename itself survives a crash.
//! * **Manifest + recovery** ([`manifest`]) — `manifest.json` points
//!   at the latest generation, but recovery never trusts it blindly:
//!   it scans the directory newest-first and resumes from the newest
//!   snapshot that validates, skipping torn ones.
//! * **Retention** — keep the last *N* snapshots plus the best-so-far
//!   generation; everything else is pruned after each save.
//! * **Fault injection** ([`fault`]) — a [`StoreFault`] armed on the
//!   store sabotages the next save, so crash recovery is testable
//!   without actually cutting power.
//!
//! The store is generic over the payload: it persists any
//! `Serialize`/`Deserialize` state and leaves *what* to capture to
//! the caller (`e3-platform` captures a full `RunState`, which is what
//! makes resume bit-identical).
//!
//! ```
//! use e3_store::{RunStore, RunFingerprint};
//!
//! let dir = std::env::temp_dir().join(format!("e3-store-doc-{}", std::process::id()));
//! let fingerprint = RunFingerprint { config_hash: 42, backend: "E3-CPU".into(), seed: 7 };
//! let mut store = RunStore::open(&dir, fingerprint, 3)?;
//! store.save(0, Some(1.5), &vec![1u32, 2, 3])?;
//! let recovered = store.recover::<Vec<u32>>()?.expect("snapshot present");
//! assert_eq!(recovered.generation, 0);
//! assert_eq!(recovered.state, vec![1, 2, 3]);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), e3_store::StoreError>(())
//! ```

pub mod fault;
pub mod format;
pub mod manifest;
pub mod multi;

pub use fault::StoreFault;
pub use format::{FormatError, RunFingerprint, SnapshotHeader, FORMAT_VERSION};
pub use manifest::{Manifest, ManifestEntry, MANIFEST_FILE};
pub use multi::{MultiStore, NAMESPACE_REGISTRY_FILE};

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// When and where the platform checkpoints a run.
///
/// Lives here (rather than in `e3-platform`) so the policy can be
/// embedded in `E3Config` without a dependency cycle. The directory is
/// a `String` because the policy itself is serialized into run
/// configuration JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Checkpoint directory (created on first save).
    pub dir: String,
    /// Snapshot every `every` generations (≥ 1).
    pub every: usize,
    /// Keep the last `keep_last` snapshots plus the best-so-far one.
    pub keep_last: usize,
}

impl CheckpointPolicy {
    /// A policy that snapshots every generation and keeps the last 3.
    pub fn new(dir: impl Into<String>) -> Self {
        CheckpointPolicy {
            dir: dir.into(),
            every: 1,
            keep_last: 3,
        }
    }

    /// Sets the checkpoint interval in generations (clamped to ≥ 1).
    pub fn every(mut self, every: usize) -> Self {
        self.every = every.max(1);
        self
    }

    /// Sets how many trailing snapshots to retain (clamped to ≥ 1).
    pub fn keep_last(mut self, keep_last: usize) -> Self {
        self.keep_last = keep_last.max(1);
        self
    }
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (path and OS message).
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying OS error text.
        message: String,
    },
    /// The run state failed to serialize.
    Encode(String),
    /// A validated snapshot's payload failed to deserialize (type
    /// mismatch between writer and reader).
    Decode(String),
    /// A snapshot or manifest belongs to a different run (config,
    /// backend, or seed differs). Resuming it would silently change
    /// results, so the store refuses.
    FingerprintMismatch {
        /// File whose fingerprint disagreed.
        path: String,
    },
    /// A namespace inside a shared parent directory is already bound
    /// to a different run — e.g. island 1's snapshots offered to
    /// island 2, or a parent directory reused with a different island
    /// layout. Distinct from [`StoreError::FingerprintMismatch`] so
    /// multi-run callers can tell "wrong file in my directory" from
    /// "wrong directory entirely".
    NamespaceMismatch {
        /// The namespace (subdirectory) whose binding disagreed.
        namespace: String,
        /// The registry or snapshot path that exposed the mixup.
        path: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "store I/O error at {path}: {message}"),
            StoreError::Encode(msg) => write!(f, "failed to encode run state: {msg}"),
            StoreError::Decode(msg) => write!(f, "failed to decode run state: {msg}"),
            StoreError::FingerprintMismatch { path } => {
                write!(
                    f,
                    "{path} belongs to a different run (config/backend/seed mismatch)"
                )
            }
            StoreError::NamespaceMismatch { namespace, path } => {
                write!(
                    f,
                    "namespace {namespace} at {path} is bound to a different run \
                     (cross-island snapshot mixup)"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Counters the store accumulates; mirrored into the telemetry
/// `MetricsRegistry` as `e3_store_*` metrics by the platform.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Intact snapshots written (faulted writes do not count).
    pub snapshots_written: u64,
    /// Bytes of snapshot data written, including faulted writes.
    pub bytes_written: u64,
    /// Successful recoveries (a `recover` call that found a snapshot).
    pub recoveries: u64,
    /// Corrupt or torn snapshot files skipped during recovery.
    pub corrupt_skipped: u64,
}

/// A successfully recovered snapshot.
#[derive(Debug, Clone)]
pub struct Recovered<T> {
    /// Generation the snapshot captured.
    pub generation: usize,
    /// Best fitness recorded at capture time.
    pub best_fitness: Option<f64>,
    /// Corrupt files skipped before this snapshot validated.
    pub skipped_corrupt: usize,
    /// File the state was read from.
    pub path: PathBuf,
    /// The deserialized run state.
    pub state: T,
}

/// A crash-safe snapshot store rooted at one checkpoint directory.
///
/// One store instance belongs to one run, identified by its
/// [`RunFingerprint`]; snapshots and manifests from a different run
/// are refused rather than resumed.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    fingerprint: RunFingerprint,
    keep_last: usize,
    manifest: Manifest,
    stats: StoreStats,
    pending_fault: Option<StoreFault>,
}

/// Snapshot file name for a generation (`gen-00000042.e3snap`).
/// Zero-padded so lexical and numeric order agree.
pub fn snapshot_file_name(generation: usize) -> String {
    format!("gen-{generation:08}.e3snap")
}

fn parse_snapshot_file_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("gen-")?.strip_suffix(".e3snap")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

pub(crate) fn io_err(path: &Path, err: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: err.to_string(),
    }
}

/// Offset of the payload section: one past the second newline.
fn payload_offset(bytes: &[u8]) -> usize {
    let mut newlines = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            newlines += 1;
            if newlines == 2 {
                return i + 1;
            }
        }
    }
    bytes.len()
}

impl RunStore {
    /// Opens (creating if necessary) a checkpoint directory for the
    /// run identified by `fingerprint`.
    ///
    /// An existing readable manifest must match the fingerprint; a
    /// missing or unparseable manifest is tolerated (recovery scans
    /// the directory anyway) and is rebuilt on the next save.
    pub fn open(
        dir: impl AsRef<Path>,
        fingerprint: RunFingerprint,
        keep_last: usize,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = match fs::read_to_string(&manifest_path) {
            Ok(text) => match serde_json::from_str::<Manifest>(&text) {
                Ok(m) if m.fingerprint == fingerprint => m,
                Ok(_) => {
                    return Err(StoreError::FingerprintMismatch {
                        path: manifest_path.display().to_string(),
                    })
                }
                // A torn manifest is recoverable state, not an error.
                Err(_) => Manifest::new(fingerprint.clone()),
            },
            Err(_) => Manifest::new(fingerprint.clone()),
        };
        Ok(RunStore {
            dir,
            fingerprint,
            keep_last: keep_last.max(1),
            manifest,
            stats: StoreStats::default(),
            pending_fault: None,
        })
    }

    /// The checkpoint directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run identity snapshots are stamped with.
    pub fn fingerprint(&self) -> &RunFingerprint {
        &self.fingerprint
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Newest generation the manifest knows about. Prefer
    /// [`RunStore::recover`], which validates against the directory.
    pub fn latest_generation(&self) -> Option<usize> {
        self.manifest.latest_generation
    }

    /// Arms a fault for the next [`RunStore::save`] call. The fault
    /// fires once and disarms itself.
    pub fn inject_fault(&mut self, fault: StoreFault) {
        self.pending_fault = Some(fault);
    }

    /// Serializes `state` and writes the generation snapshot
    /// atomically: temp file, `fsync`, rename, directory sync, then
    /// the manifest (same protocol) and retention pruning.
    ///
    /// If a fault is armed, the write is sabotaged instead: the
    /// (possibly corrupted) bytes land at the final path and the
    /// manifest is left untouched, modelling a crash mid-protocol.
    pub fn save<T: Serialize>(
        &mut self,
        generation: usize,
        best_fitness: Option<f64>,
        state: &T,
    ) -> Result<PathBuf, StoreError> {
        let payload =
            serde_json::to_string(state).map_err(|e| StoreError::Encode(e.to_string()))?;
        let bytes = format::encode(
            &self.fingerprint,
            generation,
            best_fitness,
            payload.as_bytes(),
        )
        .map_err(StoreError::Encode)?;
        let file = snapshot_file_name(generation);
        let path = self.dir.join(&file);

        if let Some(fault) = self.pending_fault.take() {
            // A simulated crash: whatever survives lands directly at
            // the final path, and the manifest never gets updated.
            let damaged = fault.corrupt(&bytes, payload_offset(&bytes));
            self.stats.bytes_written += damaged.len() as u64;
            fs::write(&path, &damaged).map_err(|e| io_err(&path, e))?;
            return Ok(path);
        }

        self.write_atomic(&file, &bytes)?;
        self.stats.snapshots_written += 1;
        self.stats.bytes_written += bytes.len() as u64;

        let evicted = self.manifest.admit(
            ManifestEntry {
                generation,
                file,
                bytes: bytes.len() as u64,
                payload_fnv: format::fnv1a(payload.as_bytes()),
                best_fitness: best_fitness.filter(|f| f.is_finite()),
            },
            self.keep_last,
        );
        self.write_manifest()?;
        for entry in evicted {
            // Pruning is best-effort; a leftover snapshot is harmless.
            fs::remove_file(self.dir.join(&entry.file)).ok();
        }
        Ok(path)
    }

    /// Finds and deserializes the newest intact snapshot.
    ///
    /// Scans the directory for `gen-*.e3snap` files newest-first and
    /// returns the first one that fully validates (magic, version,
    /// length, checksum) — torn, short, and corrupt files are counted
    /// and skipped, never fatal. The manifest is only bookkeeping, so
    /// a stale one (crash between snapshot and manifest writes) is
    /// corrected here rather than trusted. Corrupt files are left in
    /// place for post-mortems; the next save at that generation
    /// overwrites them.
    ///
    /// Returns `Ok(None)` when no intact snapshot exists. An intact
    /// snapshot from a *different* run is an error, not a skip.
    pub fn recover<T: Deserialize>(&mut self) -> Result<Option<Recovered<T>>, StoreError> {
        let mut generations: Vec<(usize, String)> = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(generation) = parse_snapshot_file_name(&name) {
                generations.push((generation, name));
            }
        }
        generations.sort();
        generations.reverse();

        let mut skipped = 0usize;
        for (generation, name) in generations {
            let path = self.dir.join(&name);
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            let (header, payload) = match format::decode(&bytes) {
                Ok(parts) => parts,
                Err(_) => {
                    skipped += 1;
                    self.stats.corrupt_skipped += 1;
                    continue;
                }
            };
            if header.fingerprint != self.fingerprint {
                return Err(StoreError::FingerprintMismatch {
                    path: path.display().to_string(),
                });
            }
            let text =
                std::str::from_utf8(payload).map_err(|e| StoreError::Decode(e.to_string()))?;
            let state: T =
                serde_json::from_str(text).map_err(|e| StoreError::Decode(e.to_string()))?;
            self.stats.recoveries += 1;
            // Reconcile a possibly-stale manifest with what the scan
            // actually found.
            if self.manifest.latest_generation != Some(generation) {
                self.manifest.admit(
                    ManifestEntry {
                        generation,
                        file: name,
                        bytes: bytes.len() as u64,
                        payload_fnv: header.payload_fnv,
                        best_fitness: header.best_fitness,
                    },
                    self.keep_last,
                );
                self.write_manifest()?;
            }
            return Ok(Some(Recovered {
                generation,
                best_fitness: header.best_fitness,
                skipped_corrupt: skipped,
                path,
                state,
            }));
        }
        Ok(None)
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let json = serde_json::to_string_pretty(&self.manifest)
            .map_err(|e| StoreError::Encode(e.to_string()))?;
        self.write_atomic(MANIFEST_FILE, json.as_bytes())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        write_atomic_in(&self.dir, name, bytes)
    }
}

/// Temp file + `fsync` + rename + directory sync. After this returns,
/// either the old file or the complete new file is on disk — never a
/// mix. Shared by snapshot, manifest, and sidecar writes.
pub(crate) fn write_atomic_in(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(format!(".tmp.{name}"));
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    let target = dir.join(name);
    fs::rename(&tmp, &target).map_err(|e| io_err(&target, e))?;
    // Sync the directory so the rename survives a crash too.
    // Best-effort: not every filesystem supports opening a dir.
    if let Ok(d) = fs::File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> RunFingerprint {
        RunFingerprint {
            config_hash: 0xabcd,
            backend: "E3-CPU".to_string(),
            seed: 11,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("e3-store-test-{}-{tag}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_then_recover_round_trips() {
        let dir = scratch("roundtrip");
        let mut store = RunStore::open(&dir, fp(), 3).unwrap();
        store.save(0, Some(1.0), &vec![10u64, 20]).unwrap();
        store.save(1, Some(2.0), &vec![30u64]).unwrap();
        let recovered = store.recover::<Vec<u64>>().unwrap().unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.state, vec![30]);
        assert_eq!(recovered.best_fitness, Some(2.0));
        assert_eq!(recovered.skipped_corrupt, 0);
        assert_eq!(store.stats().snapshots_written, 2);
        assert_eq!(store.stats().recoveries, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_recovers_to_none() {
        let dir = scratch("empty");
        let mut store = RunStore::open(&dir, fp(), 3).unwrap();
        assert!(store.recover::<Vec<u64>>().unwrap().is_none());
        assert_eq!(store.stats().recoveries, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_prunes_files_on_disk() {
        let dir = scratch("retention");
        let mut store = RunStore::open(&dir, fp(), 2).unwrap();
        // Best fitness peaks at generation 1.
        for (generation, fitness) in [(0, 1.0), (1, 9.0), (2, 2.0), (3, 3.0), (4, 4.0)] {
            store.save(generation, Some(fitness), &generation).unwrap();
        }
        let mut on_disk: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".e3snap"))
            .collect();
        on_disk.sort();
        // Last two plus the best-so-far generation.
        assert_eq!(
            on_disk,
            vec![
                snapshot_file_name(1),
                snapshot_file_name(3),
                snapshot_file_name(4)
            ]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_store_sees_the_manifest() {
        let dir = scratch("reopen");
        {
            let mut store = RunStore::open(&dir, fp(), 3).unwrap();
            store.save(5, Some(1.5), &"state".to_string()).unwrap();
        }
        let store = RunStore::open(&dir, fp(), 3).unwrap();
        assert_eq!(store.latest_generation(), Some(5));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alien_manifest_is_refused() {
        let dir = scratch("alien");
        {
            let mut store = RunStore::open(&dir, fp(), 3).unwrap();
            store.save(0, None, &1u32).unwrap();
        }
        let other = RunFingerprint {
            config_hash: 999,
            ..fp()
        };
        let err = RunStore::open(&dir, other, 3).unwrap_err();
        assert!(matches!(err, StoreError::FingerprintMismatch { .. }));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alien_snapshot_is_refused_at_recovery() {
        let dir = scratch("alien-snap");
        {
            let mut store = RunStore::open(&dir, fp(), 3).unwrap();
            store.save(0, None, &1u32).unwrap();
        }
        // Remove the manifest so open() succeeds with a different
        // fingerprint, then let recovery hit the mismatched snapshot.
        fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let other = RunFingerprint {
            seed: 12345,
            ..fp()
        };
        let mut store = RunStore::open(&dir, other, 3).unwrap();
        let err = store.recover::<u32>().unwrap_err();
        assert!(matches!(err, StoreError::FingerprintMismatch { .. }));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_file_names_sort_with_generations() {
        assert_eq!(snapshot_file_name(42), "gen-00000042.e3snap");
        assert_eq!(parse_snapshot_file_name("gen-00000042.e3snap"), Some(42));
        assert_eq!(parse_snapshot_file_name("gen-.e3snap"), None);
        assert_eq!(parse_snapshot_file_name("manifest.json"), None);
        assert_eq!(parse_snapshot_file_name(".tmp.gen-00000001.e3snap"), None);
        assert!(snapshot_file_name(9) < snapshot_file_name(10));
    }

    #[test]
    fn non_snapshot_files_are_ignored_by_recovery() {
        let dir = scratch("ignore");
        let mut store = RunStore::open(&dir, fp(), 3).unwrap();
        store.save(2, None, &7u32).unwrap();
        fs::write(dir.join("notes.txt"), b"not a snapshot").unwrap();
        let recovered = store.recover::<u32>().unwrap().unwrap();
        assert_eq!(recovered.generation, 2);
        assert_eq!(recovered.skipped_corrupt, 0);
        fs::remove_dir_all(&dir).ok();
    }
}
