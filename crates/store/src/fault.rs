//! Fault injection for crash-safety testing.
//!
//! A [`StoreFault`] armed via [`crate::RunStore::inject_fault`]
//! sabotages the *next* [`crate::RunStore::save`] call, reproducing
//! the on-disk wreckage a power cut can leave behind. Every fault
//! models a crash at a specific point in the write protocol, so a
//! faulted save also skips the manifest update — exactly what a real
//! crash before the manifest rename would do.

/// A simulated crash mode, applied to the next snapshot write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// The payload section is truncated mid-write: the magic and
    /// header land intact but `payload_len` disagrees with the bytes
    /// present. Models a crash while streaming the payload.
    TornWrite,
    /// The file is cut inside the magic/header lines — only a few
    /// bytes land. Models a crash immediately after file creation.
    ShortWrite,
    /// The full file lands but one payload bit is flipped. Models
    /// silent media corruption (or a firmware write bug).
    ChecksumCorruption,
    /// The snapshot itself lands intact, but the crash happens before
    /// `manifest.json` is updated — the manifest still points at the
    /// previous generation. Recovery must prefer the directory scan
    /// over the manifest to find the newer snapshot.
    StaleManifest,
}

impl StoreFault {
    /// All fault modes, for exhaustive harness sweeps.
    pub const ALL: [StoreFault; 4] = [
        StoreFault::TornWrite,
        StoreFault::ShortWrite,
        StoreFault::ChecksumCorruption,
        StoreFault::StaleManifest,
    ];

    /// Short display name (used in test output and telemetry).
    pub fn name(&self) -> &'static str {
        match self {
            StoreFault::TornWrite => "torn-write",
            StoreFault::ShortWrite => "short-write",
            StoreFault::ChecksumCorruption => "checksum-corruption",
            StoreFault::StaleManifest => "stale-manifest",
        }
    }

    /// Applies this fault to an encoded snapshot, returning the bytes
    /// that actually reach disk. `header_end` is the offset one past
    /// the header line's newline (the start of the payload section).
    pub(crate) fn corrupt(&self, bytes: &[u8], header_end: usize) -> Vec<u8> {
        match self {
            StoreFault::TornWrite => {
                // Keep the header intact, drop the tail of the payload.
                let payload_len = bytes.len() - header_end;
                let keep = header_end + (payload_len * 3) / 5;
                bytes[..keep].to_vec()
            }
            StoreFault::ShortWrite => bytes[..bytes.len().min(4)].to_vec(),
            StoreFault::ChecksumCorruption => {
                let mut out = bytes.to_vec();
                let last = out.len() - 1;
                out[last] ^= 0x01;
                out
            }
            StoreFault::StaleManifest => bytes.to_vec(),
        }
    }
}

impl std::fmt::Display for StoreFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
