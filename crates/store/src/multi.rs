//! Multiple runs sharing one parent checkpoint directory.
//!
//! A [`RunStore`] assumes one run per directory: one manifest, one
//! fingerprint, one snapshot sequence. An island-evolution run breaks
//! that assumption — N islands checkpoint concurrently, and they
//! should live under a single parent directory so an operator can
//! point one `--checkpoint-dir` at the whole archipelago.
//!
//! [`MultiStore`] provides the scoping: each run gets a *namespace*
//! (a subdirectory, e.g. `island-00/`), and a registry file at the
//! parent root records which fingerprint each namespace is bound to.
//! Opening a namespace with a different fingerprint is a typed
//! [`StoreError::NamespaceMismatch`] — a cross-island snapshot mixup
//! is refused before any snapshot is read, not silently resumed.
//!
//! The registry is advisory the same way the per-run manifest is:
//! a torn or missing registry is rebuilt from use, and every snapshot
//! still carries its own fingerprint, so even a hand-scrambled
//! directory layout cannot smuggle one island's state into another
//! (the per-snapshot check in [`RunStore::recover`] backstops it).
//!
//! Namespaces can also hold *sidecar* files — small atomic JSON
//! documents next to the snapshots. The islands scheduler persists
//! migration packets this way so a killed daemon can replay exchanges
//! whose source islands have already moved past them.

use crate::{io_err, write_atomic_in, RunFingerprint, RunStore, StoreError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Registry file at the parent root mapping namespaces to the run
/// fingerprints they are bound to.
pub const NAMESPACE_REGISTRY_FILE: &str = "namespaces.json";

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct NamespaceRegistry {
    format_version: u32,
    namespaces: BTreeMap<String, RunFingerprint>,
}

/// A parent directory sharing crash-safe stores between many runs,
/// each scoped to its own namespaced subdirectory.
///
/// ```
/// use e3_store::{MultiStore, RunFingerprint};
///
/// let dir = std::env::temp_dir().join(format!("e3-multi-doc-{}", std::process::id()));
/// let mut multi = MultiStore::open(&dir)?;
/// let fp = RunFingerprint { config_hash: 1, backend: "E3-CPU".into(), seed: 7 };
/// let mut store = multi.store_for("island-00", fp, 3)?;
/// store.save(0, None, &vec![1u8, 2, 3])?;
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), e3_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct MultiStore {
    parent: PathBuf,
    registry: NamespaceRegistry,
}

/// A namespace must be a plain directory name: no separators, no
/// leading dot (dot-files are temp/registry artifacts).
fn validate_namespace(namespace: &str) {
    assert!(
        !namespace.is_empty()
            && !namespace.starts_with('.')
            && namespace
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'),
        "invalid store namespace {namespace:?}: use [A-Za-z0-9._-], not starting with '.'"
    );
}

impl MultiStore {
    /// Opens (creating if necessary) a shared parent directory.
    ///
    /// A readable registry is loaded; a missing or torn one is
    /// tolerated and rebuilt as namespaces are (re)bound — per-run
    /// manifests and per-snapshot fingerprints keep every individual
    /// namespace self-validating regardless.
    pub fn open(parent: impl AsRef<Path>) -> Result<Self, StoreError> {
        let parent = parent.as_ref().to_path_buf();
        fs::create_dir_all(&parent).map_err(|e| io_err(&parent, e))?;
        let path = parent.join(NAMESPACE_REGISTRY_FILE);
        let registry = match fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text).unwrap_or_default(),
            Err(_) => NamespaceRegistry::default(),
        };
        Ok(MultiStore { parent, registry })
    }

    /// The shared parent directory.
    pub fn parent(&self) -> &Path {
        &self.parent
    }

    /// The namespaces the registry knows about, with their bound
    /// fingerprints, in lexical order.
    pub fn namespaces(&self) -> impl Iterator<Item = (&str, &RunFingerprint)> {
        self.registry
            .namespaces
            .iter()
            .map(|(k, v)| (k.as_str(), v))
    }

    /// Absolute path of a namespace's subdirectory (which may not
    /// exist yet).
    pub fn namespace_dir(&self, namespace: &str) -> PathBuf {
        validate_namespace(namespace);
        self.parent.join(namespace)
    }

    /// Opens the [`RunStore`] for one namespace, binding the namespace
    /// to `fingerprint` in the shared registry.
    ///
    /// # Errors
    ///
    /// [`StoreError::NamespaceMismatch`] when the registry already
    /// binds this namespace to a *different* fingerprint — the caller
    /// is about to read another run's snapshots, which would silently
    /// change results. Re-opening with the same fingerprint (the
    /// resume path) is fine.
    ///
    /// # Panics
    ///
    /// Panics if `namespace` is not a plain directory name (see
    /// [`MultiStore::namespace_dir`]).
    pub fn store_for(
        &mut self,
        namespace: &str,
        fingerprint: RunFingerprint,
        keep_last: usize,
    ) -> Result<RunStore, StoreError> {
        let dir = self.namespace_dir(namespace);
        match self.registry.namespaces.get(namespace) {
            Some(bound) if *bound != fingerprint => {
                return Err(StoreError::NamespaceMismatch {
                    namespace: namespace.to_string(),
                    path: self
                        .parent
                        .join(NAMESPACE_REGISTRY_FILE)
                        .display()
                        .to_string(),
                });
            }
            Some(_) => {}
            None => {
                self.registry
                    .namespaces
                    .insert(namespace.to_string(), fingerprint.clone());
                self.write_registry()?;
            }
        }
        // The per-namespace manifest still checks the fingerprint, so
        // a registry rebuilt after a torn write cannot mask a mixup.
        // Translate that lower-level refusal into the namespace-typed
        // error: at this layer the caller knows *which island* it was
        // opening, and the distinction is the whole point.
        RunStore::open(&dir, fingerprint, keep_last).map_err(|err| match err {
            StoreError::FingerprintMismatch { path } => StoreError::NamespaceMismatch {
                namespace: namespace.to_string(),
                path,
            },
            other => other,
        })
    }

    /// Atomically writes a JSON sidecar document into a namespace.
    ///
    /// Sidecars live next to the namespace's snapshots and survive the
    /// same crash model (temp + fsync + rename). `name` must end in
    /// `.json` and is validated like a namespace.
    pub fn save_sidecar<T: Serialize>(
        &self,
        namespace: &str,
        name: &str,
        value: &T,
    ) -> Result<PathBuf, StoreError> {
        validate_namespace(name);
        let dir = self.namespace_dir(namespace);
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let json = serde_json::to_string(value).map_err(|e| StoreError::Encode(e.to_string()))?;
        write_atomic_in(&dir, name, json.as_bytes())?;
        Ok(dir.join(name))
    }

    /// Reads a JSON sidecar back, returning `Ok(None)` when the file
    /// does not exist (never written, or lost with the crash it was
    /// meant to survive — callers treat both as "no packet").
    pub fn load_sidecar<T: Deserialize>(
        &self,
        namespace: &str,
        name: &str,
    ) -> Result<Option<T>, StoreError> {
        validate_namespace(name);
        let path = self.namespace_dir(namespace).join(name);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        // A torn sidecar cannot happen under the atomic-write protocol,
        // but a decode failure (schema drift) is a real error.
        serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| StoreError::Decode(e.to_string()))
    }

    /// Names of the sidecar files in a namespace whose name starts
    /// with `prefix`, in lexical order.
    pub fn list_sidecars(&self, namespace: &str, prefix: &str) -> Result<Vec<String>, StoreError> {
        let dir = self.namespace_dir(namespace);
        let mut names = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(io_err(&dir, e)),
        };
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(prefix) && !name.starts_with('.') {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    fn write_registry(&self) -> Result<(), StoreError> {
        let json = serde_json::to_string_pretty(&self.registry)
            .map_err(|e| StoreError::Encode(e.to_string()))?;
        write_atomic_in(&self.parent, NAMESPACE_REGISTRY_FILE, json.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(seed: u64) -> RunFingerprint {
        RunFingerprint {
            config_hash: 0xfeed,
            backend: "E3-CPU".to_string(),
            seed,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("e3-multi-test-{}-{tag}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn namespaces_are_independent_stores() {
        let dir = scratch("independent");
        let mut multi = MultiStore::open(&dir).unwrap();
        let mut a = multi.store_for("island-00", fp(0), 3).unwrap();
        let mut b = multi.store_for("island-01", fp(1), 3).unwrap();
        a.save(0, Some(1.0), &"a-state".to_string()).unwrap();
        b.save(5, Some(2.0), &"b-state".to_string()).unwrap();
        let ra = a.recover::<String>().unwrap().unwrap();
        let rb = b.recover::<String>().unwrap().unwrap();
        assert_eq!((ra.generation, ra.state.as_str()), (0, "a-state"));
        assert_eq!((rb.generation, rb.state.as_str()), (5, "b-state"));
        assert_eq!(multi.namespaces().count(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cross_island_mixup_is_a_namespace_mismatch() {
        let dir = scratch("mixup");
        {
            let mut multi = MultiStore::open(&dir).unwrap();
            let mut store = multi.store_for("island-00", fp(0), 3).unwrap();
            store.save(0, None, &1u32).unwrap();
        }
        // Reopen the parent and offer island 1's fingerprint for
        // island 0's namespace.
        let mut multi = MultiStore::open(&dir).unwrap();
        let err = multi.store_for("island-00", fp(1), 3).unwrap_err();
        assert!(
            matches!(err, StoreError::NamespaceMismatch { ref namespace, .. }
            if namespace == "island-00")
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_registry_still_refuses_mixups_via_manifest() {
        let dir = scratch("torn-registry");
        {
            let mut multi = MultiStore::open(&dir).unwrap();
            let mut store = multi.store_for("island-00", fp(0), 3).unwrap();
            store.save(0, None, &1u32).unwrap();
        }
        // Simulate a crash that tore the registry: the per-namespace
        // manifest check must still surface the mixup, typed as a
        // namespace mismatch.
        fs::write(dir.join(NAMESPACE_REGISTRY_FILE), b"{ torn").unwrap();
        let mut multi = MultiStore::open(&dir).unwrap();
        let err = multi.store_for("island-00", fp(1), 3).unwrap_err();
        assert!(matches!(err, StoreError::NamespaceMismatch { .. }));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_with_same_fingerprint_resumes() {
        let dir = scratch("reopen");
        {
            let mut multi = MultiStore::open(&dir).unwrap();
            let mut store = multi.store_for("island-02", fp(2), 3).unwrap();
            store.save(7, Some(3.5), &42u64).unwrap();
        }
        let mut multi = MultiStore::open(&dir).unwrap();
        let mut store = multi.store_for("island-02", fp(2), 3).unwrap();
        let recovered = store.recover::<u64>().unwrap().unwrap();
        assert_eq!(recovered.generation, 7);
        assert_eq!(recovered.state, 42);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sidecars_round_trip_and_list_in_order() {
        let dir = scratch("sidecar");
        let multi = MultiStore::open(&dir).unwrap();
        assert_eq!(
            multi
                .load_sidecar::<Vec<u32>>("island-00", "mig-00000002.json")
                .unwrap(),
            None
        );
        multi
            .save_sidecar("island-00", "mig-00000010.json", &vec![4u32, 5])
            .unwrap();
        multi
            .save_sidecar("island-00", "mig-00000002.json", &vec![1u32])
            .unwrap();
        assert_eq!(
            multi
                .load_sidecar::<Vec<u32>>("island-00", "mig-00000002.json")
                .unwrap(),
            Some(vec![1])
        );
        assert_eq!(
            multi.list_sidecars("island-00", "mig-").unwrap(),
            vec!["mig-00000002.json", "mig-00000010.json"]
        );
        assert!(multi.list_sidecars("island-09", "mig-").unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "invalid store namespace")]
    fn path_separators_in_namespaces_are_rejected() {
        let dir = scratch("badname");
        let multi = MultiStore::open(&dir).unwrap();
        let _ = multi.namespace_dir("../escape");
    }
}
