//! The run manifest: `manifest.json` at the root of a checkpoint
//! directory.
//!
//! The manifest points at the latest valid generation snapshot and
//! records retention bookkeeping (which snapshots exist, which holds
//! the best fitness so far). It is written atomically *after* the
//! snapshot it references, so a crash between the two leaves a
//! *stale* manifest: one pointing at generation `G` while an intact
//! `G+1` snapshot already sits in the directory. Recovery therefore
//! treats the manifest as a hint only — it always re-validates
//! against the directory scan and picks the newest intact snapshot
//! (see `RunStore::recover`), which also makes a torn or missing
//! manifest harmless.

use crate::format::{RunFingerprint, FORMAT_VERSION};
use serde::{Deserialize, Serialize};

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One retained snapshot, as the manifest records it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Generation the snapshot captured.
    pub generation: usize,
    /// Snapshot file name (relative to the checkpoint directory).
    pub file: String,
    /// Total file size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 checksum of the payload section.
    pub payload_fnv: u64,
    /// Best fitness at capture time (absent when non-finite).
    pub best_fitness: Option<f64>,
}

/// The manifest document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Snapshot format version the directory was written with.
    pub format_version: u32,
    /// Which run this directory belongs to.
    pub fingerprint: RunFingerprint,
    /// Generation of the newest snapshot the writer knows about.
    pub latest_generation: Option<usize>,
    /// Generation holding the best fitness so far (never pruned).
    pub best_generation: Option<usize>,
    /// Every snapshot the writer believes is on disk, oldest first.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// An empty manifest for a fresh run directory.
    pub fn new(fingerprint: RunFingerprint) -> Self {
        Manifest {
            format_version: FORMAT_VERSION,
            fingerprint,
            latest_generation: None,
            best_generation: None,
            entries: Vec::new(),
        }
    }

    /// Records a newly written snapshot and returns the entries that
    /// fall outside the retention set (keep-last-`keep_last` plus the
    /// best-so-far snapshot) — the caller deletes those files.
    pub fn admit(&mut self, entry: ManifestEntry, keep_last: usize) -> Vec<ManifestEntry> {
        self.entries.retain(|e| e.generation != entry.generation);
        self.entries.push(entry);
        self.entries.sort_by_key(|e| e.generation);
        let latest = self.entries.last().expect("just pushed").generation;
        self.latest_generation = Some(latest);

        // Best-so-far: highest recorded fitness, newest generation
        // breaking ties (entries are generation-sorted, so a later
        // equal fitness wins).
        let mut best: Option<(f64, usize)> = None;
        for e in &self.entries {
            let fitness = e.best_fitness.unwrap_or(f64::NEG_INFINITY);
            if best.is_none_or(|(bf, _)| fitness >= bf) {
                best = Some((fitness, e.generation));
            }
        }
        self.best_generation = best.map(|(_, generation)| generation);

        let keep_from = self.entries.len().saturating_sub(keep_last.max(1));
        let kept_tail: Vec<usize> = self.entries[keep_from..]
            .iter()
            .map(|e| e.generation)
            .collect();
        let keep = |generation: usize| {
            kept_tail.contains(&generation) || Some(generation) == self.best_generation
        };
        let evicted: Vec<ManifestEntry> = self
            .entries
            .iter()
            .filter(|e| !keep(e.generation))
            .cloned()
            .collect();
        self.entries.retain(|e| keep(e.generation));
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> RunFingerprint {
        RunFingerprint {
            config_hash: 1,
            backend: "E3-CPU".to_string(),
            seed: 0,
        }
    }

    fn entry(generation: usize, fitness: f64) -> ManifestEntry {
        ManifestEntry {
            generation,
            file: format!("gen-{generation:08}.e3snap"),
            bytes: 100,
            payload_fnv: 0,
            best_fitness: Some(fitness),
        }
    }

    #[test]
    fn retention_keeps_last_n_plus_best() {
        let mut manifest = Manifest::new(fp());
        // Fitness peaks at generation 2, then declines.
        let fitness = [1.0, 2.0, 9.0, 3.0, 4.0, 5.0];
        let mut evicted_all = Vec::new();
        for (generation, &f) in fitness.iter().enumerate() {
            evicted_all.extend(manifest.admit(entry(generation, f), 2));
        }
        let kept: Vec<usize> = manifest.entries.iter().map(|e| e.generation).collect();
        // Last two (4, 5) plus the best (2).
        assert_eq!(kept, vec![2, 4, 5]);
        assert_eq!(manifest.latest_generation, Some(5));
        assert_eq!(manifest.best_generation, Some(2));
        let evicted: Vec<usize> = evicted_all.iter().map(|e| e.generation).collect();
        assert_eq!(evicted, vec![0, 1, 3]);
    }

    #[test]
    fn ties_prefer_the_newer_generation() {
        let mut manifest = Manifest::new(fp());
        manifest.admit(entry(0, 5.0), 10);
        manifest.admit(entry(1, 5.0), 10);
        assert_eq!(manifest.best_generation, Some(1));
    }

    #[test]
    fn readmitting_a_generation_replaces_it() {
        let mut manifest = Manifest::new(fp());
        manifest.admit(entry(3, 1.0), 4);
        let mut replacement = entry(3, 2.0);
        replacement.bytes = 999;
        manifest.admit(replacement, 4);
        assert_eq!(manifest.entries.len(), 1);
        assert_eq!(manifest.entries[0].bytes, 999);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = Manifest::new(fp());
        manifest.admit(entry(0, 1.5), 3);
        manifest.admit(entry(1, 2.5), 3);
        let json = serde_json::to_string(&manifest).unwrap();
        let back: Manifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, manifest);
    }
}
