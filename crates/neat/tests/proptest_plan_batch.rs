//! Property tests for the [`e3_neat::PlanBatch`] population-major
//! batched executor.
//!
//! The batched kernel's contract is per-lane **bit-identity** with
//! solo [`e3_neat::NetPlan`] execution, regardless of which other
//! plans share the batch or which lanes are parked. With the
//! `fast-math` feature on the bit-exactness claim is forfeited by
//! design (the kernel swaps in a rational tanh/sigmoid), so the
//! bitwise properties compile out and only the tolerance property
//! remains.

use e3_neat::{Genome, InnovationTracker, NeatConfig, NetPlan, PlanBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evolved_genome(num_inputs: usize, num_outputs: usize, seed: u64, mutations: usize) -> Genome {
    let config = NeatConfig::builder(num_inputs, num_outputs)
        .initial_connection_density(0.6)
        .build();
    let mut tracker = InnovationTracker::with_reserved_nodes(num_inputs + num_outputs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = Genome::initial(&config, &mut tracker, &mut rng);
    for _ in 0..mutations {
        genome.mutate(&config, &mut tracker, &mut rng);
    }
    genome
}

/// Compiles `lanes` differently-evolved plans sharing one IO shape.
#[cfg(not(feature = "fast-math"))]
fn evolved_plans(
    num_inputs: usize,
    num_outputs: usize,
    seed: u64,
    lanes: usize,
    mutations: usize,
) -> Vec<NetPlan> {
    (0..lanes)
        .map(|lane| {
            let genome = evolved_genome(
                num_inputs,
                num_outputs,
                seed.wrapping_add(lane as u64),
                mutations,
            );
            NetPlan::compile(&genome).expect("mutations preserve feed-forwardness")
        })
        .collect()
}

/// Deterministic per-lane probe inputs derived from `x`.
fn lane_inputs(lanes: usize, num_inputs: usize, x: f64) -> Vec<f64> {
    (0..lanes * num_inputs)
        .map(|i| x * ((i % 7) as f64 + 1.0) * 0.31 - 2.0)
        .collect()
}

fn run_batch(batch: &PlanBatch, inputs: &[f64], active: &[bool]) -> Vec<f64> {
    let mut values = vec![0.0; batch.value_buffer_slots()];
    let mut outputs = vec![0.0; batch.lanes() * batch.num_outputs()];
    batch.activate_batch_into(inputs, active, &mut values, &mut outputs);
    outputs
}

#[cfg(not(feature = "fast-math"))]
mod bitwise {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every active lane of an arbitrary batch produces the exact
        /// f64 bit patterns of its plan executed alone, whatever the
        /// other lanes contain and whatever subset of lanes is parked.
        #[test]
        fn batched_lanes_match_solo_execution(
            seed in any::<u64>(),
            num_inputs in 1usize..5,
            num_outputs in 1usize..4,
            lanes in 1usize..7,
            mutations in 0usize..40,
            mask in any::<u8>(),
            x in -4.0f64..4.0,
        ) {
            let plans = evolved_plans(num_inputs, num_outputs, seed, lanes, mutations);
            let refs: Vec<&NetPlan> = plans.iter().collect();
            let batch = PlanBatch::build(&refs);
            let inputs = lane_inputs(lanes, num_inputs, x);
            let active: Vec<bool> = (0..lanes).map(|b| mask & (1 << b) != 0).collect();
            let outputs = run_batch(&batch, &inputs, &active);
            for (b, plan) in plans.iter().enumerate() {
                if !active[b] {
                    continue;
                }
                let solo = plan.execute(&inputs[b * num_inputs..(b + 1) * num_inputs]);
                for (k, want) in solo.iter().enumerate() {
                    let got = outputs[b * num_outputs + k];
                    prop_assert_eq!(
                        want.to_bits(),
                        got.to_bits(),
                        "lane {} output {} drifted: {} vs {}",
                        b, k, want, got
                    );
                }
            }
        }

        /// Parked lanes are never touched: their output slots keep
        /// whatever bits the caller left in them.
        #[test]
        fn parked_lanes_keep_caller_bits(
            seed in any::<u64>(),
            lanes in 2usize..6,
            mutations in 0usize..30,
            sentinel in any::<f64>(),
        ) {
            let plans = evolved_plans(3, 2, seed, lanes, mutations);
            let refs: Vec<&NetPlan> = plans.iter().collect();
            let batch = PlanBatch::build(&refs);
            let inputs = lane_inputs(lanes, 3, 0.7);
            // Park every odd lane.
            let active: Vec<bool> = (0..lanes).map(|b| b % 2 == 0).collect();
            let mut values = vec![0.0; batch.value_buffer_slots()];
            let mut outputs = vec![sentinel; lanes * 2];
            batch.activate_batch_into(&inputs, &active, &mut values, &mut outputs);
            for b in (1..lanes).step_by(2) {
                for k in 0..2 {
                    prop_assert_eq!(
                        outputs[b * 2 + k].to_bits(),
                        sentinel.to_bits(),
                        "parked lane {} was written", b
                    );
                }
            }
        }
    }
}

/// Rigorous worst-case envelope for the `fast-math` approximation
/// error at the outputs of `genome`'s network: per activation the
/// approximation is within `EPS = 1e-3` and every activation in the
/// suite is Lipschitz with constant ≤ `LIP = 1.3` (the steepest is the
/// sigmoid at 1.225), so an input perturbation `e` becomes at most
/// `EPS + LIP * W * e` one level deeper, where `W` is the largest
/// absolute fan-in weight sum of any node.
fn fast_math_bound(genome: &Genome, levels: usize) -> f64 {
    const EPS: f64 = 1e-3;
    const LIP: f64 = 1.3;
    let mut fan_in: std::collections::HashMap<_, f64> = std::collections::HashMap::new();
    for c in genome.connections() {
        if c.enabled {
            *fan_in.entry(c.to).or_default() += c.weight.abs();
        }
    }
    let w = fan_in.values().fold(1.0f64, |a, b| a.max(*b));
    let gain = LIP * w;
    let mut bound = 0.0;
    for _ in 0..levels.max(1) {
        bound = EPS + gain * bound;
    }
    bound
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Feature-agnostic envelope: with `fast-math` on, batched outputs
    /// stay within the compounded worst-case approximation bound of
    /// solo execution; with it off they are bit-identical (covered
    /// exactly by the `bitwise` module) and trivially within bound.
    #[test]
    fn batched_lanes_stay_within_tolerance(
        seed in any::<u64>(),
        lanes in 1usize..6,
        mutations in 0usize..40,
        x in -4.0f64..4.0,
    ) {
        let genomes: Vec<Genome> = (0..lanes)
            .map(|b| evolved_genome(4, 2, seed.wrapping_add(b as u64), mutations))
            .collect();
        let plans: Vec<NetPlan> = genomes
            .iter()
            .map(|g| NetPlan::compile(g).expect("mutations preserve feed-forwardness"))
            .collect();
        let refs: Vec<&NetPlan> = plans.iter().collect();
        let batch = PlanBatch::build(&refs);
        let inputs = lane_inputs(lanes, 4, x);
        let active = vec![true; lanes];
        let outputs = run_batch(&batch, &inputs, &active);
        for (b, plan) in plans.iter().enumerate() {
            let bound = fast_math_bound(&genomes[b], plan.num_compute_levels());
            let solo = plan.execute(&inputs[b * 4..(b + 1) * 4]);
            for (k, want) in solo.iter().enumerate() {
                let got = outputs[b * 2 + k];
                prop_assert!(
                    (want - got).abs() <= bound,
                    "lane {} output {} off by {} (bound {})",
                    b, k, (want - got).abs(), bound
                );
            }
        }
    }
}
