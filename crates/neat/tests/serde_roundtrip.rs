//! Serialization round-trip properties for the checkpointable types.
//!
//! The crash-safe run store (`e3-store`) persists populations as JSON
//! and compares snapshots by checksum, so two invariants matter beyond
//! plain serde correctness:
//!
//! 1. **Value round-trip** — deserializing a serialized value yields
//!    an equal value (nothing is lost or reinterpreted).
//! 2. **Byte stability** — re-serializing the deserialized value
//!    yields the *same bytes*. Without this, re-saving an untouched
//!    snapshot would change its checksum and defeat torn-write
//!    detection by content comparison.

use e3_neat::checkpoint::PopulationSnapshot;
use e3_neat::{Genome, InnovationTracker, NeatConfig, Population, Species};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evolved_population(seed: u64, pop_size: usize, generations: usize) -> Population {
    let config = NeatConfig::builder(3, 2).population_size(pop_size).build();
    let mut pop = Population::new(config, seed);
    for gen in 0..generations {
        pop.evaluate(|g| g.num_enabled_connections() as f64 + (gen % 3) as f64);
        pop.evolve();
    }
    pop.evaluate(|g| g.num_hidden() as f64);
    pop
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Genome JSON is a stable fixed point: serialize → deserialize →
    /// serialize reproduces the bytes, and the value survives intact.
    #[test]
    fn genome_serialization_is_byte_stable(
        seed in any::<u64>(),
        mutations in 0usize..40,
    ) {
        let config = NeatConfig::builder(3, 2).initial_connection_density(0.6).build();
        let mut tracker = InnovationTracker::with_reserved_nodes(5);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genome = Genome::initial(&config, &mut tracker, &mut rng);
        for _ in 0..mutations {
            genome.mutate(&config, &mut tracker, &mut rng);
        }
        let json = serde_json::to_string(&genome).unwrap();
        let back: Genome = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &genome);
        let json_again = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(json_again, json);
    }

    /// Species records (representative, members, stagnation counters)
    /// round-trip byte-stably.
    #[test]
    fn species_serialization_is_byte_stable(
        seed in any::<u64>(),
        pop_size in 5usize..30,
    ) {
        let pop = evolved_population(seed, pop_size, 3);
        for species in pop.species() {
            let json = serde_json::to_string(species).unwrap();
            let back: Species = serde_json::from_str(&json).unwrap();
            let json_again = serde_json::to_string(&back).unwrap();
            prop_assert_eq!(json_again, json);
        }
    }

    /// Full population snapshots — the exact payload `e3-store`
    /// persists — round-trip byte-stably after arbitrary evolution.
    #[test]
    fn population_snapshot_serialization_is_byte_stable(
        seed in any::<u64>(),
        pop_size in 5usize..25,
        generations in 0usize..5,
    ) {
        let pop = evolved_population(seed, pop_size, generations);
        let snapshot = PopulationSnapshot::capture(&pop);
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: PopulationSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back.genomes, &snapshot.genomes);
        prop_assert_eq!(back.generation, snapshot.generation);
        prop_assert_eq!(back.rng_state, snapshot.rng_state);
        let json_again = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(json_again, json);
    }

    /// Byte stability composes with restore: capture → restore →
    /// capture serializes to the identical bytes, so checkpointing is
    /// idempotent at the file level.
    #[test]
    fn capture_restore_capture_is_a_fixed_point(
        seed in any::<u64>(),
        pop_size in 5usize..20,
    ) {
        let pop = evolved_population(seed, pop_size, 2);
        let first = PopulationSnapshot::capture(&pop);
        let json_first = serde_json::to_string(&first).unwrap();
        let restored = first.restore(seed);
        let second = PopulationSnapshot::capture(&restored);
        let json_second = serde_json::to_string(&second).unwrap();
        prop_assert_eq!(json_second, json_first);
    }
}
