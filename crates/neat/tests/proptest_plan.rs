//! Property tests for the [`e3_neat::NetPlan`] compiled-network IR.
//!
//! The plan path must be **bit-identical** to the per-node reference
//! decoder it replaced ([`e3_neat::ReferenceNetwork`] preserves that
//! code verbatim as an oracle), and cyclic genomes must fail plan
//! compilation with the same [`DecodeError`] the legacy decode raised.

use e3_neat::recurrent::RecurrentNetwork;
use e3_neat::{
    DecodeError, Genome, InnovationTracker, NeatConfig, NetPlan, Network, ReferenceNetwork,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evolved_genome(num_inputs: usize, num_outputs: usize, seed: u64, mutations: usize) -> Genome {
    let config = NeatConfig::builder(num_inputs, num_outputs)
        .initial_connection_density(0.6)
        .build();
    let mut tracker = InnovationTracker::with_reserved_nodes(num_inputs + num_outputs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = Genome::initial(&config, &mut tracker, &mut rng);
    for _ in 0..mutations {
        genome.mutate(&config, &mut tracker, &mut rng);
    }
    genome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plan execution, the plan-backed [`Network`] executor, and the
    /// preserved per-node reference are bit-identical on arbitrary
    /// evolved genomes — same f64 bit patterns, not just close values.
    #[test]
    fn plan_matches_reference_bit_for_bit(
        seed in any::<u64>(),
        num_inputs in 1usize..6,
        num_outputs in 1usize..5,
        mutations in 0usize..60,
        x in -10.0f64..10.0,
    ) {
        let genome = evolved_genome(num_inputs, num_outputs, seed, mutations);
        let plan = NetPlan::compile(&genome).expect("mutations preserve feed-forwardness");
        let mut net = Network::from_genome(&genome).expect("decodable");
        let mut reference = ReferenceNetwork::from_genome(&genome).expect("decodable");
        let inputs: Vec<f64> = (0..num_inputs)
            .map(|i| x * (i as f64 + 1.0) - 3.0)
            .collect();
        let want = reference.activate(&inputs);
        let via_plan = plan.execute(&inputs);
        let via_net = net.activate(&inputs);
        prop_assert_eq!(want.len(), num_outputs);
        for (w, (p, n)) in want.iter().zip(via_plan.iter().zip(&via_net)) {
            prop_assert_eq!(w.to_bits(), p.to_bits(), "plan drifted: {} vs {}", w, p);
            prop_assert_eq!(w.to_bits(), n.to_bits(), "network drifted: {} vs {}", w, n);
        }
    }

    /// Plan metrics agree with the reference decode: same node,
    /// connection, and IO counts for any evolved genome.
    #[test]
    fn plan_metrics_match_reference(
        seed in any::<u64>(),
        mutations in 0usize..60,
    ) {
        let genome = evolved_genome(4, 2, seed, mutations);
        let plan = NetPlan::compile(&genome).expect("decodable");
        let reference = ReferenceNetwork::from_genome(&genome).expect("decodable");
        prop_assert_eq!(plan.num_nodes(), reference.num_nodes());
        prop_assert_eq!(plan.num_connections(), reference.num_connections());
        prop_assert_eq!(plan.num_inputs(), reference.num_inputs());
        prop_assert_eq!(plan.num_outputs(), reference.num_outputs());
        // Level ranges tile the compute nodes exactly once, in order.
        let mut next = 0u32;
        for &(start, end) in plan.levels() {
            prop_assert_eq!(start, next, "levels are contiguous");
            prop_assert!(end > start, "levels are non-empty");
            next = end;
        }
        prop_assert_eq!(next as usize, plan.num_compute_nodes());
    }

    /// A cycle injected anywhere into an evolved genome makes plan
    /// compilation fail with [`DecodeError::Cycle`], exactly like the
    /// legacy decode — while the recurrent decoder (which permits
    /// cycles by design, see `recurrent.rs`) still accepts the genome.
    #[test]
    fn cyclic_genomes_fail_plan_compilation(
        seed in any::<u64>(),
        mutations in 0usize..40,
    ) {
        let mut genome = evolved_genome(3, 2, seed, mutations);
        let mut tracker = InnovationTracker::with_reserved_nodes(1_000_000);
        // Self-loop on the first output: the smallest possible cycle.
        genome
            .add_connection_unchecked(3, 3, 0.5, &mut tracker)
            .expect("self-loop is structurally storable");
        let plan_err = NetPlan::compile(&genome).expect_err("cycle must not compile");
        prop_assert!(matches!(plan_err, DecodeError::Cycle(_)), "got {plan_err:?}");
        let decode_err = genome.decode().expect_err("legacy decode must also reject");
        prop_assert_eq!(plan_err, decode_err, "plan and decode report the same error");
        prop_assert!(Network::from_genome(&genome).is_err());
        // The recurrent path is the documented escape hatch for cycles.
        let mut recurrent = RecurrentNetwork::from_genome(&genome);
        prop_assert_eq!(recurrent.activate(&[0.1, -0.2, 0.3]).len(), 2);
    }

    /// A longer cycle (through a split hidden node, the `recurrent.rs`
    /// test-case shape) is also rejected through the plan path. The
    /// reported node id is a node stuck behind the cycle, and the plan
    /// error is identical to the legacy decode's.
    #[test]
    fn hidden_node_cycles_are_rejected(
        weight in -2.0f64..2.0,
    ) {
        let mut tracker = InnovationTracker::with_reserved_nodes(2);
        let mut genome = Genome::bare(1, 1);
        let innovation = genome.add_connection(0, 1, 1.0, &mut tracker).unwrap();
        let hidden = genome
            .split_connection(innovation, e3_neat::Activation::Tanh, &mut tracker)
            .unwrap();
        genome
            .add_connection_unchecked(hidden, hidden, weight, &mut tracker)
            .unwrap();
        let decode_err = genome.decode().expect_err("legacy decode rejects the cycle");
        match NetPlan::compile(&genome) {
            Err(err @ DecodeError::Cycle(node)) => {
                // The output (id 1) and the self-looped hidden node are
                // both stuck; either is a valid witness, but the plan
                // must agree with the legacy decode exactly.
                prop_assert!(node == hidden || node == 1, "stuck node {node} not behind cycle");
                prop_assert_eq!(err, decode_err, "plan and decode report the same error");
            }
            other => prop_assert!(false, "expected Cycle, got {:?}", other),
        }
    }
}
