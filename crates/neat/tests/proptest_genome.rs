//! Property tests for genome invariants under arbitrary evolution.

use e3_neat::{Genome, InnovationTracker, NeatConfig, Population};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evolved_genome(
    num_inputs: usize,
    num_outputs: usize,
    seed: u64,
    mutations: usize,
) -> (Genome, NeatConfig) {
    let config = NeatConfig::builder(num_inputs, num_outputs)
        .initial_connection_density(0.6)
        .build();
    let mut tracker = InnovationTracker::with_reserved_nodes(num_inputs + num_outputs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = Genome::initial(&config, &mut tracker, &mut rng);
    for _ in 0..mutations {
        genome.mutate(&config, &mut tracker, &mut rng);
    }
    (genome, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any mutation history leaves the genome decodable (acyclic) with
    /// sorted unique nodes/innovations and at least one enabled
    /// connection.
    #[test]
    fn mutated_genomes_stay_well_formed(
        seed in any::<u64>(),
        num_inputs in 1usize..6,
        num_outputs in 1usize..5,
        mutations in 0usize..60,
    ) {
        let (genome, _) = evolved_genome(num_inputs, num_outputs, seed, mutations);
        let net = genome.decode().expect("mutations must preserve feed-forwardness");
        prop_assert_eq!(net.num_inputs(), num_inputs);
        prop_assert_eq!(net.num_outputs(), num_outputs);
        for pair in genome.nodes().windows(2) {
            prop_assert!(pair[0].id < pair[1].id, "node ids sorted and unique");
        }
        for pair in genome.connections().windows(2) {
            prop_assert!(pair[0].innovation < pair[1].innovation, "innovations sorted/unique");
        }
        prop_assert!(genome.num_enabled_connections() >= 1);
        // Connection endpoints exist and pairs are unique.
        for c in genome.connections() {
            prop_assert!(genome.node(c.from).is_some());
            prop_assert!(genome.node(c.to).is_some());
        }
    }

    /// Decoded networks evaluate every node in topological order:
    /// activation outputs are finite for finite inputs.
    #[test]
    fn activation_is_finite(
        seed in any::<u64>(),
        mutations in 0usize..40,
        inputs in proptest::collection::vec(-10.0f64..10.0, 3),
    ) {
        let (genome, _) = evolved_genome(3, 2, seed, mutations);
        let mut net = genome.decode().expect("decodable");
        let out = net.activate(&inputs);
        prop_assert_eq!(out.len(), 2);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    /// Crossover children only carry innovations present in a parent,
    /// and remain decodable (for both fitter-parent and equal-fitness
    /// inheritance).
    #[test]
    fn crossover_children_are_parental_and_valid(
        seed in any::<u64>(),
        mutations in 1usize..40,
        equal in any::<bool>(),
    ) {
        let config = NeatConfig::builder(3, 2).initial_connection_density(0.6).build();
        let mut tracker = InnovationTracker::with_reserved_nodes(5);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = Genome::initial(&config, &mut tracker, &mut rng);
        let mut a = base.clone();
        let mut b = base;
        for _ in 0..mutations {
            a.mutate(&config, &mut tracker, &mut rng);
            b.mutate(&config, &mut tracker, &mut rng);
        }
        let child = a.crossover(&b, equal, &config, &mut rng);
        prop_assert!(child.decode().is_ok(), "child must stay feed-forward");
        for c in child.connections() {
            let in_a = a.connections().iter().any(|p| p.innovation == c.innovation);
            let in_b = b.connections().iter().any(|p| p.innovation == c.innovation);
            prop_assert!(in_a || in_b, "innovation {:?} not parental", c.innovation);
        }
    }

    /// Compatibility distance is a symmetric premetric: d(x,x) = 0,
    /// d(x,y) = d(y,x) ≥ 0.
    #[test]
    fn distance_is_symmetric_premetric(
        seed in any::<u64>(),
        mutations in 0usize..30,
    ) {
        let (a, config) = evolved_genome(3, 2, seed, mutations);
        let (b, _) = evolved_genome(3, 2, seed.wrapping_add(1), mutations);
        prop_assert_eq!(a.compatibility_distance(&a, &config), 0.0);
        let d_ab = a.compatibility_distance(&b, &config);
        let d_ba = b.compatibility_distance(&a, &config);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
    }

    /// The population size is exactly preserved by arbitrary
    /// fitness landscapes and the species partition always covers the
    /// population exactly once.
    #[test]
    fn population_invariants_hold(
        seed in any::<u64>(),
        pop_size in 5usize..40,
        fitness_scale in -10.0f64..10.0,
    ) {
        let config = NeatConfig::builder(2, 1).population_size(pop_size).build();
        let mut pop = Population::new(config, seed);
        for gen in 0..4u64 {
            pop.evaluate(|g| fitness_scale * (g.num_enabled_connections() as f64 + gen as f64));
            let members: usize = pop.species().iter().map(|s| s.len()).sum();
            prop_assert_eq!(members, pop_size, "species partition covers population");
            pop.evolve();
            prop_assert_eq!(pop.genomes().len(), pop_size);
        }
    }
}
