//! The software executor over a compiled [`NetPlan`] (the paper's
//! "CreateNet" output, software view).
//!
//! A [`Network`] is the phenotype of a [`Genome`](crate::Genome): a
//! flat CSR [`NetPlan`] plus a reusable scratch *value buffer*, so
//! repeated [`Network::activate`] calls allocate nothing but the
//! output vector ([`Network::activate_into`] not even that).
//! Decoding itself — topological sort, level
//! assignment, CSR packing — lives in [`NetPlan::compile`]; this type
//! only executes and reports structural metrics.
//!
//! Because evolved networks are irregular, a connection may span any
//! number of levels — which is why evaluation keeps **every**
//! intermediate activation live (the accelerator's *value buffer*)
//! instead of only the previous layer's. The value-buffer slot
//! convention is documented on [`crate::plan`].

use crate::error::DecodeError;
use crate::genome::Genome;
use crate::plan::NetPlan;
use serde::{Deserialize, Serialize};

/// An inference-ready irregular feed-forward network: a compiled
/// [`NetPlan`] plus its scratch value buffer.
///
/// # Example
///
/// ```
/// use e3_neat::{Genome, InnovationTracker};
///
/// let mut tracker = InnovationTracker::with_reserved_nodes(3);
/// let mut genome = Genome::bare(2, 1);
/// genome.add_connection(0, 2, 0.5, &mut tracker)?;
/// genome.add_connection(1, 2, -0.5, &mut tracker)?;
/// let mut net = genome.decode()?;
/// let out = net.activate(&[1.0, 1.0]);
/// assert_eq!(out.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    plan: NetPlan,
    /// Scratch activation values (the "value buffer").
    values: Vec<f64>,
    /// Scratch output vector for [`Network::activate_into`].
    #[serde(default)]
    outputs: Vec<f64>,
}

/// Two executors are equal when they execute the same [`NetPlan`];
/// scratch-buffer contents are transient and excluded.
impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.plan == other.plan
    }
}

impl Network {
    /// Decodes a genome: compiles it to a [`NetPlan`] and attaches a
    /// scratch value buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Cycle`] if the enabled connections are
    /// cyclic, or [`DecodeError::DanglingConnection`] if a connection
    /// references a missing node.
    pub fn from_genome(genome: &Genome) -> Result<Self, DecodeError> {
        Ok(Network::from_plan(NetPlan::compile(genome)?))
    }

    /// Wraps an already compiled plan in an executor (for callers that
    /// cache or share plans, e.g. `e3-exec`'s decode cache).
    pub fn from_plan(plan: NetPlan) -> Self {
        Network {
            values: vec![0.0; plan.value_buffer_slots()],
            outputs: Vec::with_capacity(plan.num_outputs()),
            plan,
        }
    }

    /// The compiled plan backing this executor.
    pub fn plan(&self) -> &NetPlan {
        &self.plan
    }

    /// Unwraps the executor back into its plan.
    pub fn into_plan(self) -> NetPlan {
        self.plan
    }

    /// Runs one forward pass and returns the output node values in
    /// genome id order. Reuses the internal value buffer — no per-call
    /// allocation beyond the returned vector.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count.
    pub fn activate(&mut self, inputs: &[f64]) -> Vec<f64> {
        self.plan.execute_into(inputs, &mut self.values)
    }

    /// Runs one forward pass with **zero allocation** and returns the
    /// output node values (genome id order) as a slice into an internal
    /// reusable buffer — bit-identical to [`Network::activate`]. This
    /// is the hot path for episode loops that call the network once per
    /// environment step.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count.
    pub fn activate_into(&mut self, inputs: &[f64]) -> &[f64] {
        self.plan
            .execute_into_buf(inputs, &mut self.values, &mut self.outputs);
        &self.outputs
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.plan.num_inputs()
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.plan.num_outputs()
    }

    /// Number of *compute* levels (levels excluding the input level).
    pub fn num_compute_levels(&self) -> usize {
        self.plan.num_compute_levels()
    }

    /// Total number of enabled connections (MACs per inference).
    pub fn num_connections(&self) -> usize {
        self.plan.num_connections()
    }

    /// Total number of nodes (including inputs).
    pub fn num_nodes(&self) -> usize {
        self.plan.num_nodes()
    }

    /// The paper's density metric: enabled connections divided by the
    /// connections of the *dense MLP counterpart* — a layered MLP with
    /// the same per-level widths and full adjacent-level connectivity.
    /// Irregular nets with long skip connections can exceed 1.0
    /// (Fig. 4(c)).
    pub fn density(&self) -> f64 {
        self.plan.density()
    }

    /// In-degree ("degree of node") for each non-input node, the
    /// statistic of Fig. 4(e). Variable in-degree is what makes PE
    /// execution time variable in INAX.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.plan.in_degrees()
    }

    /// Nodes per compute level, the statistic of Fig. 4(f) and the
    /// quantity that bounds useful PE parallelism.
    pub fn level_widths(&self) -> Vec<usize> {
        self.plan.level_widths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Genome, InnovationTracker};

    fn chain_genome() -> (Genome, InnovationTracker) {
        // 2 inputs -> hidden -> output, plus a skip connection 0 -> out.
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, 0.5, &mut tracker).unwrap();
        g.add_connection(1, 2, 0.25, &mut tracker).unwrap();
        let h = g
            .split_connection(innovation, Activation::Identity, &mut tracker)
            .unwrap();
        g.set_bias(h, 0.0).unwrap();
        (g, tracker)
    }

    #[test]
    fn decode_assigns_levels_by_longest_path() {
        let (g, _) = chain_genome();
        let net = g.decode().unwrap();
        // inputs at level 0, hidden at 1, output at 2 (longest path
        // through the hidden node wins over the direct skip).
        assert_eq!(net.plan().levels(), &[(0, 1), (1, 2)]);
        assert_eq!(net.level_widths(), vec![1, 1]);
        assert_eq!(net.num_compute_levels(), 2);
        assert_eq!(net.num_nodes(), 4);
    }

    #[test]
    fn activation_computes_irregular_skip_links() {
        let (g, _) = chain_genome();
        let mut net = g.decode().unwrap();
        // Hidden: identity(1.0 * in0 * 1.0) = in0 (split kept weight 1 on
        // the in-edge and 0.5 on the out-edge). Output (tanh):
        // tanh(0.5 * h + 0.25 * in1 + bias 0).
        let out = net.activate(&[0.8, 0.4]);
        let expect = (0.5 * 0.8 + 0.25 * 0.4f64).tanh();
        assert!((out[0] - expect).abs() < 1e-12, "{} vs {expect}", out[0]);
    }

    #[test]
    fn activate_panics_on_wrong_input_size() {
        let (g, _) = chain_genome();
        let mut net = g.decode().unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.activate(&[1.0]);
        }));
        assert!(err.is_err());
    }

    #[test]
    fn isolated_output_reads_bias_only() {
        let mut g = Genome::bare(2, 2);
        let mut tracker = InnovationTracker::with_reserved_nodes(4);
        g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        g.set_bias(3, 0.5).unwrap();
        let mut net = g.decode().unwrap();
        let out = net.activate(&[0.0, 0.0]);
        assert!((out[1] - 0.5f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn density_matches_fig4a_example() {
        // Fig. 4(a): 3 inputs, 3 hidden, 3 outputs, 9 connections,
        // density 9/18 = 0.5. Construct exactly that topology.
        let mut tracker = InnovationTracker::with_reserved_nodes(6);
        let mut g2 = Genome::bare(3, 3);
        let i1 = g2.add_connection(0, 3, 1.0, &mut tracker).unwrap();
        let i2 = g2.add_connection(1, 4, 1.0, &mut tracker).unwrap();
        let i3 = g2.add_connection(2, 5, 1.0, &mut tracker).unwrap();
        let h1 = g2
            .split_connection(i1, Activation::Tanh, &mut tracker)
            .unwrap();
        let h2 = g2
            .split_connection(i2, Activation::Tanh, &mut tracker)
            .unwrap();
        let h3 = g2
            .split_connection(i3, Activation::Tanh, &mut tracker)
            .unwrap();
        // Now 6 enabled conns; add 3 more hidden->output crossing edges.
        g2.add_connection(h1, 4, 1.0, &mut tracker).unwrap();
        g2.add_connection(h2, 5, 1.0, &mut tracker).unwrap();
        g2.add_connection(h3, 3, 1.0, &mut tracker).unwrap();
        let net = g2.decode().unwrap();
        assert_eq!(net.num_connections(), 9);
        assert_eq!(net.level_widths(), vec![3, 3]);
        assert!((net.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_degrees_exclude_inputs() {
        let (g, _) = chain_genome();
        let net = g.decode().unwrap();
        let mut degrees = net.in_degrees();
        degrees.sort_unstable();
        assert_eq!(degrees, vec![1, 2]); // hidden has 1, output has 2
    }

    #[test]
    fn dangling_connection_is_reported() {
        // Build a genome then serialize-hack: easiest is via serde.
        let (g, _) = chain_genome();
        let json = serde_json::to_string(&g).unwrap();
        let hacked = json.replace("\"to\":2", "\"to\":99");
        let bad: Genome = serde_json::from_str(&hacked).unwrap();
        assert!(matches!(
            bad.decode(),
            Err(DecodeError::DanglingConnection { .. })
        ));
    }

    #[test]
    fn activate_into_is_bit_identical_and_reuses_buffers() {
        let (g, _) = chain_genome();
        let mut net = g.decode().unwrap();
        let inputs = [[0.8, 0.4], [-1.2, 0.05], [3.0, -3.0]];
        for x in &inputs {
            let allocating = net.activate(x);
            let borrowed = net.activate_into(x).to_vec();
            assert_eq!(
                allocating.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                borrowed.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
            );
        }
    }

    #[test]
    fn scratch_state_does_not_affect_equality() {
        let (g, _) = chain_genome();
        let mut a = g.decode().unwrap();
        let b = g.decode().unwrap();
        a.activate(&[1.0, -1.0]);
        assert_eq!(a, b, "activation scratch must not break equality");
    }

    #[test]
    fn plan_round_trips_through_executor() {
        let (g, _) = chain_genome();
        let plan = NetPlan::compile(&g).unwrap();
        let mut net = Network::from_plan(plan.clone());
        assert_eq!(net.plan(), &plan);
        let out = net.activate(&[0.3, -0.7]);
        assert_eq!(out, plan.execute(&[0.3, -0.7]));
        assert_eq!(net.into_plan(), plan);
    }
}
