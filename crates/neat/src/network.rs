//! Decoded, inference-ready networks (the paper's "CreateNet" output).
//!
//! A [`Network`] is the phenotype of a [`Genome`](crate::Genome): nodes
//! sorted topologically and grouped into *levels* (all nodes whose
//! inputs are produced by strictly earlier levels). Levels are exactly
//! what the INAX accelerator schedules: within a level nodes are
//! independent and can run on parallel PEs; between levels a
//! synchronization barrier is required.
//!
//! Because evolved networks are irregular, a connection may span any
//! number of levels — which is why the evaluation keeps **every**
//! intermediate activation live (the accelerator's *value buffer*)
//! instead of only the previous layer's.

use crate::error::DecodeError;
use crate::genome::{Genome, NodeId, NodeKind};
use crate::Activation;
use serde::{Deserialize, Serialize};

/// One decoded node: its parameters plus resolved incoming edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetNode {
    /// Genome node id this node was decoded from.
    pub id: NodeId,
    /// Role of the node.
    pub kind: NodeKind,
    /// Additive bias.
    pub bias: f64,
    /// Activation function.
    pub activation: Activation,
    /// Incoming edges as `(source_index, weight)` pairs, where
    /// `source_index` indexes [`Network::nodes`].
    pub incoming: Vec<(usize, f64)>,
    /// Topological level: 0 for inputs, `1 + max(level of sources)`
    /// otherwise (isolated non-input nodes get level 1).
    pub level: usize,
}

/// An inference-ready irregular feed-forward network.
///
/// # Example
///
/// ```
/// use e3_neat::{Genome, InnovationTracker};
///
/// let mut tracker = InnovationTracker::with_reserved_nodes(3);
/// let mut genome = Genome::bare(2, 1);
/// genome.add_connection(0, 2, 0.5, &mut tracker)?;
/// genome.add_connection(1, 2, -0.5, &mut tracker)?;
/// let mut net = genome.decode()?;
/// let out = net.activate(&[1.0, 1.0]);
/// assert_eq!(out.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    num_inputs: usize,
    num_outputs: usize,
    nodes: Vec<NetNode>,
    /// Node indices grouped by level; `levels[0]` is the inputs.
    levels: Vec<Vec<usize>>,
    /// Indices of the output nodes in genome id order.
    output_indices: Vec<usize>,
    /// Scratch activation values (the "value buffer").
    values: Vec<f64>,
}

impl Network {
    /// Decodes a genome: resolves node dependencies, topologically
    /// sorts, and assigns levels.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Cycle`] if the enabled connections are
    /// cyclic, or [`DecodeError::DanglingConnection`] if a connection
    /// references a missing node.
    pub fn from_genome(genome: &Genome) -> Result<Self, DecodeError> {
        let genome_nodes = genome.nodes();
        let index_of =
            |id: NodeId| -> Option<usize> { genome_nodes.binary_search_by_key(&id, |n| n.id).ok() };

        // Adjacency over genome node indices using enabled connections.
        let n = genome_nodes.len();
        let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut in_degree = vec![0usize; n];
        for c in genome.connections().iter().filter(|c| c.enabled) {
            let (from, to) = match (index_of(c.from), index_of(c.to)) {
                (Some(f), Some(t)) => (f, t),
                _ => {
                    return Err(DecodeError::DanglingConnection {
                        from: c.from,
                        to: c.to,
                    })
                }
            };
            incoming[to].push((from, c.weight));
            out_edges[from].push(to);
            in_degree[to] += 1;
        }

        // Kahn topological sort, inputs first, then by readiness. Level =
        // longest path from any source.
        let mut level = vec![0usize; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        // Deterministic order: process by genome node id.
        ready.sort_unstable();
        let mut remaining = in_degree.clone();
        let mut queue = std::collections::VecDeque::from(ready);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            // Non-input sources (isolated hidden/outputs) sit at level 1+.
            if genome_nodes[i].kind != NodeKind::Input && incoming[i].is_empty() {
                level[i] = level[i].max(1);
            }
            for &succ in &out_edges[i] {
                level[succ] = level[succ].max(level[i] + 1);
                remaining[succ] -= 1;
                if remaining[succ] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| remaining[i] > 0).unwrap_or(0);
            return Err(DecodeError::Cycle(genome_nodes[stuck].id));
        }

        // Emit nodes sorted by (level, genome id) so indices increase
        // monotonically with level — evaluation is then a single sweep.
        let mut by_level: Vec<usize> = (0..n).collect();
        by_level.sort_by_key(|&i| (level[i], genome_nodes[i].id));
        let mut new_index = vec![0usize; n];
        for (new_i, &old_i) in by_level.iter().enumerate() {
            new_index[old_i] = new_i;
        }
        let mut nodes: Vec<NetNode> = Vec::with_capacity(n);
        for &old_i in &by_level {
            let g = genome_nodes[old_i];
            let mut inc: Vec<(usize, f64)> = incoming[old_i]
                .iter()
                .map(|&(src, w)| (new_index[src], w))
                .collect();
            inc.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            nodes.push(NetNode {
                id: g.id,
                kind: g.kind,
                bias: g.bias,
                activation: g.activation,
                incoming: inc,
                level: level[old_i],
            });
        }
        let max_level = nodes.last().map_or(0, |node| node.level);
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
        for (i, node) in nodes.iter().enumerate() {
            levels[node.level].push(i);
        }
        let mut output_indices: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| node.kind == NodeKind::Output)
            .map(|(i, _)| i)
            .collect();
        output_indices.sort_by_key(|&i| nodes[i].id);

        Ok(Network {
            num_inputs: genome.num_inputs(),
            num_outputs: genome.num_outputs(),
            values: vec![0.0; nodes.len()],
            nodes,
            levels,
            output_indices,
        })
    }

    /// Runs one forward pass and returns the output node values in
    /// genome id order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count.
    pub fn activate(&mut self, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "expected {} inputs, got {}",
            self.num_inputs,
            inputs.len()
        );
        for node_idx in 0..self.nodes.len() {
            let node = &self.nodes[node_idx];
            self.values[node_idx] = match node.kind {
                NodeKind::Input => inputs[node.id],
                _ => {
                    let mut sum = node.bias;
                    for &(src, weight) in &node.incoming {
                        debug_assert!(src < node_idx, "topological order violated");
                        sum += self.values[src] * weight;
                    }
                    node.activation.apply(sum)
                }
            };
        }
        self.output_indices
            .iter()
            .map(|&i| self.values[i])
            .collect()
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// All decoded nodes in topological (level-major) order.
    pub fn nodes(&self) -> &[NetNode] {
        &self.nodes
    }

    /// Node indices grouped by level. `levels()[0]` contains the input
    /// nodes; each subsequent level only depends on earlier levels.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Number of *compute* levels (levels excluding the input level).
    pub fn num_compute_levels(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Total number of enabled connections (MACs per inference).
    pub fn num_connections(&self) -> usize {
        self.nodes.iter().map(|n| n.incoming.len()).sum()
    }

    /// Total number of nodes (including inputs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The paper's density metric: enabled connections divided by the
    /// connections of the *dense MLP counterpart* — a layered MLP with
    /// the same per-level widths and full adjacent-level connectivity.
    /// Irregular nets with long skip connections can exceed 1.0
    /// (Fig. 4(c)).
    pub fn density(&self) -> f64 {
        let widths: Vec<usize> = self.levels.iter().map(|l| l.len()).collect();
        let dense: usize = widths.windows(2).map(|w| w[0] * w[1]).sum();
        if dense == 0 {
            return 0.0;
        }
        self.num_connections() as f64 / dense as f64
    }

    /// In-degree ("degree of node") for each non-input node, the
    /// statistic of Fig. 4(e). Variable in-degree is what makes PE
    /// execution time variable in INAX.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.kind != NodeKind::Input)
            .map(|n| n.incoming.len())
            .collect()
    }

    /// Nodes per compute level, the statistic of Fig. 4(f) and the
    /// quantity that bounds useful PE parallelism.
    pub fn level_widths(&self) -> Vec<usize> {
        self.levels.iter().skip(1).map(|l| l.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Genome, InnovationTracker};

    fn chain_genome() -> (Genome, InnovationTracker) {
        // 2 inputs -> hidden -> output, plus a skip connection 0 -> out.
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, 0.5, &mut tracker).unwrap();
        g.add_connection(1, 2, 0.25, &mut tracker).unwrap();
        let h = g
            .split_connection(innovation, Activation::Identity, &mut tracker)
            .unwrap();
        g.set_bias(h, 0.0).unwrap();
        (g, tracker)
    }

    #[test]
    fn decode_assigns_levels_by_longest_path() {
        let (g, _) = chain_genome();
        let net = g.decode().unwrap();
        // inputs at level 0, hidden at 1, output at 2 (longest path
        // through the hidden node wins over the direct skip).
        assert_eq!(net.levels().len(), 3);
        assert_eq!(net.levels()[0].len(), 2);
        assert_eq!(net.level_widths(), vec![1, 1]);
        assert_eq!(net.num_compute_levels(), 2);
    }

    #[test]
    fn activation_computes_irregular_skip_links() {
        let (g, _) = chain_genome();
        let mut net = g.decode().unwrap();
        // Hidden: identity(1.0 * in0 * 1.0) = in0 (split kept weight 1 on
        // the in-edge and 0.5 on the out-edge). Output (tanh):
        // tanh(0.5 * h + 0.25 * in1 + bias 0).
        let out = net.activate(&[0.8, 0.4]);
        let expect = (0.5 * 0.8 + 0.25 * 0.4f64).tanh();
        assert!((out[0] - expect).abs() < 1e-12, "{} vs {expect}", out[0]);
    }

    #[test]
    fn activate_panics_on_wrong_input_size() {
        let (g, _) = chain_genome();
        let mut net = g.decode().unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.activate(&[1.0]);
        }));
        assert!(err.is_err());
    }

    #[test]
    fn isolated_output_reads_bias_only() {
        let mut g = Genome::bare(2, 2);
        let mut tracker = InnovationTracker::with_reserved_nodes(4);
        g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        g.set_bias(3, 0.5).unwrap();
        let mut net = g.decode().unwrap();
        let out = net.activate(&[0.0, 0.0]);
        assert!((out[1] - 0.5f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn density_matches_fig4a_example() {
        // Fig. 4(a): 3 inputs, 3 hidden, 3 outputs, 9 connections,
        // density 9/18 = 0.5. Construct exactly that topology.
        let g = Genome::bare(3, 3);
        let mut tracker = InnovationTracker::with_reserved_nodes(6);
        let h: Vec<usize> = (0..3).map(|_| tracker.fresh_node_id()).collect();
        // Wire 3 hidden via splits is cumbersome; instead: add hidden by
        // splitting three distinct input->output edges.
        let mut g2 = Genome::bare(3, 3);
        let i1 = g2.add_connection(0, 3, 1.0, &mut tracker).unwrap();
        let i2 = g2.add_connection(1, 4, 1.0, &mut tracker).unwrap();
        let i3 = g2.add_connection(2, 5, 1.0, &mut tracker).unwrap();
        let h1 = g2
            .split_connection(i1, Activation::Tanh, &mut tracker)
            .unwrap();
        let h2 = g2
            .split_connection(i2, Activation::Tanh, &mut tracker)
            .unwrap();
        let h3 = g2
            .split_connection(i3, Activation::Tanh, &mut tracker)
            .unwrap();
        // Now 6 enabled conns; add 3 more hidden->output crossing edges.
        g2.add_connection(h1, 4, 1.0, &mut tracker).unwrap();
        g2.add_connection(h2, 5, 1.0, &mut tracker).unwrap();
        g2.add_connection(h3, 3, 1.0, &mut tracker).unwrap();
        let net = g2.decode().unwrap();
        assert_eq!(net.num_connections(), 9);
        assert_eq!(net.level_widths(), vec![3, 3]);
        assert!((net.density() - 0.5).abs() < 1e-12);
        let _ = (g, h);
    }

    #[test]
    fn in_degrees_exclude_inputs() {
        let (g, _) = chain_genome();
        let net = g.decode().unwrap();
        let mut degrees = net.in_degrees();
        degrees.sort_unstable();
        assert_eq!(degrees, vec![1, 2]); // hidden has 1, output has 2
    }

    #[test]
    fn dangling_connection_is_reported() {
        // Build a genome then serialize-hack: easiest is via serde.
        let (g, _) = chain_genome();
        let json = serde_json::to_string(&g).unwrap();
        let hacked = json.replace("\"to\":2", "\"to\":99");
        let bad: Genome = serde_json::from_str(&hacked).unwrap();
        assert!(matches!(
            bad.decode(),
            Err(DecodeError::DanglingConnection { .. })
        ));
    }
}
