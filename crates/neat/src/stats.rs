//! Network-complexity statistics (Table V, Fig. 4 of the paper).
//!
//! These helpers aggregate the structural statistics the paper uses to
//! motivate INAX: node in-degree distributions (Fig. 4(e)), nodes per
//! layer (Fig. 4(f)), and population density across generations
//! (Fig. 4(g)), plus average node/connection counts (Table V).

use crate::genome::Genome;
use serde::{Deserialize, Serialize};

/// A simple integer histogram with mean/max accessors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
        self.sum += value as u64;
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest observed value, if any.
    pub fn max(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// `(value, count)` pairs for non-zero buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Fraction of observations at `value` (0 when empty).
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }
}

/// Rolling structural statistics over the generations of a NEAT run.
///
/// Feed every generation's population through
/// [`ComplexityStats::record_generation`]; read the aggregates after the
/// run.
///
/// # Example
///
/// ```
/// use e3_neat::{NeatConfig, Population};
/// use e3_neat::stats::ComplexityStats;
///
/// let mut pop = Population::new(NeatConfig::builder(2, 1).population_size(10).build(), 1);
/// let mut stats = ComplexityStats::new();
/// for _ in 0..3 {
///     stats.record_generation(pop.genomes());
///     pop.evaluate(|g| g.num_enabled_connections() as f64);
///     pop.evolve();
/// }
/// assert!(stats.avg_nodes() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ComplexityStats {
    degree_histogram: Histogram,
    layer_width_histogram: Histogram,
    density_trace: Vec<f64>,
    node_counts: Vec<f64>,
    connection_counts: Vec<f64>,
}

impl ComplexityStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one generation's population.
    pub fn record_generation(&mut self, genomes: &[Genome]) {
        let mut density_sum = 0.0;
        let mut density_n = 0usize;
        let mut nodes_sum = 0.0;
        let mut conns_sum = 0.0;
        for genome in genomes {
            let Ok(net) = genome.decode() else { continue };
            for d in net.in_degrees() {
                self.degree_histogram.record(d);
            }
            for w in net.level_widths() {
                self.layer_width_histogram.record(w);
            }
            density_sum += net.density();
            density_n += 1;
            // Table V counts hidden + output nodes ("nodes" the HW must
            // compute) plus inputs; we count all nodes like the paper's
            // MLP node counts do.
            nodes_sum += net.num_nodes() as f64;
            conns_sum += net.num_connections() as f64;
        }
        if density_n > 0 {
            self.density_trace.push(density_sum / density_n as f64);
            self.node_counts.push(nodes_sum / density_n as f64);
            self.connection_counts.push(conns_sum / density_n as f64);
        }
    }

    /// In-degree histogram across all recorded networks (Fig. 4(e)).
    pub fn degree_histogram(&self) -> &Histogram {
        &self.degree_histogram
    }

    /// Nodes-per-layer histogram across all recorded networks
    /// (Fig. 4(f)).
    pub fn layer_width_histogram(&self) -> &Histogram {
        &self.layer_width_histogram
    }

    /// Mean population density per generation (Fig. 4(g)).
    pub fn density_trace(&self) -> &[f64] {
        &self.density_trace
    }

    /// Average node count over all recorded generations (Table V
    /// "Ave. nodes").
    pub fn avg_nodes(&self) -> f64 {
        mean(&self.node_counts)
    }

    /// Average enabled-connection count over all recorded generations
    /// (Table V "Ave. connections").
    pub fn avg_connections(&self) -> f64 {
        mean(&self.connection_counts)
    }

    /// Number of generations recorded.
    pub fn generations(&self) -> usize {
        self.density_trace.len()
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NeatConfig, Population};

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = Histogram::new();
        for v in [1, 1, 2, 5] {
            h.record(v);
        }
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max(), Some(5));
        assert!((h.mean() - 2.25).abs() < 1e-12);
        assert!((h.fraction(1) - 0.5).abs() < 1e-12);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(1, 2), (2, 1), (5, 1)]);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        assert_eq!(h.fraction(3), 0.0);
    }

    #[test]
    fn complexity_stats_accumulate_over_generations() {
        let config = NeatConfig::builder(3, 2).population_size(15).build();
        let mut pop = Population::new(config, 2);
        let mut stats = ComplexityStats::new();
        for _ in 0..4 {
            stats.record_generation(pop.genomes());
            pop.evaluate(|g| g.num_hidden() as f64);
            pop.evolve();
        }
        assert_eq!(stats.generations(), 4);
        assert_eq!(stats.density_trace().len(), 4);
        assert!(stats.avg_nodes() >= 5.0, "at least the 5 fixed IO nodes");
        assert!(stats.avg_connections() > 0.0);
        assert!(stats.degree_histogram().total() > 0);
    }
}
