//! Species lineage tracking.
//!
//! Speciation is NEAT's mechanism for protecting innovation (paper
//! Table III: young individuals "only compete within group"). This
//! module records how species rise, shrink and die across a run — the
//! view used to debug premature convergence (one species swallowing
//! the population) or excessive fragmentation (threshold too tight).

use crate::population::Population;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One generation's record for one species.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeciesRecord {
    /// Generation index.
    pub generation: usize,
    /// Member count.
    pub size: usize,
    /// Best raw fitness among members this generation (if evaluated).
    pub best_fitness: Option<f64>,
}

/// Lineage of all species across a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpeciesHistory {
    /// Per-species records, keyed by species id, in generation order.
    records: BTreeMap<usize, Vec<SpeciesRecord>>,
    generations: usize,
}

impl SpeciesHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current (evaluated) generation of a population.
    pub fn record(&mut self, population: &Population) {
        let generation = population.generation();
        let fitnesses = population.fitnesses();
        for species in population.species() {
            let best = species
                .members
                .iter()
                .filter_map(|&i| fitnesses.get(i).copied().flatten())
                .fold(None, |acc: Option<f64>, f| {
                    Some(acc.map_or(f, |a| a.max(f)))
                });
            self.records
                .entry(species.id)
                .or_default()
                .push(SpeciesRecord {
                    generation,
                    size: species.len(),
                    best_fitness: best,
                });
        }
        self.generations = self.generations.max(generation + 1);
    }

    /// Number of distinct species ever observed.
    pub fn species_count(&self) -> usize {
        self.records.len()
    }

    /// Number of generations recorded.
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Records of one species, if it ever appeared.
    pub fn species(&self, id: usize) -> Option<&[SpeciesRecord]> {
        self.records.get(&id).map(Vec::as_slice)
    }

    /// Lifespan (generations alive) per species id.
    pub fn lifespans(&self) -> BTreeMap<usize, usize> {
        self.records
            .iter()
            .map(|(&id, recs)| (id, recs.len()))
            .collect()
    }

    /// Species alive in the last recorded generation.
    pub fn surviving_species(&self) -> Vec<usize> {
        let last = self.generations.saturating_sub(1);
        self.records
            .iter()
            .filter(|(_, recs)| recs.last().is_some_and(|r| r.generation == last))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Renders a compact turnover table: per species, birth generation,
    /// death generation (or `..` if alive), peak size.
    pub fn render(&self) -> String {
        let mut out = String::from("species  born  died  peak_size  best_fitness\n");
        for (id, recs) in &self.records {
            let born = recs.first().map_or(0, |r| r.generation);
            let died = recs.last().map_or(0, |r| r.generation);
            let alive = died + 1 == self.generations;
            let peak = recs.iter().map(|r| r.size).max().unwrap_or(0);
            let best = recs
                .iter()
                .filter_map(|r| r.best_fitness)
                .fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!(
                "{id:>7}  {born:>4}  {:>4}  {peak:>9}  {:>12.2}\n",
                if alive {
                    "..".to_string()
                } else {
                    died.to_string()
                },
                if best.is_finite() { best } else { f64::NAN }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeatConfig;

    fn run_history(generations: usize) -> SpeciesHistory {
        let config = NeatConfig::builder(3, 2).population_size(30).build();
        let mut pop = Population::new(config, 9);
        let mut history = SpeciesHistory::new();
        for _ in 0..generations {
            pop.evaluate(|g| g.num_enabled_connections() as f64);
            history.record(&pop);
            pop.evolve();
        }
        history
    }

    #[test]
    fn history_covers_every_generation() {
        let history = run_history(8);
        assert_eq!(history.generations(), 8);
        assert!(history.species_count() >= 1);
        // Every generation's species sizes sum to the population.
        let mut per_generation: BTreeMap<usize, usize> = BTreeMap::new();
        for id in 0..history.species_count() * 4 {
            if let Some(recs) = history.species(id) {
                for r in recs {
                    *per_generation.entry(r.generation).or_default() += r.size;
                }
            }
        }
        for (generation, total) in per_generation {
            assert_eq!(total, 30, "generation {generation} species partition");
        }
    }

    #[test]
    fn survivors_are_alive_in_the_final_generation() {
        let history = run_history(10);
        let survivors = history.surviving_species();
        assert!(!survivors.is_empty(), "something survives");
        for id in survivors {
            let recs = history.species(id).unwrap();
            assert_eq!(recs.last().unwrap().generation, 9);
        }
    }

    #[test]
    fn lifespans_match_record_lengths() {
        let history = run_history(6);
        for (id, lifespan) in history.lifespans() {
            assert_eq!(history.species(id).unwrap().len(), lifespan);
            assert!(lifespan <= 6);
        }
    }

    #[test]
    fn render_lists_every_species_once() {
        let history = run_history(5);
        let table = history.render();
        assert_eq!(table.lines().count(), 1 + history.species_count());
        assert!(table.starts_with("species"));
    }

    #[test]
    fn best_fitness_is_recorded() {
        let history = run_history(3);
        let any_best = history
            .species(
                *history
                    .lifespans()
                    .keys()
                    .next()
                    .expect("at least one species"),
            )
            .unwrap()
            .iter()
            .any(|r| r.best_fitness.is_some());
        assert!(any_best, "evaluated generations carry fitness");
    }
}
