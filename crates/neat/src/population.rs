//! The evolutionary loop: evaluate → speciate → reproduce.
//!
//! [`Population`] owns the generation of genomes and implements the
//! paper's "evolve" phase (Fig. 1(a)): selection of elites, mutation,
//! crossover, and speciation. The "evaluate" phase is delegated to a
//! caller-supplied fitness function — in E3 this is where the INAX
//! accelerator (or any other backend) plugs in.

use crate::config::NeatConfig;
use crate::genome::Genome;
use crate::innovation::InnovationTracker;
use crate::species::Species;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A genome together with the fitness it achieved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedGenome {
    /// The genome.
    pub genome: Genome,
    /// Raw fitness returned by the evaluation function.
    pub fitness: f64,
}

/// A NEAT population: the full state of an evolutionary run.
///
/// # Example
///
/// ```
/// use e3_neat::{NeatConfig, Population};
///
/// let mut pop = Population::new(NeatConfig::builder(2, 1).population_size(20).build(), 1);
/// pop.evaluate(|genome| genome.num_enabled_connections() as f64);
/// pop.evolve();
/// assert_eq!(pop.generation(), 1);
/// assert_eq!(pop.genomes().len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    config: NeatConfig,
    tracker: InnovationTracker,
    rng: StdRng,
    genomes: Vec<Genome>,
    fitnesses: Vec<Option<f64>>,
    species: Vec<Species>,
    generation: usize,
    next_species_id: usize,
    best_ever: Option<EvaluatedGenome>,
}

impl Population {
    /// Creates a generation-0 population from the configuration with a
    /// deterministic seed.
    pub fn new(config: NeatConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tracker =
            InnovationTracker::with_reserved_nodes(config.num_inputs + config.num_outputs);
        let genomes: Vec<Genome> = (0..config.population_size)
            .map(|_| Genome::initial(&config, &mut tracker, &mut rng))
            .collect();
        let fitnesses = vec![None; genomes.len()];
        Population {
            config,
            tracker,
            rng,
            genomes,
            fitnesses,
            species: Vec::new(),
            generation: 0,
            next_species_id: 0,
            best_ever: None,
        }
    }

    /// The configuration this population runs with.
    pub fn config(&self) -> &NeatConfig {
        &self.config
    }

    /// Current generation number (0 for the initial population).
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// The genomes of the current generation.
    pub fn genomes(&self) -> &[Genome] {
        &self.genomes
    }

    /// The current species partition (valid after an evaluation).
    pub fn species(&self) -> &[Species] {
        &self.species
    }

    /// The best genome seen across all generations, if any evaluation
    /// has happened yet.
    pub fn best(&self) -> Option<&EvaluatedGenome> {
        self.best_ever.as_ref()
    }

    /// Fitness values of the current generation (None before
    /// evaluation).
    pub fn fitnesses(&self) -> &[Option<f64>] {
        &self.fitnesses
    }

    /// Evaluates every genome with the supplied fitness function
    /// (sequentially) and speciates the population.
    pub fn evaluate<F: FnMut(&Genome) -> f64>(&mut self, mut fitness: F) {
        let values: Vec<f64> = self.genomes.iter().map(&mut fitness).collect();
        self.assign_fitnesses(values);
    }

    /// Evaluates the whole generation at once — the entry point used by
    /// accelerator backends, which batch the entire population onto the
    /// hardware (one individual per PU).
    ///
    /// # Panics
    ///
    /// Panics if the returned vector's length differs from the
    /// population size.
    pub fn evaluate_batch<F: FnOnce(&[Genome]) -> Vec<f64>>(&mut self, fitness: F) {
        let values = fitness(&self.genomes);
        self.assign_fitnesses(values);
    }

    /// Installs externally computed fitness values and speciates.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.genomes().len()` or any value is
    /// NaN.
    pub fn assign_fitnesses(&mut self, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.genomes.len(),
            "one fitness per genome required"
        );
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "fitness must not be NaN"
        );
        for (slot, v) in self.fitnesses.iter_mut().zip(&values) {
            *slot = Some(*v);
        }
        let best_idx = (0..values.len())
            .max_by(|&a, &b| values[a].total_cmp(&values[b]))
            .expect("population is non-empty");
        let beats_best = self
            .best_ever
            .as_ref()
            .is_none_or(|b| values[best_idx] > b.fitness);
        if beats_best {
            self.best_ever = Some(EvaluatedGenome {
                genome: self.genomes[best_idx].clone(),
                fitness: values[best_idx],
            });
        }
        self.speciate();
    }

    /// Produces the next generation. Requires a prior evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the current generation has not been evaluated.
    pub fn evolve(&mut self) {
        assert!(
            self.fitnesses.iter().all(|f| f.is_some()),
            "evolve() requires every genome to be evaluated first"
        );
        self.tracker.begin_generation();

        // Fitness shift so selection works with negative rewards.
        let raw: Vec<f64> = self
            .fitnesses
            .iter()
            .map(|f| f.expect("checked above"))
            .collect();
        let min = raw.iter().cloned().fold(f64::INFINITY, f64::min);
        let shift = if min < 0.0 { -min } else { 0.0 };

        // Update stagnation and drop stagnant species (keeping at least
        // one so the population never dies out).
        for s in &mut self.species {
            let best = s
                .members
                .iter()
                .map(|&i| raw[i])
                .fold(f64::NEG_INFINITY, f64::max);
            s.record_fitness(best);
        }
        self.species.sort_by(|a, b| {
            b.best_fitness
                .unwrap_or(f64::NEG_INFINITY)
                .total_cmp(&a.best_fitness.unwrap_or(f64::NEG_INFINITY))
        });
        let limit = self.config.stagnation_limit;
        let mut kept: Vec<Species> = Vec::new();
        for (rank, s) in self.species.drain(..).enumerate() {
            if rank == 0 || s.stagnation <= limit {
                kept.push(s);
            }
        }
        self.species = kept;

        // Adjusted (shared) fitness per species.
        let mut total_adjusted = 0.0;
        for s in &mut self.species {
            let size = s.members.len().max(1) as f64;
            s.adjusted_fitness_sum = s
                .members
                .iter()
                .map(|&i| (raw[i] + shift) / size)
                .sum::<f64>();
            total_adjusted += s.adjusted_fitness_sum;
        }

        // Apportion offspring proportionally (largest-remainder style:
        // floor then hand out leftovers to the best species).
        let pop_size = self.config.population_size;
        let mut offspring: Vec<usize> = self
            .species
            .iter()
            .map(|s| {
                if total_adjusted > 0.0 {
                    ((s.adjusted_fitness_sum / total_adjusted) * pop_size as f64).floor() as usize
                } else {
                    pop_size / self.species.len().max(1)
                }
            })
            .collect();
        let mut assigned: usize = offspring.iter().sum();
        let mut i = 0;
        while assigned < pop_size {
            let slot = i % offspring.len();
            offspring[slot] += 1;
            assigned += 1;
            i += 1;
        }
        while assigned > pop_size {
            let max_i = (0..offspring.len())
                .max_by_key(|&k| offspring[k])
                .expect("non-empty species list");
            if offspring[max_i] == 0 {
                break;
            }
            offspring[max_i] -= 1;
            assigned -= 1;
        }

        // Reproduce.
        let mut next: Vec<Genome> = Vec::with_capacity(pop_size);
        for (sp_idx, count) in offspring.iter().copied().enumerate() {
            if count == 0 {
                continue;
            }
            let s = &self.species[sp_idx];
            // Members sorted by descending fitness.
            let mut ranked: Vec<usize> = s.members.clone();
            ranked.sort_by(|&a, &b| raw[b].total_cmp(&raw[a]));
            if ranked.is_empty() {
                continue;
            }
            let mut produced = 0;
            // Elites.
            if ranked.len() >= self.config.min_species_size {
                for &idx in ranked.iter().take(self.config.elitism.min(count)) {
                    next.push(self.genomes[idx].clone());
                    produced += 1;
                }
            }
            // Breeding pool: top survival_threshold fraction.
            let pool_len =
                ((ranked.len() as f64 * self.config.survival_threshold).ceil() as usize).max(1);
            let pool = &ranked[..pool_len.min(ranked.len())];
            while produced < count {
                let a = pool[self.rng.gen_range(0..pool.len())];
                let mut child = if pool.len() > 1 && self.rng.gen_bool(self.config.crossover_rate) {
                    let mut b = pool[self.rng.gen_range(0..pool.len())];
                    if b == a {
                        b = pool[(pool.iter().position(|&x| x == a).expect("a in pool") + 1)
                            % pool.len()];
                    }
                    let (fit, weak, equal) = if raw[a] > raw[b] {
                        (a, b, false)
                    } else if raw[b] > raw[a] {
                        (b, a, false)
                    } else {
                        (a, b, true)
                    };
                    self.genomes[fit].crossover(
                        &self.genomes[weak],
                        equal,
                        &self.config,
                        &mut self.rng,
                    )
                } else {
                    self.genomes[a].clone()
                };
                child.mutate(&self.config, &mut self.tracker, &mut self.rng);
                next.push(child);
                produced += 1;
            }
        }
        // Top up (e.g. if all species were empty) with fresh genomes.
        while next.len() < pop_size {
            next.push(Genome::initial(
                &self.config,
                &mut self.tracker,
                &mut self.rng,
            ));
        }
        next.truncate(pop_size);

        // New representatives: a random current member of each species.
        for s in &mut self.species {
            if let Some(&rep) = s.members.first() {
                s.representative = self.genomes[rep].clone();
            }
            s.members.clear();
        }
        self.genomes = next;
        self.fitnesses = vec![None; self.genomes.len()];
        self.generation += 1;
    }

    /// The current generation's `count` fittest evaluated genomes —
    /// what a migration policy ships to neighboring islands.
    ///
    /// Deterministic: ranked by fitness descending with the genome
    /// index as tie-break, so identical populations always emit
    /// identical emigrant lists regardless of how they were evaluated.
    /// The emigrants are clones; the population is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the current generation has not been evaluated.
    pub fn emigrants(&self, count: usize) -> Vec<EvaluatedGenome> {
        assert!(
            self.fitnesses.iter().all(|f| f.is_some()),
            "emigrants() requires every genome to be evaluated first"
        );
        let fitness = |i: usize| self.fitnesses[i].expect("checked above");
        let mut ranked: Vec<usize> = (0..self.genomes.len()).collect();
        ranked.sort_by(|&a, &b| fitness(b).total_cmp(&fitness(a)).then(a.cmp(&b)));
        ranked.truncate(count.min(self.genomes.len()));
        ranked
            .into_iter()
            .map(|i| EvaluatedGenome {
                genome: self.genomes[i].clone(),
                fitness: fitness(i),
            })
            .collect()
    }

    /// Merges immigrant genomes from another island into this
    /// population, replacing its worst members.
    ///
    /// The merge is an index-ordered, RNG-free procedure so that a
    /// fixed immigrant list always produces a bit-identical result:
    ///
    /// 1. victims are the `immigrants.len()` worst genomes (fitness
    ///    ascending, index ascending on ties);
    /// 2. victim *k* is overwritten by immigrant *k*, keeping the
    ///    immigrant's already-known fitness (it was evaluated on its
    ///    home island under the same deterministic episode schedule);
    /// 3. the innovation tracker absorbs the immigrants' id ranges so
    ///    later mutations here cannot collide with markings minted on
    ///    the source island;
    /// 4. the population is re-speciated (speciation uses no
    ///    randomness) and `best()` is updated.
    ///
    /// The evolve-phase RNG stream is untouched, so evolution after a
    /// migration continues exactly as checkpoint/resume expects.
    ///
    /// # Panics
    ///
    /// Panics if the current generation has not been evaluated, if any
    /// immigrant fitness is NaN, or if more immigrants arrive than the
    /// population holds.
    pub fn integrate_immigrants(&mut self, immigrants: &[EvaluatedGenome]) {
        if immigrants.is_empty() {
            return;
        }
        assert!(
            self.fitnesses.iter().all(|f| f.is_some()),
            "integrate_immigrants() requires every genome to be evaluated first"
        );
        assert!(
            immigrants.iter().all(|im| !im.fitness.is_nan()),
            "immigrant fitness must not be NaN"
        );
        assert!(
            immigrants.len() <= self.genomes.len(),
            "more immigrants ({}) than population slots ({})",
            immigrants.len(),
            self.genomes.len()
        );
        let fitness = |slots: &[Option<f64>], i: usize| slots[i].expect("checked above");
        let mut victims: Vec<usize> = (0..self.genomes.len()).collect();
        victims.sort_by(|&a, &b| {
            fitness(&self.fitnesses, a)
                .total_cmp(&fitness(&self.fitnesses, b))
                .then(a.cmp(&b))
        });
        for (victim, immigrant) in victims.iter().zip(immigrants) {
            self.genomes[*victim] = immigrant.genome.clone();
            self.fitnesses[*victim] = Some(immigrant.fitness);
            let next_node = immigrant
                .genome
                .nodes()
                .iter()
                .map(|n| n.id + 1)
                .max()
                .unwrap_or(0);
            let next_innovation = immigrant
                .genome
                .connections()
                .iter()
                .map(|c| c.innovation.0 + 1)
                .max()
                .unwrap_or(0);
            self.tracker.absorb(next_innovation, next_node);
            let beats_best = self
                .best_ever
                .as_ref()
                .is_none_or(|b| immigrant.fitness > b.fitness);
            if beats_best {
                self.best_ever = Some(immigrant.clone());
            }
        }
        self.speciate();
    }

    /// Captures the population's full state — including the evolve-
    /// phase RNG stream — for
    /// [`crate::checkpoint::PopulationSnapshot`] serialization.
    pub(crate) fn snapshot(&self) -> crate::checkpoint::PopulationSnapshot {
        crate::checkpoint::PopulationSnapshot {
            config: self.config.clone(),
            genomes: self.genomes.clone(),
            fitnesses: self.fitnesses.clone(),
            species: self.species.clone(),
            generation: self.generation,
            next_species_id: self.next_species_id,
            best: self.best_ever.clone(),
            tracker: self.tracker.clone(),
            rng_state: Some(self.rng.state()),
        }
    }

    /// Rebuilds a population from a snapshot.
    ///
    /// When the snapshot carries the captured RNG state (every
    /// snapshot written since RNG capture landed), the restored
    /// population continues the exact random stream and evolution is
    /// bit-identical to an uninterrupted run; `seed` is ignored. For
    /// `v0` snapshots without RNG state, the RNG is reseeded from
    /// `seed` and the continuation is valid but not bit-identical.
    pub(crate) fn from_snapshot(
        snapshot: crate::checkpoint::PopulationSnapshot,
        seed: u64,
    ) -> Self {
        let rng = match snapshot.rng_state {
            Some(state) => StdRng::from_state(state),
            None => StdRng::seed_from_u64(seed),
        };
        Population {
            config: snapshot.config,
            tracker: snapshot.tracker,
            rng,
            genomes: snapshot.genomes,
            fitnesses: snapshot.fitnesses,
            species: snapshot.species,
            generation: snapshot.generation,
            next_species_id: snapshot.next_species_id,
            best_ever: snapshot.best,
        }
    }

    /// Assigns every genome to a species by compatibility distance,
    /// creating new species for unmatched genomes.
    fn speciate(&mut self) {
        for s in &mut self.species {
            s.members.clear();
        }
        for (idx, genome) in self.genomes.iter().enumerate() {
            let found = self.species.iter_mut().find(|s| {
                genome.compatibility_distance(&s.representative, &self.config)
                    < self.config.compatibility_threshold
            });
            match found {
                Some(s) => s.members.push(idx),
                None => {
                    let mut s = Species::new(self.next_species_id, genome.clone());
                    self.next_species_id += 1;
                    s.members.push(idx);
                    self.species.push(s);
                }
            }
        }
        self.species.retain(|s| !s.is_empty());
    }
}

#[cfg(test)]
impl Genome {
    fn num_nodes_for_test(&self) -> f64 {
        self.nodes().len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> NeatConfig {
        NeatConfig::builder(2, 1).population_size(30).build()
    }

    #[test]
    fn population_size_is_invariant_across_generations() {
        let mut pop = Population::new(small_config(), 5);
        for _ in 0..10 {
            pop.evaluate(|g| g.num_enabled_connections() as f64);
            pop.evolve();
            assert_eq!(pop.genomes().len(), 30);
        }
        assert_eq!(pop.generation(), 10);
    }

    #[test]
    fn best_tracks_maximum_across_generations() {
        let mut pop = Population::new(small_config(), 7);
        pop.evaluate(|_| 1.0);
        assert_eq!(pop.best().unwrap().fitness, 1.0);
        pop.evolve();
        pop.evaluate(|_| 0.5);
        assert_eq!(pop.best().unwrap().fitness, 1.0, "best is all-time");
        pop.evolve();
        pop.evaluate(|_| 2.0);
        assert_eq!(pop.best().unwrap().fitness, 2.0);
    }

    #[test]
    fn negative_fitness_is_handled() {
        let mut pop = Population::new(small_config(), 9);
        for _ in 0..5 {
            pop.evaluate(|g| -(g.num_enabled_connections() as f64));
            pop.evolve();
            assert_eq!(pop.genomes().len(), 30);
        }
    }

    #[test]
    #[should_panic(expected = "requires every genome to be evaluated")]
    fn evolve_requires_evaluation() {
        let mut pop = Population::new(small_config(), 1);
        pop.evolve();
    }

    #[test]
    #[should_panic(expected = "one fitness per genome")]
    fn batch_fitness_length_is_checked() {
        let mut pop = Population::new(small_config(), 1);
        pop.evaluate_batch(|_| vec![0.0; 3]);
    }

    #[test]
    fn speciation_separates_diverged_genomes() {
        let mut pop = Population::new(small_config(), 21);
        pop.evaluate(|_| 0.0);
        let initial_species = pop.species().len();
        assert!(initial_species >= 1);
        // After many structural generations, expect more than one
        // species (genomes diverge topologically).
        for _ in 0..20 {
            pop.evolve();
            pop.evaluate(|g| g.num_hidden() as f64);
        }
        assert!(!pop.species().is_empty());
        let total_members: usize = pop.species().iter().map(|s| s.len()).sum();
        assert_eq!(
            total_members, 30,
            "every genome belongs to exactly one species"
        );
    }

    #[test]
    fn evolution_is_deterministic_given_seed() {
        let run = |seed| {
            let mut pop = Population::new(small_config(), seed);
            for _ in 0..5 {
                pop.evaluate(|g| g.num_enabled_connections() as f64);
                pop.evolve();
            }
            pop.best().unwrap().fitness
        };
        assert_eq!(run(33), run(33));
    }

    #[test]
    fn emigrants_are_top_k_with_index_tie_break() {
        let mut pop = Population::new(small_config(), 17);
        // Distinct fitnesses: genome index doubles as fitness rank.
        let n = pop.genomes().len();
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        pop.assign_fitnesses(values);
        let top = pop.emigrants(3);
        let fits: Vec<f64> = top.iter().map(|e| e.fitness).collect();
        assert_eq!(fits, vec![(n - 1) as f64, (n - 2) as f64, (n - 3) as f64]);

        // All-equal fitness: ties break by ascending genome index.
        let mut flat = Population::new(small_config(), 17);
        flat.assign_fitnesses(vec![1.0; n]);
        let picked = flat.emigrants(2);
        assert_eq!(
            picked[0].genome.fingerprint(),
            flat.genomes()[0].fingerprint()
        );
        assert_eq!(
            picked[1].genome.fingerprint(),
            flat.genomes()[1].fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "requires every genome to be evaluated")]
    fn emigrants_require_evaluation() {
        let pop = Population::new(small_config(), 1);
        let _ = pop.emigrants(1);
    }

    #[test]
    fn integrate_immigrants_replaces_worst_and_updates_best() {
        let mut source = Population::new(small_config(), 3);
        source.evaluate(|g| g.num_enabled_connections() as f64);
        let mut immigrants = source.emigrants(2);
        immigrants[0].fitness = 1000.0; // clearly beats everything local

        let mut dest = Population::new(small_config(), 4);
        let n = dest.genomes().len();
        dest.assign_fitnesses((0..n).map(|i| i as f64).collect());
        let worst_before = dest.genomes()[0].fingerprint();
        dest.integrate_immigrants(&immigrants);
        // Victims are the worst slots: indices 0 and 1 held fitness 0 and 1.
        assert_ne!(dest.genomes()[0].fingerprint(), worst_before);
        assert_eq!(dest.fitnesses()[0], Some(1000.0));
        assert_eq!(dest.fitnesses()[1], Some(immigrants[1].fitness));
        assert_eq!(dest.best().unwrap().fitness, 1000.0);
        assert_eq!(dest.genomes().len(), n, "population size is preserved");
        // Still evaluated: evolve proceeds normally.
        dest.evolve();
        assert_eq!(dest.genomes().len(), n);
    }

    #[test]
    fn integrating_no_immigrants_is_a_no_op() {
        let mut pop = Population::new(small_config(), 8);
        pop.evaluate(|g| g.num_enabled_connections() as f64);
        let before: Vec<u64> = pop.genomes().iter().map(|g| g.fingerprint()).collect();
        pop.integrate_immigrants(&[]);
        let after: Vec<u64> = pop.genomes().iter().map(|g| g.fingerprint()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn migration_merge_is_deterministic_and_rng_neutral() {
        let mut source = Population::new(small_config(), 23);
        source.evaluate(|g| g.num_enabled_connections() as f64);
        let immigrants = source.emigrants(3);

        let run = |mut pop: Population| {
            pop.evaluate(|g| g.num_enabled_connections() as f64);
            pop.integrate_immigrants(&immigrants);
            pop.evolve();
            pop.evaluate(|g| g.num_hidden() as f64);
            pop.evolve();
            pop.genomes()
                .iter()
                .map(|g| g.fingerprint())
                .collect::<Vec<u64>>()
        };
        // Two clones, identical immigrant lists: bit-identical futures.
        let template = Population::new(small_config(), 29);
        assert_eq!(run(template.clone()), run(template));
    }

    #[test]
    fn batch_evaluation_matches_sequential() {
        let mut a = Population::new(small_config(), 13);
        let mut b = Population::new(small_config(), 13);
        a.evaluate(|g| g.num_nodes_for_test());
        b.evaluate_batch(|gs| gs.iter().map(|g| g.num_nodes_for_test()).collect());
        let fa: Vec<_> = a.fitnesses().to_vec();
        let fb: Vec<_> = b.fitnesses().to_vec();
        assert_eq!(fa, fb);
    }
}
