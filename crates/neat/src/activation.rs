//! Node activation functions.
//!
//! NEAT node genes carry an activation function that may itself mutate
//! during evolution. The set below mirrors the defaults of the
//! `neat-python` implementation profiled by the E3 paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An activation function applied by a node after aggregating its
/// weighted inputs and bias.
///
/// # Example
///
/// ```
/// use e3_neat::Activation;
///
/// assert_eq!(Activation::Identity.apply(0.25), 0.25);
/// assert!(Activation::Sigmoid.apply(0.0) - 0.5 < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Steepened logistic sigmoid `1 / (1 + e^(-4.9x))` as in the NEAT
    /// paper; output in `(0, 1)`.
    #[default]
    Sigmoid,
    /// Hyperbolic tangent; output in `(-1, 1)`.
    Tanh,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Identity pass-through.
    Identity,
    /// Gaussian bump `e^(-x²)` (range `(0, 1]`), useful for radial
    /// responses.
    Gauss,
    /// Sine response, useful for periodic tasks such as gait control.
    Sin,
    /// Absolute value.
    Abs,
    /// Identity clamped to `[-1, 1]`.
    Clamped,
}

impl Activation {
    /// All supported activation functions, in a stable order.
    pub const ALL: [Activation; 8] = [
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Relu,
        Activation::Identity,
        Activation::Gauss,
        Activation::Sin,
        Activation::Abs,
        Activation::Clamped,
    ];

    /// Applies the activation function to `x`.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-4.9 * x.clamp(-60.0, 60.0)).exp()),
            Activation::Tanh => x.clamp(-60.0, 60.0).tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
            Activation::Gauss => (-(x * x).min(60.0)).exp(),
            Activation::Sin => x.sin(),
            Activation::Abs => x.abs(),
            Activation::Clamped => x.clamp(-1.0, 1.0),
        }
    }

    /// Applies a fast approximation of the activation function.
    ///
    /// `Sigmoid` and `Tanh` — the two transcendental activations that
    /// dominate batched-inference time — are replaced by a rational
    /// (7,6)-Padé tanh approximant with a saturation cutoff; every
    /// other variant delegates to the exact [`Activation::apply`].
    /// The approximation error is below `1e-3` in absolute value over
    /// the full input range, outputs stay inside the exact function's
    /// range, and saturation behaviour at ±∞ is preserved.
    ///
    /// This is **not** part of the determinism contract: results
    /// differ from [`Activation::apply`] in the low bits. The batched
    /// executor only calls it when the `fast-math` cargo feature is
    /// enabled (off by default); everything else in the platform uses
    /// the exact path unconditionally.
    #[inline]
    pub fn apply_fast(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 0.5 * (1.0 + fast_tanh(2.45 * x.clamp(-60.0, 60.0))),
            Activation::Tanh => fast_tanh(x.clamp(-60.0, 60.0)),
            other => other.apply(x),
        }
    }

    /// Short lowercase name, matching `neat-python` conventions.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Relu => "relu",
            Activation::Identity => "identity",
            Activation::Gauss => "gauss",
            Activation::Sin => "sin",
            Activation::Abs => "abs",
            Activation::Clamped => "clamped",
        }
    }
}

/// Rational tanh: the (7,6)-Padé approximant of `tanh(x)` around 0,
/// clamped to `[-1, 1]`, with hard saturation past `|x| ≈ 4.97` where
/// `|tanh(x)|` is within `1e-4` of 1 anyway. Division is an order of
/// magnitude cheaper than the `exp` behind `f64::tanh`, which is what
/// makes the `fast-math` batched kernel worthwhile.
#[inline]
fn fast_tanh(x: f64) -> f64 {
    if x.abs() >= 4.97 {
        return if x > 0.0 { 1.0 } else { -1.0 };
    }
    let x2 = x * x;
    let p = x * (135135.0 + x2 * (17325.0 + x2 * (378.0 + x2)));
    let q = 135135.0 + x2 * (62370.0 + x2 * (3150.0 + 28.0 * x2));
    (p / q).clamp(-1.0, 1.0)
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_centered_and_bounded() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(100.0) <= 1.0);
        assert!(Activation::Sigmoid.apply(-100.0) >= 0.0);
        assert!(Activation::Sigmoid.apply(1.0) > 0.9); // steepened slope
    }

    #[test]
    fn tanh_saturates_without_nan() {
        assert!(Activation::Tanh.apply(1e9).is_finite());
        assert!((Activation::Tanh.apply(1e9) - 1.0).abs() < 1e-9);
        assert!((Activation::Tanh.apply(-1e9) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn relu_clips_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn gauss_peaks_at_zero() {
        assert!((Activation::Gauss.apply(0.0) - 1.0).abs() < 1e-12);
        assert!(Activation::Gauss.apply(3.0) < 1e-3);
        assert!(Activation::Gauss.apply(1e9).is_finite());
    }

    #[test]
    fn clamped_limits_range() {
        assert_eq!(Activation::Clamped.apply(5.0), 1.0);
        assert_eq!(Activation::Clamped.apply(-5.0), -1.0);
        assert_eq!(Activation::Clamped.apply(0.3), 0.3);
    }

    #[test]
    fn all_lists_every_variant_once() {
        let mut names: Vec<_> = Activation::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Activation::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        for a in Activation::ALL {
            assert_eq!(a.to_string(), a.name());
        }
    }

    #[test]
    fn every_activation_is_finite_on_extreme_inputs() {
        for a in Activation::ALL {
            for x in [-1e12, -1.0, 0.0, 1.0, 1e12] {
                assert!(a.apply(x).is_finite(), "{a} not finite at {x}");
            }
        }
    }

    #[test]
    fn apply_fast_stays_within_documented_error_bound() {
        // Dense grid over the active region plus the saturated tails.
        let mut worst: f64 = 0.0;
        for i in -12000..=12000 {
            let x = i as f64 / 1000.0; // [-12, 12] in 1e-3 steps
            for a in [Activation::Sigmoid, Activation::Tanh] {
                let err = (a.apply_fast(x) - a.apply(x)).abs();
                worst = worst.max(err);
            }
        }
        assert!(worst < 1e-3, "worst approximation error {worst}");
    }

    #[test]
    fn apply_fast_preserves_range_and_saturation() {
        for x in [-1e12, -60.0, -5.0, -4.97, 0.0, 4.97, 5.0, 60.0, 1e12] {
            let t = Activation::Tanh.apply_fast(x);
            assert!((-1.0..=1.0).contains(&t), "tanh range at {x}: {t}");
            let s = Activation::Sigmoid.apply_fast(x);
            assert!((0.0..=1.0).contains(&s), "sigmoid range at {x}: {s}");
        }
        assert_eq!(Activation::Tanh.apply_fast(1e9), 1.0);
        assert_eq!(Activation::Tanh.apply_fast(-1e9), -1.0);
        assert_eq!(Activation::Tanh.apply_fast(0.0), 0.0);
        assert_eq!(Activation::Sigmoid.apply_fast(0.0), 0.5);
    }

    #[test]
    fn apply_fast_is_exact_for_non_transcendental_activations() {
        for a in [
            Activation::Relu,
            Activation::Identity,
            Activation::Gauss,
            Activation::Sin,
            Activation::Abs,
            Activation::Clamped,
        ] {
            for x in [-3.7, -1.0, 0.0, 0.4, 2.9] {
                assert_eq!(a.apply_fast(x).to_bits(), a.apply(x).to_bits(), "{a}");
            }
        }
    }
}
