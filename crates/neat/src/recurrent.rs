//! Recurrent-network support (NEAT's original formulation).
//!
//! The E3 paper evaluates feed-forward NEAT (INAX is a feed-forward
//! engine), but NEAT as published also evolves **recurrent** links —
//! useful for partially observable tasks where the controller needs
//! memory. This module decodes a genome into a [`RecurrentNetwork`]
//! that performs one synchronous update per [`RecurrentNetwork::activate`]
//! call: every node reads the *previous* step's values of its sources,
//! so cycles are well-defined. A feed-forward genome decoded this way
//! converges to the same outputs after `depth` steps of a constant
//! input.
//!
//! Recurrent genomes are produced by building with
//! [`crate::NeatConfig`]'s structural operations after disabling the
//! feed-forward restriction via [`Genome::add_connection_unchecked`]
//! (hardware-offloaded runs keep the restriction: the INAX simulator
//! rejects cyclic nets at compile time).

use crate::genome::{Genome, NodeId, NodeKind};
use crate::Activation;
use serde::{Deserialize, Serialize};

/// One node of a recurrent network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RecurrentNode {
    id: NodeId,
    kind: NodeKind,
    bias: f64,
    activation: Activation,
    /// `(node_index, weight)` over the previous step's values.
    incoming: Vec<(usize, f64)>,
}

/// A stateful recurrent network: one synchronous update per call.
///
/// # Example
///
/// ```
/// use e3_neat::{Genome, InnovationTracker};
/// use e3_neat::recurrent::RecurrentNetwork;
///
/// let mut tracker = InnovationTracker::with_reserved_nodes(2);
/// let mut genome = Genome::bare(1, 1);
/// genome.add_connection(0, 1, 1.0, &mut tracker)?;
/// // A self-loop on the output makes it integrate its own history.
/// genome.add_connection_unchecked(1, 1, 0.5, &mut tracker)?;
/// let mut net = RecurrentNetwork::from_genome(&genome);
/// let first = net.activate(&[1.0])[0];
/// let second = net.activate(&[1.0])[0];
/// assert_ne!(first, second, "state carries across steps");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecurrentNetwork {
    num_inputs: usize,
    num_outputs: usize,
    nodes: Vec<RecurrentNode>,
    output_indices: Vec<usize>,
    /// Previous-step values (the recurrent state).
    state: Vec<f64>,
    next: Vec<f64>,
}

impl RecurrentNetwork {
    /// Decodes any genome — cyclic or not — into a recurrent network.
    /// Never fails: cycles are legal here.
    pub fn from_genome(genome: &Genome) -> Self {
        let genome_nodes = genome.nodes();
        let index_of = |id: NodeId| -> usize {
            genome_nodes
                .binary_search_by_key(&id, |n| n.id)
                .expect("genome connections reference existing nodes")
        };
        let mut nodes: Vec<RecurrentNode> = genome_nodes
            .iter()
            .map(|n| RecurrentNode {
                id: n.id,
                kind: n.kind,
                bias: n.bias,
                activation: n.activation,
                incoming: Vec::new(),
            })
            .collect();
        for c in genome.connections().iter().filter(|c| c.enabled) {
            let to = index_of(c.to);
            nodes[to].incoming.push((index_of(c.from), c.weight));
        }
        let output_indices = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Output)
            .map(|(i, _)| i)
            .collect();
        let state = vec![0.0; nodes.len()];
        RecurrentNetwork {
            num_inputs: genome.num_inputs(),
            num_outputs: genome.num_outputs(),
            next: state.clone(),
            nodes,
            output_indices,
            state,
        }
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Clears the recurrent state (call between episodes).
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Performs one synchronous update: inputs are written, every other
    /// node computes from the **previous** step's values, and the new
    /// output values are returned (genome id order).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count.
    pub fn activate(&mut self, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(inputs.len(), self.num_inputs, "input size mismatch");
        for (i, node) in self.nodes.iter().enumerate() {
            self.next[i] = match node.kind {
                NodeKind::Input => inputs[node.id],
                _ => {
                    let mut sum = node.bias;
                    for &(src, weight) in &node.incoming {
                        sum += self.state[src] * weight;
                    }
                    node.activation.apply(sum)
                }
            };
        }
        std::mem::swap(&mut self.state, &mut self.next);
        self.output_indices.iter().map(|&i| self.state[i]).collect()
    }

    /// Runs `depth` synchronous updates on a constant input and returns
    /// the final outputs — the settled value for feed-forward genomes.
    pub fn activate_settled(&mut self, inputs: &[f64], depth: usize) -> Vec<f64> {
        let mut out = self.activate(inputs);
        for _ in 1..depth {
            out = self.activate(inputs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Genome, InnovationTracker};

    #[test]
    fn feed_forward_genome_settles_to_static_output() {
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, 0.7, &mut tracker).unwrap();
        g.add_connection(1, 2, -0.3, &mut tracker).unwrap();
        g.split_connection(innovation, Activation::Identity, &mut tracker)
            .unwrap();
        let mut settled = RecurrentNetwork::from_genome(&g);
        let mut reference = g.decode().unwrap();
        let input = [0.5, -1.0];
        let depth = 3; // inputs -> hidden -> output
        let out = settled.activate_settled(&input, depth);
        let want = reference.activate(&input);
        assert!(
            (out[0] - want[0]).abs() < 1e-12,
            "{} vs {}",
            out[0],
            want[0]
        );
    }

    #[test]
    fn self_loop_integrates_history() {
        let mut tracker = InnovationTracker::with_reserved_nodes(2);
        let mut g = Genome::bare(1, 1);
        g.add_connection(0, 1, 1.0, &mut tracker).unwrap();
        g.add_connection_unchecked(1, 1, 1.0, &mut tracker).unwrap();
        g.set_bias(1, 0.0).unwrap();
        // Output (tanh) accumulates: state grows toward saturation.
        let mut net = RecurrentNetwork::from_genome(&g);
        let a = net.activate(&[0.5])[0];
        let b = net.activate(&[0.5])[0];
        let c = net.activate(&[0.5])[0];
        assert!(b > a && c > b, "self-loop keeps integrating: {a} {b} {c}");
    }

    #[test]
    fn reset_clears_state() {
        let mut tracker = InnovationTracker::with_reserved_nodes(2);
        let mut g = Genome::bare(1, 1);
        g.add_connection(0, 1, 1.0, &mut tracker).unwrap();
        g.add_connection_unchecked(1, 1, 0.9, &mut tracker).unwrap();
        let mut net = RecurrentNetwork::from_genome(&g);
        let first = net.activate(&[1.0])[0];
        net.activate(&[1.0]);
        net.activate(&[1.0]);
        net.reset();
        assert_eq!(
            net.activate(&[1.0])[0],
            first,
            "reset restores the initial response"
        );
    }

    #[test]
    fn cyclic_genomes_are_rejected_by_feed_forward_decode_but_not_here() {
        let mut tracker = InnovationTracker::with_reserved_nodes(2);
        let mut g = Genome::bare(1, 1);
        let innovation = g.add_connection(0, 1, 1.0, &mut tracker).unwrap();
        let h = g
            .split_connection(innovation, Activation::Tanh, &mut tracker)
            .unwrap();
        g.add_connection_unchecked(h, h, 0.5, &mut tracker).unwrap();
        assert!(
            g.decode().is_err(),
            "feed-forward decode must reject the cycle"
        );
        let mut net = RecurrentNetwork::from_genome(&g);
        assert_eq!(net.activate(&[1.0]).len(), 1);
    }

    #[test]
    fn memory_task_is_solvable_only_with_recurrence() {
        // Task: output the *previous* input. A recurrent one-delay line
        // does this exactly; a feed-forward net cannot.
        let mut tracker = InnovationTracker::with_reserved_nodes(2);
        let g = Genome::bare(1, 1);
        // input -> hidden(identity) -> output(identity): two delays? No:
        // in the synchronous model each hop adds one step of delay, so
        // input -> output directly gives exactly one step of delay.
        let mut direct = Genome::bare(1, 1);
        direct.add_connection(0, 1, 1.0, &mut tracker).unwrap();
        // Make output identity for exactness.
        let json = serde_json::to_string(&direct)
            .unwrap()
            .replace("\"Tanh\"", "\"Identity\"");
        let direct: Genome = serde_json::from_str(&json).unwrap();
        let mut net = RecurrentNetwork::from_genome(&direct);
        let sequence = [0.3, -0.7, 0.9, 0.1];
        let mut previous = 0.0;
        for &x in &sequence {
            let out = net.activate(&[x])[0];
            assert!((out - previous).abs() < 1e-12, "expected delay line");
            previous = x;
        }
        let _ = g;
    }
}
