//! Genome representation and genetic operators.
//!
//! A [`Genome`] is the NEAT encoding of one irregular neural network:
//! a set of [`NodeGene`]s (bias + activation per node) and a set of
//! [`ConnectionGene`]s (weighted directed edges tagged with innovation
//! numbers). The genome graph is kept **acyclic** at all times so every
//! genome decodes to a feed-forward [`crate::Network`].

use self::rand_distr_normal::sample_normal;
use crate::activation::Activation;
use crate::config::NeatConfig;
use crate::error::GenomeError;
use crate::innovation::{Innovation, InnovationTracker};
use crate::network::Network;
use crate::DecodeError;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a node gene within a genome.
///
/// Input nodes occupy `0..num_inputs`, output nodes
/// `num_inputs..num_inputs + num_outputs`, and hidden nodes use ids
/// allocated by the [`InnovationTracker`].
pub type NodeId = usize;

/// The role of a node within the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Sensor node fed by the environment observation; has no bias,
    /// activation or incoming connections.
    Input,
    /// Evolved intermediate node.
    Hidden,
    /// Action node whose activation is read out as the network output.
    Output,
}

/// A node gene: one neuron of the encoded network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeGene {
    /// Stable node identifier (aligned across genomes by the tracker).
    pub id: NodeId,
    /// Role of the node.
    pub kind: NodeKind,
    /// Additive bias applied before activation (ignored for inputs).
    pub bias: f64,
    /// Activation function (ignored for inputs).
    pub activation: Activation,
}

/// A connection gene: one weighted edge of the encoded network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnectionGene {
    /// Historical marking used to align genes during crossover.
    pub innovation: Innovation,
    /// Source node id.
    pub from: NodeId,
    /// Target node id.
    pub to: NodeId,
    /// Connection weight.
    pub weight: f64,
    /// Disabled genes are retained in the genome (they may re-enable or
    /// be inherited) but do not take part in inference.
    pub enabled: bool,
}

/// Minimal inline normal sampler so the crate only needs `rand` core
/// (Box–Muller on two uniform draws).
mod rand_distr_normal {
    use rand::Rng;

    pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        mean + sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// The NEAT encoding of one irregular feed-forward neural network.
///
/// Invariants (maintained by every public operation):
///
/// * node ids are unique; inputs and outputs are always present;
/// * connection `(from, to)` pairs are unique;
/// * connections never target input nodes nor originate from output
///   nodes' *missing* sources (outputs may feed nothing — the paper's
///   networks are pure feed-forward, so outputs are sinks);
/// * the connection graph (enabled **and** disabled genes) is acyclic;
/// * `connections` is sorted by innovation number.
///
/// # Example
///
/// ```
/// use e3_neat::{Genome, InnovationTracker, NeatConfig};
/// use rand::SeedableRng;
///
/// let config = NeatConfig::new(3, 2);
/// let mut tracker = InnovationTracker::with_reserved_nodes(5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let genome = Genome::initial(&config, &mut tracker, &mut rng);
/// assert_eq!(genome.num_inputs(), 3);
/// let mut net = genome.decode()?;
/// assert_eq!(net.activate(&[0.1, 0.2, 0.3]).len(), 2);
/// # Ok::<(), e3_neat::DecodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    num_inputs: usize,
    num_outputs: usize,
    nodes: Vec<NodeGene>,
    connections: Vec<ConnectionGene>,
}

impl Genome {
    /// Builds a generation-0 genome per the configuration: fixed input
    /// and output nodes, `initial_hidden_nodes` hidden nodes, and
    /// feed-forward connections sampled with probability
    /// `initial_connection_density`.
    ///
    /// Every output node is guaranteed at least one incoming
    /// connection so the genome is functional from the start.
    pub fn initial<R: Rng + ?Sized>(
        config: &NeatConfig,
        tracker: &mut InnovationTracker,
        rng: &mut R,
    ) -> Self {
        let mut nodes = Vec::with_capacity(
            config.num_inputs + config.num_outputs + config.initial_hidden_nodes,
        );
        for id in 0..config.num_inputs {
            nodes.push(NodeGene {
                id,
                kind: NodeKind::Input,
                bias: 0.0,
                activation: Activation::Identity,
            });
        }
        for i in 0..config.num_outputs {
            nodes.push(NodeGene {
                id: config.num_inputs + i,
                kind: NodeKind::Output,
                bias: sample_normal(rng, 0.0, config.bias_perturb_sigma),
                activation: config.output_activation,
            });
        }
        let mut hidden_ids = Vec::with_capacity(config.initial_hidden_nodes);
        for _ in 0..config.initial_hidden_nodes {
            let id = tracker.fresh_node_id();
            hidden_ids.push(id);
            nodes.push(NodeGene {
                id,
                kind: NodeKind::Hidden,
                bias: sample_normal(rng, 0.0, config.bias_perturb_sigma),
                activation: *config
                    .activation_options
                    .choose(rng)
                    .expect("config validated non-empty"),
            });
        }

        let mut genome = Genome {
            num_inputs: config.num_inputs,
            num_outputs: config.num_outputs,
            nodes,
            connections: Vec::new(),
        };

        let inputs: Vec<NodeId> = (0..config.num_inputs).collect();
        let outputs: Vec<NodeId> =
            (config.num_inputs..config.num_inputs + config.num_outputs).collect();

        // Candidate feed-forward pairs: input->hidden, hidden->output,
        // input->output (hidden->hidden skipped at init; evolution adds
        // them through structural mutation).
        let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
        for &i in &inputs {
            for &h in &hidden_ids {
                candidates.push((i, h));
            }
            for &o in &outputs {
                candidates.push((i, o));
            }
        }
        for &h in &hidden_ids {
            for &o in &outputs {
                candidates.push((h, o));
            }
        }
        for (from, to) in candidates {
            if rng.gen_bool(config.initial_connection_density) {
                let weight = sample_normal(rng, 0.0, 1.0)
                    .clamp(-config.weight_max_abs, config.weight_max_abs);
                let innovation = tracker.connection_innovation(from, to);
                genome
                    .insert_connection(ConnectionGene {
                        innovation,
                        from,
                        to,
                        weight,
                        enabled: true,
                    })
                    .expect("initial candidates are unique and acyclic");
            }
        }
        // Guarantee every output is reachable.
        for &o in &outputs {
            if !genome.connections.iter().any(|c| c.to == o) {
                let from = if hidden_ids.is_empty() {
                    inputs[rng.gen_range(0..inputs.len())]
                } else {
                    hidden_ids[rng.gen_range(0..hidden_ids.len())]
                };
                let innovation = tracker.connection_innovation(from, o);
                let weight = sample_normal(rng, 0.0, 1.0);
                genome
                    .insert_connection(ConnectionGene {
                        innovation,
                        from,
                        to: o,
                        weight,
                        enabled: true,
                    })
                    .expect("output had no incoming edge, so this one is new and acyclic");
            }
        }
        // Guarantee every hidden node feeds something so init genomes
        // have no dead compute.
        for &h in &hidden_ids {
            if !genome.connections.iter().any(|c| c.from == h) {
                let o = outputs[rng.gen_range(0..outputs.len())];
                if genome.connection_between(h, o).is_none() {
                    let innovation = tracker.connection_innovation(h, o);
                    let weight = sample_normal(rng, 0.0, 1.0);
                    genome
                        .insert_connection(ConnectionGene {
                            innovation,
                            from: h,
                            to: o,
                            weight,
                            enabled: true,
                        })
                        .expect("hidden->output is acyclic");
                }
            }
        }
        genome
    }

    /// Builds an empty genome containing only the fixed input/output
    /// nodes (no hidden nodes, no connections). Useful for constructing
    /// networks explicitly in tests and tools.
    pub fn bare(num_inputs: usize, num_outputs: usize) -> Self {
        assert!(
            num_inputs > 0 && num_outputs > 0,
            "need at least one input and output"
        );
        let mut nodes = Vec::with_capacity(num_inputs + num_outputs);
        for id in 0..num_inputs {
            nodes.push(NodeGene {
                id,
                kind: NodeKind::Input,
                bias: 0.0,
                activation: Activation::Identity,
            });
        }
        for i in 0..num_outputs {
            nodes.push(NodeGene {
                id: num_inputs + i,
                kind: NodeKind::Output,
                bias: 0.0,
                activation: Activation::Tanh,
            });
        }
        Genome {
            num_inputs,
            num_outputs,
            nodes,
            connections: Vec::new(),
        }
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// All node genes, ordered by id.
    pub fn nodes(&self) -> &[NodeGene] {
        &self.nodes
    }

    /// All connection genes, ordered by innovation number.
    pub fn connections(&self) -> &[ConnectionGene] {
        &self.connections
    }

    /// Number of hidden nodes.
    pub fn num_hidden(&self) -> usize {
        self.nodes.len() - self.num_inputs - self.num_outputs
    }

    /// Number of enabled connections (the paper's "# of connections").
    pub fn num_enabled_connections(&self) -> usize {
        self.connections.iter().filter(|c| c.enabled).count()
    }

    /// Looks up a node gene by id.
    pub fn node(&self, id: NodeId) -> Option<&NodeGene> {
        self.nodes
            .binary_search_by_key(&id, |n| n.id)
            .ok()
            .map(|i| &self.nodes[i])
    }

    /// Looks up the connection gene between two nodes, if present.
    pub fn connection_between(&self, from: NodeId, to: NodeId) -> Option<&ConnectionGene> {
        self.connections
            .iter()
            .find(|c| c.from == from && c.to == to)
    }

    /// Adds an explicit connection gene.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError`] if either endpoint is unknown, the target
    /// is an input node, the pair already exists, or the edge would
    /// create a cycle.
    pub fn add_connection(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
        tracker: &mut InnovationTracker,
    ) -> Result<Innovation, GenomeError> {
        self.validate_new_edge(from, to)?;
        let innovation = tracker.connection_innovation(from, to);
        self.insert_connection(ConnectionGene {
            innovation,
            from,
            to,
            weight,
            enabled: true,
        })?;
        Ok(innovation)
    }

    /// Adds a connection **without the feed-forward (acyclicity)
    /// restriction** — recurrent links, self-loops, and output-sourced
    /// edges are allowed. Duplicate pairs and input targets are still
    /// rejected. Genomes with cyclic links decode only through
    /// [`crate::RecurrentNetwork`]; [`Genome::decode`] will report the
    /// cycle.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError`] if an endpoint is unknown, the target is
    /// an input node, or the pair already exists.
    pub fn add_connection_unchecked(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
        tracker: &mut InnovationTracker,
    ) -> Result<Innovation, GenomeError> {
        self.node(from).ok_or(GenomeError::UnknownNode(from))?;
        let to_node = self.node(to).ok_or(GenomeError::UnknownNode(to))?;
        if to_node.kind == NodeKind::Input {
            return Err(GenomeError::TargetIsInput(to));
        }
        if self.connection_between(from, to).is_some() {
            return Err(GenomeError::DuplicateConnection { from, to });
        }
        let innovation = tracker.connection_innovation(from, to);
        let at = self
            .connections
            .partition_point(|c| c.innovation < innovation);
        self.connections.insert(
            at,
            ConnectionGene {
                innovation,
                from,
                to,
                weight,
                enabled: true,
            },
        );
        Ok(innovation)
    }

    /// Splits an existing enabled connection with a new hidden node:
    /// the old gene is disabled and replaced by `from -> new` (weight 1)
    /// and `new -> to` (old weight), per the NEAT paper.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::UnknownNode`] if no enabled connection
    /// with the given innovation exists.
    pub fn split_connection(
        &mut self,
        innovation: Innovation,
        activation: Activation,
        tracker: &mut InnovationTracker,
    ) -> Result<NodeId, GenomeError> {
        let idx = self
            .connections
            .iter()
            .position(|c| c.innovation == innovation && c.enabled)
            .ok_or(GenomeError::UnknownNode(innovation.0 as usize))?;
        let (from, to, weight) = (
            self.connections[idx].from,
            self.connections[idx].to,
            self.connections[idx].weight,
        );
        let (node_id, in_innovation, out_innovation) = tracker.split_innovation(from, to);
        if self.node(node_id).is_some() {
            // Another genome already split this edge this generation and
            // we inherited the node; do not split again.
            return Err(GenomeError::DuplicateConnection { from, to });
        }
        self.connections[idx].enabled = false;
        let insert_at = self.nodes.partition_point(|n| n.id < node_id);
        self.nodes.insert(
            insert_at,
            NodeGene {
                id: node_id,
                kind: NodeKind::Hidden,
                bias: 0.0,
                activation,
            },
        );
        self.insert_connection(ConnectionGene {
            innovation: in_innovation,
            from,
            to: node_id,
            weight: 1.0,
            enabled: true,
        })
        .expect("fresh node cannot collide");
        self.insert_connection(ConnectionGene {
            innovation: out_innovation,
            from: node_id,
            to,
            weight,
            enabled: true,
        })
        .expect("fresh node cannot collide");
        Ok(node_id)
    }

    /// Applies the full mutation suite with the configured rates:
    /// weight/bias/activation perturbation, enable toggling, and the
    /// structural add-connection / add-node mutations.
    pub fn mutate<R: Rng + ?Sized>(
        &mut self,
        config: &NeatConfig,
        tracker: &mut InnovationTracker,
        rng: &mut R,
    ) {
        // Weight mutation.
        for i in 0..self.connections.len() {
            if rng.gen_bool(config.weight_mutate_rate) {
                let w = &mut self.connections[i].weight;
                if rng.gen_bool(config.weight_replace_rate) {
                    *w = sample_normal(rng, 0.0, 1.0);
                } else {
                    *w += sample_normal(rng, 0.0, config.weight_perturb_sigma);
                }
                *w = w.clamp(-config.weight_max_abs, config.weight_max_abs);
            }
        }
        // Bias and activation mutation.
        for i in 0..self.nodes.len() {
            if self.nodes[i].kind == NodeKind::Input {
                continue;
            }
            if rng.gen_bool(config.bias_mutate_rate) {
                let b = &mut self.nodes[i].bias;
                *b = (*b + sample_normal(rng, 0.0, config.bias_perturb_sigma))
                    .clamp(-config.weight_max_abs, config.weight_max_abs);
            }
            if self.nodes[i].kind == NodeKind::Hidden && rng.gen_bool(config.activation_mutate_rate)
            {
                self.nodes[i].activation = *config
                    .activation_options
                    .choose(rng)
                    .expect("config validated non-empty");
            }
        }
        // Toggle enable.
        if !self.connections.is_empty() && rng.gen_bool(config.toggle_enable_rate) {
            let i = rng.gen_range(0..self.connections.len());
            if self.connections[i].enabled {
                // Never disable the last enabled connection.
                if self.num_enabled_connections() > 1 {
                    self.connections[i].enabled = false;
                }
            } else {
                self.connections[i].enabled = true;
            }
        }
        // Structural: add connection.
        if rng.gen_bool(config.add_connection_rate) {
            self.mutate_add_connection(config, tracker, rng);
        }
        // Structural: add node.
        if rng.gen_bool(config.add_node_rate) {
            self.mutate_add_node(config, tracker, rng);
        }
        // Structural: explicit pruning.
        if rng.gen_bool(config.delete_connection_rate) {
            self.mutate_delete_connection(rng);
        }
        if rng.gen_bool(config.delete_node_rate) {
            self.mutate_delete_node(rng);
        }
    }

    /// Removes a random connection gene (never the last enabled one).
    pub fn mutate_delete_connection<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.connections.len() < 2 {
            return;
        }
        let idx = rng.gen_range(0..self.connections.len());
        if self.connections[idx].enabled && self.num_enabled_connections() <= 1 {
            return;
        }
        self.connections.remove(idx);
    }

    /// Removes a random hidden node and every connection touching it.
    /// Skipped when no hidden node exists or when the removal would
    /// leave the genome without an enabled connection.
    pub fn mutate_delete_node<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let hidden: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Hidden)
            .map(|n| n.id)
            .collect();
        if hidden.is_empty() {
            return;
        }
        let victim = hidden[rng.gen_range(0..hidden.len())];
        let surviving_enabled = self
            .connections
            .iter()
            .filter(|c| c.enabled && c.from != victim && c.to != victim)
            .count();
        if surviving_enabled == 0 {
            return;
        }
        self.connections
            .retain(|c| c.from != victim && c.to != victim);
        self.nodes.retain(|n| n.id != victim);
    }

    /// Attempts the add-connection structural mutation; silently gives
    /// up if no valid pair is found after a bounded number of tries.
    pub fn mutate_add_connection<R: Rng + ?Sized>(
        &mut self,
        config: &NeatConfig,
        tracker: &mut InnovationTracker,
        rng: &mut R,
    ) {
        for _ in 0..20 {
            let from = self.nodes[rng.gen_range(0..self.nodes.len())];
            let to = self.nodes[rng.gen_range(0..self.nodes.len())];
            if self.validate_new_edge(from.id, to.id).is_err() {
                continue;
            }
            let weight =
                sample_normal(rng, 0.0, 1.0).clamp(-config.weight_max_abs, config.weight_max_abs);
            let innovation = tracker.connection_innovation(from.id, to.id);
            let _ = self.insert_connection(ConnectionGene {
                innovation,
                from: from.id,
                to: to.id,
                weight,
                enabled: true,
            });
            return;
        }
    }

    /// Attempts the add-node structural mutation on a random enabled
    /// connection.
    pub fn mutate_add_node<R: Rng + ?Sized>(
        &mut self,
        config: &NeatConfig,
        tracker: &mut InnovationTracker,
        rng: &mut R,
    ) {
        let enabled: Vec<Innovation> = self
            .connections
            .iter()
            .filter(|c| c.enabled)
            .map(|c| c.innovation)
            .collect();
        if enabled.is_empty() {
            return;
        }
        let innovation = enabled[rng.gen_range(0..enabled.len())];
        let activation = *config
            .activation_options
            .choose(rng)
            .expect("config validated non-empty");
        let _ = self.split_connection(innovation, activation, tracker);
    }

    /// NEAT crossover: aligns connection genes by innovation number.
    /// Matching genes are inherited from a random parent; disjoint and
    /// excess genes come from the fitter parent (`self`). When
    /// `equal_fitness` is set, disjoint/excess genes are inherited from
    /// both parents.
    ///
    /// A gene disabled in either parent is disabled in the child with
    /// probability `config.disable_in_child_rate` (unless that would
    /// leave the child without enabled connections).
    pub fn crossover<R: Rng + ?Sized>(
        &self,
        other: &Genome,
        equal_fitness: bool,
        config: &NeatConfig,
        rng: &mut R,
    ) -> Genome {
        debug_assert_eq!(self.num_inputs, other.num_inputs);
        debug_assert_eq!(self.num_outputs, other.num_outputs);
        let mut child_connections: Vec<ConnectionGene> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.connections.len() || j < other.connections.len() {
            let pick = match (self.connections.get(i), other.connections.get(j)) {
                (Some(a), Some(b)) if a.innovation == b.innovation => {
                    let mut gene = if rng.gen_bool(0.5) { *a } else { *b };
                    if (!a.enabled || !b.enabled) && gene.enabled {
                        gene.enabled = !rng.gen_bool(config.disable_in_child_rate);
                    } else if (!a.enabled || !b.enabled)
                        && !rng.gen_bool(config.disable_in_child_rate)
                    {
                        gene.enabled = true;
                    }
                    i += 1;
                    j += 1;
                    Some(gene)
                }
                (Some(a), Some(b)) if a.innovation < b.innovation => {
                    i += 1;
                    Some(*a) // disjoint in fitter parent: keep
                }
                (Some(_), Some(b)) => {
                    j += 1;
                    if equal_fitness {
                        Some(*b)
                    } else {
                        None // disjoint in weaker parent: drop
                    }
                }
                (Some(a), None) => {
                    i += 1;
                    Some(*a) // excess in fitter parent: keep
                }
                (None, Some(b)) => {
                    j += 1;
                    if equal_fitness {
                        Some(*b)
                    } else {
                        None
                    }
                }
                (None, None) => unreachable!("loop condition"),
            };
            if let Some(gene) = pick {
                child_connections.push(gene);
            }
        }

        // Node genes: fixed inputs/outputs plus every hidden node that a
        // child connection references, inheriting parameters from a
        // random parent that has the node.
        let mut child = Genome::bare(self.num_inputs, self.num_outputs);
        // Output parameters come from a random parent per node.
        for k in 0..child.nodes.len() {
            let id = child.nodes[k].id;
            let donor = match (self.node(id), other.node(id)) {
                (Some(a), Some(b)) => {
                    if rng.gen_bool(0.5) {
                        *a
                    } else {
                        *b
                    }
                }
                (Some(a), None) => *a,
                (None, Some(b)) => *b,
                (None, None) => continue,
            };
            child.nodes[k] = donor;
        }
        let mut needed: Vec<NodeId> = child_connections
            .iter()
            .flat_map(|c| [c.from, c.to])
            .filter(|&id| id >= self.num_inputs + self.num_outputs)
            .collect();
        needed.sort_unstable();
        needed.dedup();
        for id in needed {
            let donor = match (self.node(id), other.node(id)) {
                (Some(a), Some(b)) => {
                    if rng.gen_bool(0.5) {
                        *a
                    } else {
                        *b
                    }
                }
                (Some(a), None) => *a,
                (None, Some(b)) => *b,
                (None, None) => unreachable!("child connections only reference parental nodes"),
            };
            let at = child.nodes.partition_point(|n| n.id < donor.id);
            child.nodes.insert(at, donor);
        }
        // Insert connections, skipping any that would break the acyclic
        // invariant (possible when equal-fitness inheritance merges both
        // parents' structures).
        for gene in child_connections {
            let _ = child.insert_connection(gene);
        }
        if child.num_enabled_connections() == 0 {
            if let Some(first) = child.connections.first().map(|c| c.innovation) {
                if let Some(c) = child.connections.iter_mut().find(|c| c.innovation == first) {
                    c.enabled = true;
                }
            }
        }
        child
    }

    /// NEAT compatibility distance
    /// `δ = c1·E/N + c2·D/N + c3·W̄` where `E` and `D` are the excess and
    /// disjoint gene counts, `N` the larger genome's connection count
    /// (1 for small genomes, per the NEAT paper), and `W̄` the mean
    /// absolute weight difference of matching genes.
    pub fn compatibility_distance(&self, other: &Genome, config: &NeatConfig) -> f64 {
        let (mut matching, mut disjoint, mut excess) = (0usize, 0usize, 0usize);
        let mut weight_diff = 0.0f64;
        let max_a = self.connections.last().map(|c| c.innovation);
        let max_b = other.connections.last().map(|c| c.innovation);
        let (mut i, mut j) = (0, 0);
        while i < self.connections.len() || j < other.connections.len() {
            match (self.connections.get(i), other.connections.get(j)) {
                (Some(a), Some(b)) if a.innovation == b.innovation => {
                    matching += 1;
                    weight_diff += (a.weight - b.weight).abs();
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a.innovation < b.innovation => {
                    disjoint += 1;
                    i += 1;
                    let _ = (a, b);
                }
                (Some(_), Some(_)) => {
                    disjoint += 1;
                    j += 1;
                }
                (Some(a), None) => {
                    if max_b.is_some_and(|m| a.innovation > m) || max_b.is_none() {
                        excess += 1;
                    } else {
                        disjoint += 1;
                    }
                    i += 1;
                }
                (None, Some(b)) => {
                    if max_a.is_some_and(|m| b.innovation > m) || max_a.is_none() {
                        excess += 1;
                    } else {
                        disjoint += 1;
                    }
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        let n = self.connections.len().max(other.connections.len()).max(1) as f64;
        let n = if n < 20.0 { 1.0 } else { n };
        let mean_weight_diff = if matching > 0 {
            weight_diff / matching as f64
        } else {
            0.0
        };
        config.excess_coefficient * excess as f64 / n
            + config.disjoint_coefficient * disjoint as f64 / n
            + config.weight_coefficient * mean_weight_diff
    }

    /// Decodes the genome into an inference-ready [`Network`]
    /// (the paper's "CreateNet" step).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the enabled connections are cyclic or
    /// reference missing nodes (neither can occur for genomes produced
    /// through this crate's operations).
    pub fn decode(&self) -> Result<Network, DecodeError> {
        Network::from_genome(self)
    }

    /// Whether adding `from -> to` would create a directed cycle in the
    /// genome graph (all genes, enabled or not).
    pub fn creates_cycle(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        // DFS from `to` looking for `from`.
        let mut stack = vec![to];
        let mut seen = vec![to];
        while let Some(node) = stack.pop() {
            for c in &self.connections {
                if c.from == node {
                    if c.to == from {
                        return true;
                    }
                    if !seen.contains(&c.to) {
                        seen.push(c.to);
                        stack.push(c.to);
                    }
                }
            }
        }
        false
    }

    fn validate_new_edge(&self, from: NodeId, to: NodeId) -> Result<(), GenomeError> {
        let from_node = self.node(from).ok_or(GenomeError::UnknownNode(from))?;
        let to_node = self.node(to).ok_or(GenomeError::UnknownNode(to))?;
        if to_node.kind == NodeKind::Input {
            return Err(GenomeError::TargetIsInput(to));
        }
        if from_node.kind == NodeKind::Output {
            // Outputs are sinks in feed-forward NEAT.
            return Err(GenomeError::WouldCycle { from, to });
        }
        if self.connection_between(from, to).is_some() {
            return Err(GenomeError::DuplicateConnection { from, to });
        }
        if self.creates_cycle(from, to) {
            return Err(GenomeError::WouldCycle { from, to });
        }
        Ok(())
    }

    /// Inserts a connection gene preserving invariants and innovation
    /// ordering.
    fn insert_connection(&mut self, gene: ConnectionGene) -> Result<(), GenomeError> {
        self.validate_new_edge(gene.from, gene.to)?;
        let at = self
            .connections
            .partition_point(|c| c.innovation < gene.innovation);
        self.connections.insert(at, gene);
        Ok(())
    }

    /// Directly sets a connection's weight (used by tests and tools).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::UnknownNode`] if the pair does not exist.
    pub fn set_weight(&mut self, from: NodeId, to: NodeId, weight: f64) -> Result<(), GenomeError> {
        match self
            .connections
            .iter_mut()
            .find(|c| c.from == from && c.to == to)
        {
            Some(c) => {
                c.weight = weight;
                Ok(())
            }
            None => Err(GenomeError::UnknownNode(from)),
        }
    }

    /// A 64-bit structural fingerprint over every gene (FNV-1a).
    ///
    /// Two genomes that compare equal hash identically; any change to a
    /// node (bias, activation) or connection (weight, enabled flag,
    /// endpoints, innovation) changes the fingerprint with overwhelming
    /// probability. Float parameters are hashed through their IEEE-754
    /// bit patterns, so the fingerprint is deterministic across
    /// processes and platforms. Used as the key of the decoded-network
    /// cache in `e3-exec`.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.num_inputs as u64);
        mix(self.num_outputs as u64);
        mix(self.nodes.len() as u64);
        for node in &self.nodes {
            mix(node.id as u64);
            mix(node.kind as u64);
            mix(node.bias.to_bits());
            mix(node.activation as u64);
        }
        mix(self.connections.len() as u64);
        for conn in &self.connections {
            mix(conn.innovation.0);
            mix(conn.from as u64);
            mix(conn.to as u64);
            mix(conn.weight.to_bits());
            mix(u64::from(conn.enabled));
        }
        hash
    }

    /// Directly sets a node's bias (used by tests and tools).
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::UnknownNode`] if the node does not exist.
    pub fn set_bias(&mut self, id: NodeId, bias: f64) -> Result<(), GenomeError> {
        let idx = self
            .nodes
            .binary_search_by_key(&id, |n| n.id)
            .map_err(|_| GenomeError::UnknownNode(id))?;
        self.nodes[idx].bias = bias;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (NeatConfig, InnovationTracker, StdRng) {
        let config = NeatConfig::new(3, 2);
        let tracker = InnovationTracker::with_reserved_nodes(5);
        let rng = StdRng::seed_from_u64(11);
        (config, tracker, rng)
    }

    #[test]
    fn initial_genome_has_fixed_io_nodes() {
        let (config, mut tracker, mut rng) = setup();
        let g = Genome::initial(&config, &mut tracker, &mut rng);
        assert_eq!(g.num_inputs(), 3);
        assert_eq!(g.num_outputs(), 2);
        assert_eq!(g.num_hidden(), 0);
        assert!(
            g.num_enabled_connections() >= 2,
            "every output is connected"
        );
    }

    #[test]
    fn initial_genome_with_hidden_nodes_and_sparsity() {
        let config = NeatConfig::builder(8, 4)
            .initial_hidden_nodes(30)
            .initial_connection_density(0.2)
            .build();
        let mut tracker = InnovationTracker::with_reserved_nodes(12);
        let mut rng = StdRng::seed_from_u64(3);
        let g = Genome::initial(&config, &mut tracker, &mut rng);
        assert_eq!(g.num_hidden(), 30);
        // Roughly density * candidates connections (8*30 + 8*4 + 30*4 = 392).
        let n = g.num_enabled_connections();
        assert!(n > 40 && n < 160, "sampled {n} connections");
        assert!(g.decode().is_ok());
    }

    #[test]
    fn add_connection_rejects_duplicates_and_cycles() {
        let (_, mut tracker, _) = setup();
        let mut g = Genome::bare(2, 1);
        g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        assert!(matches!(
            g.add_connection(0, 2, 1.0, &mut tracker),
            Err(GenomeError::DuplicateConnection { .. })
        ));
        assert!(matches!(
            g.add_connection(2, 0, 1.0, &mut tracker),
            Err(GenomeError::TargetIsInput(0))
        ));
        assert!(matches!(
            g.add_connection(0, 0, 1.0, &mut tracker),
            Err(GenomeError::TargetIsInput(0))
        ));
    }

    #[test]
    fn split_connection_disables_original_and_wires_node() {
        let (_, mut tracker, _) = setup();
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, 0.7, &mut tracker).unwrap();
        let node = g
            .split_connection(innovation, Activation::Relu, &mut tracker)
            .unwrap();
        assert_eq!(g.num_hidden(), 1);
        assert!(!g.connection_between(0, 2).unwrap().enabled);
        assert_eq!(g.connection_between(0, node).unwrap().weight, 1.0);
        assert_eq!(g.connection_between(node, 2).unwrap().weight, 0.7);
        // Split preserves function for identity-ish chains: decodes fine.
        assert!(g.decode().is_ok());
    }

    #[test]
    fn creates_cycle_detects_transitive_cycles() {
        let (_, mut tracker, _) = setup();
        let mut g = Genome::bare(1, 1);
        let innovation = g.add_connection(0, 1, 1.0, &mut tracker).unwrap();
        let h1 = g
            .split_connection(innovation, Activation::Tanh, &mut tracker)
            .unwrap();
        let innovation2 = g.connection_between(0, h1).unwrap().innovation;
        let h2 = g
            .split_connection(innovation2, Activation::Tanh, &mut tracker)
            .unwrap();
        // 0 -> h2 -> h1 -> 1. h1 -> h2 closes a cycle.
        assert!(g.creates_cycle(h1, h2));
        assert!(!g.creates_cycle(h2, h1)); // already exists as a path but not a cycle
        assert!(matches!(
            g.add_connection(h1, h2, 1.0, &mut tracker),
            Err(GenomeError::WouldCycle { .. })
        ));
    }

    #[test]
    fn mutation_preserves_invariants() {
        let (config, mut tracker, mut rng) = setup();
        let mut g = Genome::initial(&config, &mut tracker, &mut rng);
        for _ in 0..200 {
            g.mutate(&config, &mut tracker, &mut rng);
            assert!(g.decode().is_ok(), "mutation broke feed-forwardness");
            // Node ids unique & sorted.
            for w in g.nodes().windows(2) {
                assert!(w[0].id < w[1].id);
            }
            // Connections sorted by innovation, unique pairs.
            for w in g.connections().windows(2) {
                assert!(w[0].innovation < w[1].innovation);
            }
            assert!(g.num_enabled_connections() >= 1);
        }
    }

    #[test]
    fn delete_connection_never_removes_last_enabled() {
        let (_, mut tracker, mut rng) = setup();
        let mut g = Genome::bare(2, 1);
        g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        for _ in 0..50 {
            g.mutate_delete_connection(&mut rng);
        }
        assert_eq!(g.num_enabled_connections(), 1, "sole connection survives");
    }

    #[test]
    fn delete_node_removes_node_and_its_edges() {
        let (_, mut tracker, mut rng) = setup();
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        g.add_connection(1, 2, 1.0, &mut tracker).unwrap();
        let h = g
            .split_connection(innovation, Activation::Relu, &mut tracker)
            .unwrap();
        let before_nodes = g.nodes().len();
        // Repeatedly try until the hidden node goes (only one exists).
        for _ in 0..50 {
            g.mutate_delete_node(&mut rng);
        }
        assert_eq!(g.nodes().len(), before_nodes - 1);
        assert!(g.node(h).is_none());
        assert!(g.connections().iter().all(|c| c.from != h && c.to != h));
        assert!(g.decode().is_ok());
        assert!(g.num_enabled_connections() >= 1);
    }

    #[test]
    fn delete_node_skips_when_it_would_empty_the_genome() {
        let (_, mut tracker, mut rng) = setup();
        let mut g = Genome::bare(1, 1);
        let innovation = g.add_connection(0, 1, 1.0, &mut tracker).unwrap();
        let h = g
            .split_connection(innovation, Activation::Relu, &mut tracker)
            .unwrap();
        // Only enabled path runs through h (original edge disabled).
        for _ in 0..50 {
            g.mutate_delete_node(&mut rng);
        }
        assert!(
            g.node(h).is_some(),
            "deleting h would leave no enabled connections"
        );
    }

    #[test]
    fn crossover_child_only_carries_parental_innovations() {
        let (config, mut tracker, mut rng) = setup();
        let mut a = Genome::initial(&config, &mut tracker, &mut rng);
        let mut b = a.clone();
        for _ in 0..30 {
            a.mutate(&config, &mut tracker, &mut rng);
            b.mutate(&config, &mut tracker, &mut rng);
        }
        let child = a.crossover(&b, false, &config, &mut rng);
        let parental: Vec<Innovation> = a
            .connections()
            .iter()
            .chain(b.connections())
            .map(|c| c.innovation)
            .collect();
        for c in child.connections() {
            assert!(parental.contains(&c.innovation));
        }
        assert!(child.decode().is_ok());
    }

    #[test]
    fn crossover_with_weaker_parent_keeps_fitter_structure() {
        let (config, mut tracker, mut rng) = setup();
        let base = Genome::initial(&config, &mut tracker, &mut rng);
        let mut fitter = base.clone();
        for _ in 0..10 {
            fitter.mutate_add_connection(&config, &mut tracker, &mut rng);
        }
        let child = fitter.crossover(&base, false, &config, &mut rng);
        // All of fitter's innovations present (disjoint/excess kept).
        for c in fitter.connections() {
            assert!(
                child
                    .connections()
                    .iter()
                    .any(|cc| cc.innovation == c.innovation),
                "missing innovation {:?}",
                c.innovation
            );
        }
    }

    #[test]
    fn distance_is_zero_for_identical_and_positive_for_diverged() {
        let (config, mut tracker, mut rng) = setup();
        let a = Genome::initial(&config, &mut tracker, &mut rng);
        assert_eq!(a.compatibility_distance(&a, &config), 0.0);
        let mut b = a.clone();
        for _ in 0..20 {
            b.mutate(&config, &mut tracker, &mut rng);
        }
        assert!(a.compatibility_distance(&b, &config) > 0.0);
        // Symmetry.
        let d_ab = a.compatibility_distance(&b, &config);
        let d_ba = b.compatibility_distance(&a, &config);
        assert!((d_ab - d_ba).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_is_stable_for_clones_and_changes_on_mutation() {
        let (config, mut tracker, mut rng) = setup();
        let g = Genome::initial(&config, &mut tracker, &mut rng);
        assert_eq!(g.fingerprint(), g.clone().fingerprint());

        // Any parameter change moves the fingerprint.
        let mut weight_changed = g.clone();
        let c = weight_changed.connections()[0];
        weight_changed
            .set_weight(c.from, c.to, c.weight + 1.0)
            .unwrap();
        assert_ne!(g.fingerprint(), weight_changed.fingerprint());

        let mut bias_changed = g.clone();
        let out = g.num_inputs(); // first output node id
        bias_changed.set_bias(out, 42.0).unwrap();
        assert_ne!(g.fingerprint(), bias_changed.fingerprint());

        // Full mutation suite: repeated mutation keeps diverging.
        let mut mutated = g.clone();
        let mut seen = vec![g.fingerprint()];
        for _ in 0..20 {
            mutated.mutate(&config, &mut tracker, &mut rng);
            seen.push(mutated.fingerprint());
        }
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() > 10, "fingerprints track mutations");
    }

    #[test]
    fn set_weight_and_bias_roundtrip() {
        let (_, mut tracker, _) = setup();
        let mut g = Genome::bare(1, 1);
        g.add_connection(0, 1, 0.5, &mut tracker).unwrap();
        g.set_weight(0, 1, -0.25).unwrap();
        assert_eq!(g.connection_between(0, 1).unwrap().weight, -0.25);
        g.set_bias(1, 0.125).unwrap();
        assert_eq!(g.node(1).unwrap().bias, 0.125);
        assert!(g.set_bias(99, 0.0).is_err());
        assert!(g.set_weight(1, 0, 0.0).is_err());
    }
}
