//! Historical-marking ("innovation number") bookkeeping.
//!
//! NEAT aligns genes across genomes by *innovation number*: every
//! distinct structural addition — a connection between a particular
//! `(from, to)` pair, or a node splitting a particular connection —
//! receives a globally unique, monotonically increasing number the first
//! time it appears. If two genomes independently discover the same
//! structure in the same generation they receive the *same* number, so
//! that crossover can line the genes up.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A historical marking identifying a structural innovation.
///
/// Innovations are totally ordered by discovery time; crossover uses
/// this order to classify genes as matching, disjoint or excess.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Innovation(pub u64);

/// Hands out innovation numbers and node ids, deduplicating structural
/// mutations within a generation.
///
/// # Example
///
/// ```
/// use e3_neat::InnovationTracker;
///
/// let mut tracker = InnovationTracker::new();
/// let a = tracker.connection_innovation(0, 3);
/// let b = tracker.connection_innovation(0, 3); // same structure
/// let c = tracker.connection_innovation(1, 3); // different structure
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InnovationTracker {
    next_innovation: u64,
    next_node_id: usize,
    /// Per-generation dedup cache. Not serialized: checkpoints restore
    /// at a generation boundary, where the cache is empty anyway.
    #[serde(skip)]
    connection_cache: HashMap<(usize, usize), Innovation>,
    /// Splitting connection `(from, to)` yields a node id plus the two
    /// innovations of the replacement connections. Not serialized for
    /// the same reason as the connection cache.
    #[serde(skip)]
    split_cache: HashMap<(usize, usize), (usize, Innovation, Innovation)>,
}

impl InnovationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker whose node-id counter starts after the fixed
    /// input/output nodes, so newly split nodes never collide with them.
    pub fn with_reserved_nodes(reserved: usize) -> Self {
        InnovationTracker {
            next_node_id: reserved,
            ..Self::default()
        }
    }

    /// Returns the innovation number for a connection `from -> to`,
    /// allocating a fresh one only if this pair has not been seen since
    /// the last [`InnovationTracker::begin_generation`].
    pub fn connection_innovation(&mut self, from: usize, to: usize) -> Innovation {
        if let Some(&innovation) = self.connection_cache.get(&(from, to)) {
            return innovation;
        }
        let innovation = Innovation(self.next_innovation);
        self.next_innovation += 1;
        self.connection_cache.insert((from, to), innovation);
        innovation
    }

    /// Returns `(new_node_id, in_innovation, out_innovation)` for
    /// splitting connection `from -> to` with a new node, deduplicated
    /// within the current generation.
    pub fn split_innovation(&mut self, from: usize, to: usize) -> (usize, Innovation, Innovation) {
        if let Some(&hit) = self.split_cache.get(&(from, to)) {
            return hit;
        }
        let node = self.next_node_id;
        self.next_node_id += 1;
        let in_innovation = Innovation(self.next_innovation);
        let out_innovation = Innovation(self.next_innovation + 1);
        self.next_innovation += 2;
        let entry = (node, in_innovation, out_innovation);
        self.split_cache.insert((from, to), entry);
        entry
    }

    /// Allocates a fresh node id without caching (used when building
    /// initial genomes).
    pub fn fresh_node_id(&mut self) -> usize {
        let id = self.next_node_id;
        self.next_node_id += 1;
        id
    }

    /// Clears the per-generation deduplication caches. Innovation and
    /// node-id counters keep increasing monotonically for the lifetime
    /// of the tracker.
    pub fn begin_generation(&mut self) {
        self.connection_cache.clear();
        self.split_cache.clear();
    }

    /// Number of innovations allocated so far.
    pub fn innovations_allocated(&self) -> u64 {
        self.next_innovation
    }

    /// Raises the innovation and node-id counters to at least the
    /// given values (never lowers them).
    ///
    /// Used when a genome minted by a *different* tracker joins this
    /// population (island migration): the immigrant's numbers were
    /// allocated on its home island, so this tracker's counters must
    /// jump past them or a later structural mutation here would reuse
    /// an id the immigrant already carries — two distinct structures
    /// sharing one historical marking, which corrupts crossover
    /// alignment and node identity.
    pub fn absorb(&mut self, next_innovation: u64, next_node_id: usize) {
        self.next_innovation = self.next_innovation.max(next_innovation);
        self.next_node_id = self.next_node_id.max(next_node_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_structure_same_generation_shares_innovation() {
        let mut t = InnovationTracker::new();
        assert_eq!(t.connection_innovation(1, 2), t.connection_innovation(1, 2));
    }

    #[test]
    fn different_structures_get_distinct_innovations() {
        let mut t = InnovationTracker::new();
        let a = t.connection_innovation(1, 2);
        let b = t.connection_innovation(2, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn innovations_are_monotone() {
        let mut t = InnovationTracker::new();
        let a = t.connection_innovation(0, 1);
        let b = t.connection_innovation(0, 2);
        let c = t.connection_innovation(0, 3);
        assert!(a < b && b < c);
    }

    #[test]
    fn generation_boundary_resets_dedup_but_not_counter() {
        let mut t = InnovationTracker::new();
        let a = t.connection_innovation(1, 2);
        t.begin_generation();
        let b = t.connection_innovation(1, 2);
        assert_ne!(a, b, "new generation allocates a fresh number");
        assert!(b > a, "counter keeps increasing");
    }

    #[test]
    fn split_is_deduplicated_and_allocates_two_innovations() {
        let mut t = InnovationTracker::with_reserved_nodes(5);
        let before = t.innovations_allocated();
        let (node_a, in_a, out_a) = t.split_innovation(0, 4);
        let (node_b, in_b, out_b) = t.split_innovation(0, 4);
        assert_eq!((node_a, in_a, out_a), (node_b, in_b, out_b));
        assert_eq!(t.innovations_allocated(), before + 2);
        assert!(node_a >= 5, "split node ids start after reserved range");
        assert_ne!(in_a, out_a);
    }

    #[test]
    fn absorb_raises_counters_monotonically() {
        let mut t = InnovationTracker::with_reserved_nodes(4);
        let _ = t.connection_innovation(0, 1);
        t.absorb(100, 50);
        assert_eq!(t.innovations_allocated(), 100);
        assert_eq!(t.fresh_node_id(), 50);
        // Absorbing something already covered changes nothing.
        t.absorb(10, 5);
        assert_eq!(t.innovations_allocated(), 100);
        assert_eq!(t.fresh_node_id(), 51);
        let next = t.connection_innovation(2, 3);
        assert!(
            next.0 >= 100,
            "new innovations allocate past the absorbed range"
        );
    }

    #[test]
    fn reserved_nodes_offset_fresh_ids() {
        let mut t = InnovationTracker::with_reserved_nodes(10);
        assert_eq!(t.fresh_node_id(), 10);
        assert_eq!(t.fresh_node_id(), 11);
    }
}
