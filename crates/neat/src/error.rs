//! Error types for genome construction and decoding.

use std::error::Error;
use std::fmt;

/// Error produced when decoding a [`crate::Genome`] into a
/// [`crate::Network`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The enabled connections form a cycle, so no feed-forward
    /// evaluation order exists. Contains one node id on the cycle.
    Cycle(usize),
    /// A connection references a node id that does not exist in the
    /// genome.
    DanglingConnection {
        /// Source node id of the offending connection.
        from: usize,
        /// Target node id of the offending connection.
        to: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Cycle(node) => {
                write!(f, "enabled connections form a cycle through node {node}")
            }
            DecodeError::DanglingConnection { from, to } => {
                write!(f, "connection {from}->{to} references a missing node")
            }
        }
    }
}

impl Error for DecodeError {}

/// Error produced when a structural edit to a [`crate::Genome`] is
/// invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenomeError {
    /// The requested connection already exists.
    DuplicateConnection {
        /// Source node id.
        from: usize,
        /// Target node id.
        to: usize,
    },
    /// The requested connection would create a cycle in a feed-forward
    /// genome.
    WouldCycle {
        /// Source node id.
        from: usize,
        /// Target node id.
        to: usize,
    },
    /// A referenced node id does not exist.
    UnknownNode(usize),
    /// The connection targets an input node, which cannot receive
    /// incoming edges.
    TargetIsInput(usize),
}

impl fmt::Display for GenomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeError::DuplicateConnection { from, to } => {
                write!(f, "connection {from}->{to} already exists")
            }
            GenomeError::WouldCycle { from, to } => {
                write!(f, "connection {from}->{to} would create a cycle")
            }
            GenomeError::UnknownNode(id) => write!(f, "node {id} does not exist"),
            GenomeError::TargetIsInput(id) => {
                write!(f, "node {id} is an input and cannot receive connections")
            }
        }
    }
}

impl Error for GenomeError {}
