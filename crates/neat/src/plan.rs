//! The compiled-network IR: one flat CSR artifact per genome, shared
//! by every backend (the paper's "CreateNet" output).
//!
//! A [`NetPlan`] is what genome→phenotype decoding produces — a
//! single-arena, cache-friendly description of one irregular
//! feed-forward network. All three execution views are derived from
//! it without touching the genome again:
//!
//! * [`crate::Network`] — the software executor: a `NetPlan` plus a
//!   reusable scratch value buffer;
//! * `e3_inax::IrregularNet` — the hardware-facing view shipped to the
//!   INAX accelerator over the weight channel;
//! * `e3_systolic`'s dense padding — consumes the plan's level ranges
//!   to build the dense MLP counterpart.
//!
//! # CSR layout
//!
//! Compute nodes (hidden + output) are stored structure-of-arrays, in
//! **level-major topological order** (sorted by `(level, genome id)`):
//!
//! * `edges` — one contiguous `(value_slot, weight)` arena holding
//!   every ingress edge of every compute node, grouped per node and
//!   sorted within a node by `(slot, weight)`;
//! * `edge_ranges[i]` — the `(offset, len)` window of compute node
//!   `i`'s edges inside the arena;
//! * `biases[i]` / `activations[i]` / `node_ids[i]` — the node's
//!   parameters and originating genome id;
//! * `levels` — per compute level, the `(start, end)` compute-node
//!   index range (level `k` holds all nodes whose longest path from a
//!   source is `k + 1`);
//! * `outputs` — compute-node indices of the output nodes in genome
//!   id order (the order `execute_into` returns values in).
//!
//! # Value-buffer slot convention
//!
//! The plan is the single source of truth for the INAX value-buffer
//! layout: slot `i` holds input `i` for `i < num_inputs`, and the
//! activation of compute node `i - num_inputs` otherwise. Edge slots
//! always reference strictly earlier slots, so one in-order sweep per
//! inference suffices and *every* intermediate activation stays live —
//! exactly what irregular skip connections require (paper Fig. 4(c)).
//!
//! # Determinism
//!
//! [`NetPlan::execute_into`] accumulates `bias + Σ value·weight` in the
//! per-node sorted edge order, reproducing the historical
//! `Network::activate` floating-point operation order bit for bit (the
//! `e3-exec` determinism contract relies on this).

use crate::error::DecodeError;
use crate::genome::{Genome, NodeId, NodeKind};
use crate::Activation;
use serde::{Deserialize, Serialize};

/// A compiled irregular feed-forward network in flat CSR form.
///
/// Produced by [`NetPlan::compile`]; executed in place by
/// [`NetPlan::execute_into`]. See the [module docs](self) for the
/// layout and the value-buffer slot convention.
///
/// # Example
///
/// ```
/// use e3_neat::{Genome, InnovationTracker, NetPlan};
///
/// let mut tracker = InnovationTracker::with_reserved_nodes(3);
/// let mut genome = Genome::bare(2, 1);
/// genome.add_connection(0, 2, 0.5, &mut tracker)?;
/// genome.add_connection(1, 2, -0.5, &mut tracker)?;
/// let plan = NetPlan::compile(&genome)?;
/// assert_eq!(plan.num_compute_nodes(), 1);
/// let mut values = vec![0.0; plan.value_buffer_slots()];
/// let out = plan.execute_into(&[1.0, 1.0], &mut values);
/// assert_eq!(out.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetPlan {
    num_inputs: usize,
    num_outputs: usize,
    /// Edge arena: `(value_buffer_slot, weight)` for every ingress
    /// edge of every compute node, grouped per node.
    edges: Vec<(u32, f64)>,
    /// Per compute node: `(offset, len)` into `edges`.
    edge_ranges: Vec<(u32, u32)>,
    /// Per compute node: additive bias.
    biases: Vec<f64>,
    /// Per compute node: activation function.
    activations: Vec<Activation>,
    /// Per compute node: originating genome node id.
    node_ids: Vec<NodeId>,
    /// Per compute level: `(start, end)` compute-node index range.
    levels: Vec<(u32, u32)>,
    /// Compute-node indices of the outputs, in genome id order.
    outputs: Vec<u32>,
}

impl NetPlan {
    /// Compiles a genome: resolves node dependencies, topologically
    /// sorts (Kahn, level = longest path from any source), and packs
    /// the result into the flat CSR layout.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Cycle`] if the enabled connections are
    /// cyclic, or [`DecodeError::DanglingConnection`] if a connection
    /// references a missing node.
    pub fn compile(genome: &Genome) -> Result<Self, DecodeError> {
        let genome_nodes = genome.nodes();
        let index_of =
            |id: NodeId| -> Option<usize> { genome_nodes.binary_search_by_key(&id, |n| n.id).ok() };

        // Adjacency over genome node indices using enabled connections.
        let n = genome_nodes.len();
        assert!(n <= u32::MAX as usize, "genome too large for u32 slots");
        let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut in_degree = vec![0usize; n];
        for c in genome.connections().iter().filter(|c| c.enabled) {
            let (from, to) = match (index_of(c.from), index_of(c.to)) {
                (Some(f), Some(t)) => (f, t),
                _ => {
                    return Err(DecodeError::DanglingConnection {
                        from: c.from,
                        to: c.to,
                    })
                }
            };
            incoming[to].push((from, c.weight));
            out_edges[from].push(to);
            in_degree[to] += 1;
        }

        // Kahn topological sort, inputs first, then by readiness. Level =
        // longest path from any source.
        let mut level = vec![0usize; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        // Deterministic order: process by genome node id.
        ready.sort_unstable();
        let mut remaining = in_degree.clone();
        let mut queue = std::collections::VecDeque::from(ready);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            // Non-input sources (isolated hidden/outputs) sit at level 1+.
            if genome_nodes[i].kind != NodeKind::Input && incoming[i].is_empty() {
                level[i] = level[i].max(1);
            }
            for &succ in &out_edges[i] {
                level[succ] = level[succ].max(level[i] + 1);
                remaining[succ] -= 1;
                if remaining[succ] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| remaining[i] > 0).unwrap_or(0);
            return Err(DecodeError::Cycle(genome_nodes[stuck].id));
        }

        // Emit nodes sorted by (level, genome id): indices increase
        // monotonically with level, so evaluation is a single sweep and
        // node index == value-buffer slot. Level 0 is exactly the
        // inputs (ids 0..num_inputs), so input `i` lands in slot `i`.
        let mut by_level: Vec<usize> = (0..n).collect();
        by_level.sort_by_key(|&i| (level[i], genome_nodes[i].id));
        let mut new_index = vec![0usize; n];
        for (new_i, &old_i) in by_level.iter().enumerate() {
            new_index[old_i] = new_i;
        }

        let num_inputs = genome.num_inputs();
        debug_assert!(
            by_level
                .iter()
                .take(num_inputs)
                .all(|&i| genome_nodes[i].kind == NodeKind::Input),
            "level 0 must hold exactly the input nodes"
        );
        let num_compute = n - num_inputs;
        let num_edges: usize = incoming.iter().map(Vec::len).sum();
        let mut edges: Vec<(u32, f64)> = Vec::with_capacity(num_edges);
        let mut edge_ranges: Vec<(u32, u32)> = Vec::with_capacity(num_compute);
        let mut biases: Vec<f64> = Vec::with_capacity(num_compute);
        let mut activations: Vec<Activation> = Vec::with_capacity(num_compute);
        let mut node_ids: Vec<NodeId> = Vec::with_capacity(num_compute);
        let mut levels: Vec<(u32, u32)> = Vec::new();
        let mut outputs_with_ids: Vec<(NodeId, u32)> = Vec::new();
        let mut current_level = usize::MAX;
        for (emit_idx, &old_i) in by_level.iter().enumerate().skip(num_inputs) {
            let g = genome_nodes[old_i];
            let compute_idx = (emit_idx - num_inputs) as u32;
            let mut inc: Vec<(u32, f64)> = incoming[old_i]
                .iter()
                .map(|&(src, w)| (new_index[src] as u32, w))
                .collect();
            // Sorted edge order fixes the FP accumulation order — part
            // of the determinism contract, do not change.
            inc.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            let offset = edges.len() as u32;
            edges.extend(inc);
            edge_ranges.push((offset, edges.len() as u32 - offset));
            biases.push(g.bias);
            activations.push(g.activation);
            node_ids.push(g.id);
            if level[old_i] != current_level {
                levels.push((compute_idx, compute_idx + 1));
                current_level = level[old_i];
            } else {
                levels.last_mut().expect("just pushed").1 = compute_idx + 1;
            }
            if g.kind == NodeKind::Output {
                outputs_with_ids.push((g.id, compute_idx));
            }
        }
        outputs_with_ids.sort_unstable();
        let outputs = outputs_with_ids.into_iter().map(|(_, i)| i).collect();

        Ok(NetPlan {
            num_inputs,
            num_outputs: genome.num_outputs(),
            edges,
            edge_ranges,
            biases,
            activations,
            node_ids,
            levels,
            outputs,
        })
    }

    /// Runs one forward pass using a caller-provided value buffer of
    /// [`NetPlan::value_buffer_slots`] slots (reusable across calls —
    /// every slot is overwritten). Returns the output activations in
    /// genome id order, bit-identical to the historical
    /// `Network::activate`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `values` have the wrong length.
    pub fn execute_into(&self, inputs: &[f64], values: &mut [f64]) -> Vec<f64> {
        self.fill(inputs, values);
        // Inline output gather: `read_outputs` re-validates the buffer
        // length, which `fill` already checked.
        self.outputs
            .iter()
            .map(|&i| values[self.num_inputs + i as usize])
            .collect()
    }

    /// Runs one forward pass with **zero allocation**: the value buffer
    /// and the output vector are both caller-owned and reused.
    /// `outputs` is cleared and refilled with the output activations in
    /// genome id order — bit-identical to [`NetPlan::execute_into`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `values` have the wrong length.
    pub fn execute_into_buf(&self, inputs: &[f64], values: &mut [f64], outputs: &mut Vec<f64>) {
        self.fill(inputs, values);
        outputs.clear();
        outputs.extend(
            self.outputs
                .iter()
                .map(|&i| values[self.num_inputs + i as usize]),
        );
    }

    /// The forward-pass kernel: validates buffer sizes and overwrites
    /// every slot of `values` in level order.
    fn fill(&self, inputs: &[f64], values: &mut [f64]) {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "expected {} inputs, got {}",
            self.num_inputs,
            inputs.len()
        );
        assert_eq!(
            values.len(),
            self.value_buffer_slots(),
            "value buffer size mismatch"
        );
        values[..self.num_inputs].copy_from_slice(inputs);
        let node = self
            .edge_ranges
            .iter()
            .zip(&self.biases)
            .zip(&self.activations);
        for (i, ((&(offset, len), &bias), activation)) in node.enumerate() {
            // Compute node `i` writes slot `num_inputs + i`. Bias first,
            // then the sorted edges in order: the exact FP accumulation
            // order of the legacy per-node executor.
            let slot = self.num_inputs + i;
            let mut acc = bias;
            for &(source, weight) in &self.edges[offset as usize..(offset + len) as usize] {
                debug_assert!((source as usize) < slot, "forward-only slots");
                acc += values[source as usize] * weight;
            }
            values[slot] = activation.apply(acc);
        }
    }

    /// Reads the output activations out of a value buffer previously
    /// filled by [`NetPlan::execute_into`], in genome id order.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn read_outputs(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(
            values.len(),
            self.value_buffer_slots(),
            "value buffer size mismatch"
        );
        self.outputs
            .iter()
            .map(|&i| values[self.num_inputs + i as usize])
            .collect()
    }

    /// Runs one forward pass with a temporary value buffer.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the input count.
    pub fn execute(&self, inputs: &[f64]) -> Vec<f64> {
        let mut values = vec![0.0; self.value_buffer_slots()];
        self.execute_into(inputs, &mut values)
    }

    /// Number of input nodes (and leading value-buffer slots).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of compute nodes (hidden + output).
    pub fn num_compute_nodes(&self) -> usize {
        self.biases.len()
    }

    /// Total number of nodes (inputs + compute).
    pub fn num_nodes(&self) -> usize {
        self.num_inputs + self.biases.len()
    }

    /// Total number of enabled connections (MACs per inference).
    pub fn num_connections(&self) -> usize {
        self.edges.len()
    }

    /// Size of the value buffer (inputs + compute nodes).
    pub fn value_buffer_slots(&self) -> usize {
        self.num_inputs + self.biases.len()
    }

    /// Compute levels as `(start, end)` compute-node index ranges, in
    /// level order (the input level is implicit).
    pub fn levels(&self) -> &[(u32, u32)] {
        &self.levels
    }

    /// Number of compute levels (levels excluding the input level).
    pub fn num_compute_levels(&self) -> usize {
        self.levels.len()
    }

    /// Ingress edges of compute node `i` as `(value_slot, weight)`
    /// pairs, in the deterministic `(slot, weight)` sort order.
    pub fn node_edges(&self, i: usize) -> &[(u32, f64)] {
        let (offset, len) = self.edge_ranges[i];
        &self.edges[offset as usize..(offset + len) as usize]
    }

    /// Bias of compute node `i`.
    pub fn bias(&self, i: usize) -> f64 {
        self.biases[i]
    }

    /// Activation function of compute node `i`.
    pub fn activation(&self, i: usize) -> Activation {
        self.activations[i]
    }

    /// Genome node id each compute node was compiled from.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Compute-node indices of the output nodes, in genome id order.
    pub fn outputs(&self) -> &[u32] {
        &self.outputs
    }

    /// Nodes per compute level, the statistic of Fig. 4(f) and the
    /// quantity that bounds useful PE parallelism.
    pub fn level_widths(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|&(start, end)| (end - start) as usize)
            .collect()
    }

    /// In-degree ("degree of node") for each compute node, the
    /// statistic of Fig. 4(e). Variable in-degree is what makes PE
    /// execution time variable in INAX.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.edge_ranges
            .iter()
            .map(|&(_, len)| len as usize)
            .collect()
    }

    /// The paper's density metric: enabled connections divided by the
    /// connections of the *dense MLP counterpart* — a layered MLP with
    /// the same per-level widths and full adjacent-level connectivity.
    /// Irregular nets with long skip connections can exceed 1.0
    /// (Fig. 4(c)).
    pub fn density(&self) -> f64 {
        let widths: Vec<usize> = std::iter::once(self.num_inputs)
            .chain(self.level_widths())
            .collect();
        let dense: usize = widths.windows(2).map(|w| w[0] * w[1]).sum();
        if dense == 0 {
            return 0.0;
        }
        self.num_connections() as f64 / dense as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Genome, InnovationTracker};

    fn chain_genome() -> Genome {
        // 2 inputs -> hidden -> output, plus a skip connection 1 -> out.
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, 0.5, &mut tracker).unwrap();
        g.add_connection(1, 2, 0.25, &mut tracker).unwrap();
        let h = g
            .split_connection(innovation, Activation::Identity, &mut tracker)
            .unwrap();
        g.set_bias(h, 0.0).unwrap();
        g
    }

    #[test]
    fn compile_packs_level_major_csr() {
        let g = chain_genome();
        let plan = NetPlan::compile(&g).unwrap();
        assert_eq!(plan.num_inputs(), 2);
        assert_eq!(plan.num_outputs(), 1);
        assert_eq!(plan.num_compute_nodes(), 2); // hidden + output
        assert_eq!(plan.num_nodes(), 4);
        assert_eq!(plan.num_connections(), 3);
        assert_eq!(plan.value_buffer_slots(), 4);
        // hidden at level 1 (compute idx 0), output at level 2 (idx 1).
        assert_eq!(plan.levels(), &[(0, 1), (1, 2)]);
        assert_eq!(plan.num_compute_levels(), 2);
        assert_eq!(plan.level_widths(), vec![1, 1]);
        // Hidden reads input slot 0; output reads slots 1 (input) and
        // 2 (hidden), sorted by slot.
        assert_eq!(plan.node_edges(0), &[(0, 1.0)]);
        assert_eq!(plan.node_edges(1), &[(1, 0.25), (2, 0.5)]);
        assert_eq!(plan.outputs(), &[1]);
    }

    #[test]
    fn execute_matches_hand_computation() {
        let g = chain_genome();
        let plan = NetPlan::compile(&g).unwrap();
        let out = plan.execute(&[0.8, 0.4]);
        let expect = (0.5 * 0.8 + 0.25 * 0.4f64).tanh();
        assert!((out[0] - expect).abs() < 1e-12, "{} vs {expect}", out[0]);
    }

    #[test]
    fn execute_into_overwrites_every_slot() {
        let g = chain_genome();
        let plan = NetPlan::compile(&g).unwrap();
        let mut values = vec![f64::NAN; plan.value_buffer_slots()];
        let a = plan.execute_into(&[1.0, 2.0], &mut values);
        assert!(values.iter().all(|v| v.is_finite()));
        let b = plan.execute_into(&[1.0, 2.0], &mut values);
        assert_eq!(a, b, "buffer reuse must not corrupt results");
        assert_eq!(plan.read_outputs(&values), b);
    }

    #[test]
    #[should_panic(expected = "expected 2 inputs")]
    fn wrong_input_count_panics() {
        let g = chain_genome();
        let plan = NetPlan::compile(&g).unwrap();
        let _ = plan.execute(&[1.0]);
    }

    #[test]
    fn cyclic_genome_fails_compile() {
        let mut g = chain_genome();
        let mut tracker = InnovationTracker::with_reserved_nodes(4);
        // Self-loop on the output: only a recurrent executor could run
        // this, so the plan path must reject it.
        g.add_connection_unchecked(2, 2, 0.5, &mut tracker).unwrap();
        assert!(matches!(NetPlan::compile(&g), Err(DecodeError::Cycle(_))));
    }

    #[test]
    fn dangling_connection_is_reported() {
        let g = chain_genome();
        let json = serde_json::to_string(&g).unwrap();
        let hacked = json.replace("\"to\":2", "\"to\":99");
        let bad: Genome = serde_json::from_str(&hacked).unwrap();
        assert!(matches!(
            NetPlan::compile(&bad),
            Err(DecodeError::DanglingConnection { .. })
        ));
    }

    #[test]
    fn serde_round_trips() {
        let g = chain_genome();
        let plan = NetPlan::compile(&g).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: NetPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
