//! # e3-neat — NEAT for the E3 platform
//!
//! A from-scratch implementation of NEAT (NeuroEvolution of Augmenting
//! Topologies, Stanley & Miikkulainen 2002) as used by the E3 HW/SW
//! co-design platform (Kao & Krishna, ISPASS 2021).
//!
//! NEAT evolves both the **topology** and the **weights** of small
//! feed-forward neural networks with a genetic algorithm:
//!
//! * a [`Genome`] is a list of node genes and connection genes, each
//!   connection tagged with a global *innovation number* so that
//!   structurally-matching genes can be aligned during crossover;
//! * an [`InnovationTracker`] hands out innovation numbers and guarantees
//!   that the same structural mutation discovered twice in one generation
//!   receives the same number;
//! * a [`Population`] evaluates genomes (through any fitness function —
//!   in E3 this is offloaded to the INAX accelerator), groups them into
//!   [`Species`] by topological similarity, and reproduces the next
//!   generation with elitism, crossover and mutation;
//! * decoding a genome produces a [`NetPlan`] — a flat CSR compiled
//!   IR with nodes in topological order grouped into *levels*, which
//!   is exactly the schedulable unit the INAX accelerator consumes —
//!   and a [`Network`] executes that plan in software with a reusable
//!   value buffer (see [`plan`] for the layout and slot convention).
//!
//! The networks NEAT evolves are **irregular**: connections may skip
//! levels and fan in from any earlier node, which is the central
//! challenge the E3 paper's INAX accelerator addresses.
//!
//! ## Example
//!
//! Evolve a genome that computes XOR:
//!
//! ```
//! use e3_neat::{NeatConfig, Population};
//!
//! let cases = [([0.0, 0.0], 0.0), ([0.0, 1.0], 1.0),
//!               ([1.0, 0.0], 1.0), ([1.0, 1.0], 0.0)];
//! let config = NeatConfig::builder(2, 1).population_size(150).build();
//! let mut pop = Population::new(config, 42);
//! for _ in 0..50 {
//!     pop.evaluate(|genome| {
//!         let mut net = genome.decode().expect("feed-forward genome");
//!         let mut fitness = 4.0;
//!         for (input, want) in &cases {
//!             let out = net.activate(input)[0];
//!             fitness -= (out - want) * (out - want);
//!         }
//!         fitness
//!     });
//!     if pop.best().map_or(false, |b| b.fitness > 3.5) { break; }
//!     pop.evolve();
//! }
//! assert!(pop.best().is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod checkpoint;
pub mod config;
pub mod forward;
pub mod genome;
pub mod innovation;
pub mod lineage;
pub mod network;
pub mod plan;
pub mod plan_batch;
pub mod population;
pub mod recurrent;
pub mod reference;
pub mod species;
pub mod stats;

mod error;

pub use activation::Activation;
pub use checkpoint::PopulationSnapshot;
pub use config::{NeatConfig, NeatConfigBuilder};
pub use error::{DecodeError, GenomeError};
pub use forward::ForwardPass;
pub use genome::{ConnectionGene, Genome, NodeGene, NodeId, NodeKind};
pub use innovation::{Innovation, InnovationTracker};
pub use lineage::SpeciesHistory;
pub use network::Network;
pub use plan::NetPlan;
pub use plan_batch::PlanBatch;
pub use population::{EvaluatedGenome, Population};
pub use recurrent::RecurrentNetwork;
pub use reference::ReferenceNetwork;
pub use species::Species;
