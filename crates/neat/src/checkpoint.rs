//! Population checkpointing.
//!
//! Edge deployments of E3 need to survive power cycles: the paper's
//! model-tuning scenario assumes a previously learned population can
//! be reloaded and evolution resumed on-device. A
//! [`PopulationSnapshot`] captures everything about a run — genomes,
//! species representatives, innovation bookkeeping, generation
//! counter, all-time best, *and the evolve-phase RNG stream* — in a
//! serde-serializable form. Because the RNG state rides along,
//! restoring a snapshot continues evolution **bit-identically**: the
//! resumed population produces exactly the genomes, species, and
//! fitness trajectory the uninterrupted run would have. This is the
//! contract the `e3-store` crash-safe run store builds on.
//!
//! # `v0` compatibility
//!
//! Snapshots serialized before RNG capture landed (`v0` JSON, no
//! `rng_state` field) still deserialize: [`PopulationSnapshot::restore`]
//! falls back to reseeding from its `seed` argument, so a `v0` restore
//! is a valid — but not bit-identical — continuation, exactly as
//! documented when those snapshots were written.

use crate::config::NeatConfig;
use crate::genome::Genome;
use crate::innovation::InnovationTracker;
use crate::population::{EvaluatedGenome, Population};
use crate::species::Species;
use serde::{Deserialize, Serialize};

/// Serializable state of a [`Population`].
///
/// # Example
///
/// A restored population replays the captured RNG stream, so the
/// continuation is bit-identical to never having snapshotted at all:
///
/// ```
/// use e3_neat::{NeatConfig, Population};
/// use e3_neat::checkpoint::PopulationSnapshot;
///
/// let mut pop = Population::new(NeatConfig::builder(2, 1).population_size(10).build(), 1);
/// pop.evaluate(|g| g.num_enabled_connections() as f64);
/// let snapshot = PopulationSnapshot::capture(&pop);
/// let json = serde_json::to_string(&snapshot)?;
/// let restored: PopulationSnapshot = serde_json::from_str(&json)?;
/// let mut resumed = restored.restore(7); // seed ignored: RNG state is captured
/// resumed.evolve();
/// pop.evolve();
/// assert_eq!(resumed.genomes(), pop.genomes());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationSnapshot {
    /// The NEAT configuration.
    pub config: NeatConfig,
    /// Current-generation genomes.
    pub genomes: Vec<Genome>,
    /// Fitness values, if the generation was evaluated.
    pub fitnesses: Vec<Option<f64>>,
    /// Species (with representatives and stagnation records).
    pub species: Vec<Species>,
    /// Generation counter.
    pub generation: usize,
    /// Next species id to allocate.
    pub next_species_id: usize,
    /// All-time best genome, if any evaluation happened.
    pub best: Option<EvaluatedGenome>,
    /// Innovation bookkeeping (counters and per-generation caches).
    pub tracker: InnovationTracker,
    /// Evolve-phase RNG state (xoshiro256++ words). `None` only in
    /// `v0` snapshots serialized before RNG capture; restoring those
    /// reseeds instead of resuming the stream.
    pub rng_state: Option<[u64; 4]>,
}

impl PopulationSnapshot {
    /// Captures the current state of a population.
    pub fn capture(population: &Population) -> Self {
        population.snapshot()
    }

    /// Rebuilds a population from this snapshot.
    ///
    /// When the snapshot carries [`PopulationSnapshot::rng_state`]
    /// (always, for snapshots captured by this version), the resumed
    /// evolution is bit-identical to the uninterrupted run and `seed`
    /// is ignored. For `v0` snapshots without RNG state, `seed`
    /// reseeds the RNG and the continuation is valid but not
    /// bit-identical.
    pub fn restore(self, seed: u64) -> Population {
        Population::from_snapshot(self, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evolved() -> Population {
        let config = NeatConfig::builder(3, 2).population_size(20).build();
        let mut pop = Population::new(config, 5);
        for _ in 0..5 {
            pop.evaluate(|g| g.num_enabled_connections() as f64);
            pop.evolve();
        }
        pop.evaluate(|g| g.num_hidden() as f64);
        pop
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let pop = evolved();
        let snapshot = PopulationSnapshot::capture(&pop);
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: PopulationSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.genomes.len(), 20);
        assert_eq!(back.generation, pop.generation());
        assert_eq!(back.genomes, pop.genomes());
        assert_eq!(
            back.best.as_ref().map(|b| b.fitness),
            pop.best().map(|b| b.fitness)
        );
    }

    #[test]
    fn restored_population_continues_evolving() {
        let pop = evolved();
        let best_before = pop.best().unwrap().fitness;
        let snapshot = PopulationSnapshot::capture(&pop);
        let mut resumed = snapshot.restore(99);
        assert_eq!(resumed.generation(), pop.generation());
        for _ in 0..3 {
            resumed.evaluate(|g| g.num_hidden() as f64);
            resumed.evolve();
        }
        assert_eq!(resumed.genomes().len(), 20);
        assert!(resumed.best().unwrap().fitness >= best_before.min(0.0));
    }

    #[test]
    fn restored_population_continues_bit_identically() {
        // The captured RNG state makes the snapshot+restore path
        // indistinguishable from never snapshotting: every subsequent
        // generation is genome-for-genome identical.
        let mut pop = evolved();
        let mut resumed = PopulationSnapshot::capture(&pop).restore(12345);
        for _ in 0..4 {
            pop.evolve();
            resumed.evolve();
            assert_eq!(pop.genomes(), resumed.genomes());
            pop.evaluate(|g| g.num_hidden() as f64);
            resumed.evaluate(|g| g.num_hidden() as f64);
            assert_eq!(pop.fitnesses(), resumed.fitnesses());
        }
        assert_eq!(
            pop.best().map(|b| b.fitness),
            resumed.best().map(|b| b.fitness)
        );
    }

    #[test]
    fn v0_snapshot_without_rng_state_still_restores() {
        // Old JSON snapshots predate the `rng_state` field; they must
        // keep deserializing and restoring (reseeded, not
        // bit-identical).
        let pop = evolved();
        let snapshot = PopulationSnapshot::capture(&pop);
        // A v0 file simply lacks the field entirely — strip it from
        // the serialized object to reproduce one.
        let value = serde_json::to_value(&snapshot).unwrap();
        let serde_json::Value::Object(fields) = value else {
            panic!("snapshot serializes as an object");
        };
        let v0 = serde_json::Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "rng_state")
                .collect(),
        );
        let json = serde_json::to_string(&v0).unwrap();
        assert!(!json.contains("rng_state"));
        let back: PopulationSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rng_state, None);
        let mut resumed = back.restore(17);
        assert_eq!(resumed.generation(), pop.generation());
        resumed.evolve();
        assert_eq!(resumed.genomes().len(), pop.genomes().len());
    }

    #[test]
    fn innovation_counters_survive_restore() {
        // New structural mutations after restore must not reuse old
        // innovation numbers.
        let pop = evolved();
        let max_innovation_before = pop
            .genomes()
            .iter()
            .flat_map(|g| g.connections())
            .map(|c| c.innovation)
            .max()
            .unwrap();
        let mut resumed = PopulationSnapshot::capture(&pop).restore(3);
        for _ in 0..5 {
            resumed.evaluate(|g| g.num_enabled_connections() as f64);
            resumed.evolve();
        }
        let any_new = resumed
            .genomes()
            .iter()
            .flat_map(|g| g.connections())
            .any(|c| c.innovation > max_innovation_before);
        if any_new {
            // All new innovations must be strictly greater — guaranteed
            // by the monotone counter carried in the snapshot.
            let min_new = resumed
                .genomes()
                .iter()
                .flat_map(|g| g.connections())
                .filter(|c| c.innovation > max_innovation_before)
                .map(|c| c.innovation.0)
                .min()
                .unwrap();
            assert!(min_new > max_innovation_before.0);
        }
    }
}
