//! The scalar execution seam shared by every forward-pass executor.
//!
//! Episode loops (one network call per environment step) only need
//! "run one forward pass into a reusable buffer". [`ForwardPass`]
//! names exactly that contract, so the same episode kernel can drive
//! the interpreted [`Network`](crate::Network), the batched lanes'
//! scalar twin, or a natively compiled plan (`e3-jit`'s
//! `CompiledPlan`) — the execution *tiers* — interchangeably.
//!
//! Every implementation must be **bit-identical** to
//! [`NetPlan::execute_into_buf`](crate::NetPlan::execute_into_buf) on
//! the same plan and inputs: the interpreter is the permanent oracle,
//! and tiers may only differ in speed, never in results.

use crate::network::Network;

/// One reusable-buffer forward pass — the contract episode kernels are
/// generic over.
pub trait ForwardPass {
    /// Runs one forward pass and returns the output node values in
    /// genome id order as a slice into an internal reusable buffer.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the network's input count.
    fn activate_into(&mut self, inputs: &[f64]) -> &[f64];

    /// Number of input nodes.
    fn num_inputs(&self) -> usize;

    /// Number of output nodes.
    fn num_outputs(&self) -> usize;
}

impl ForwardPass for Network {
    fn activate_into(&mut self, inputs: &[f64]) -> &[f64] {
        Network::activate_into(self, inputs)
    }

    fn num_inputs(&self) -> usize {
        Network::num_inputs(self)
    }

    fn num_outputs(&self) -> usize {
        Network::num_outputs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Genome, InnovationTracker};

    fn run_generic<N: ForwardPass>(net: &mut N, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(net.num_inputs(), inputs.len());
        net.activate_into(inputs).to_vec()
    }

    #[test]
    fn network_implements_the_seam() {
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        g.add_connection(0, 2, 0.5, &mut tracker).unwrap();
        g.add_connection(1, 2, -0.5, &mut tracker).unwrap();
        let mut net = g.decode().unwrap();
        let direct = net.activate(&[0.25, -0.75]);
        let via_seam = run_generic(&mut net, &[0.25, -0.75]);
        assert_eq!(
            direct.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
            via_seam.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        );
        assert_eq!(ForwardPass::num_outputs(&net), 1);
    }
}
