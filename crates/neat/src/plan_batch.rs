//! Population-major batched execution of many [`NetPlan`]s.
//!
//! The scalar executor walks one genome's CSR plan at a time; per
//! inference that is a sub-microsecond kernel, far too little work to
//! amortize either thread-pool wakeups or cache misses. A
//! [`PlanBatch`] packs the plans of many live individuals into one
//! struct-of-arrays arena, merged **by level**: merged level `k`
//! holds every individual's level-`k` compute nodes back to back, so
//! [`PlanBatch::activate_batch_into`] sweeps each level across the
//! whole population in one SIMD-friendly inner loop over contiguous
//! bias/activation/edge arrays.
//!
//! # Determinism contract
//!
//! Within one individual, nodes keep their plan's compute-node index
//! order (which is level-major) and every node accumulates
//! `bias + Σ value·weight` over its sorted edge list — the exact
//! floating-point operation order of [`NetPlan::execute_into`]. Since
//! individuals never read each other's value slots, each lane of the
//! batch is **bit-identical** to executing its plan alone, regardless
//! of batch composition. The only licensed deviation is the
//! `fast-math` cargo feature (off by default), which swaps the exact
//! activation functions for [`Activation::apply_fast`] inside this
//! kernel — and nowhere else; enabling it forfeits bit-exactness with
//! the scalar path while keeping trajectories within the documented
//! `1e-3` activation error.

use crate::activation::Activation;
use crate::plan::NetPlan;

/// One individual's compute node inside the merged arena.
#[derive(Debug, Clone, Copy)]
struct BatchNode {
    /// Which lane (individual) the node belongs to.
    lane: u32,
    /// Global value-buffer slot the node writes.
    slot: u32,
    /// `(offset, len)` window into the shared edge arena.
    edge_range: (u32, u32),
    bias: f64,
    activation: Activation,
}

/// A struct-of-arrays arena over many individuals' [`NetPlan`]s,
/// merged by level for population-major execution.
///
/// # Example
///
/// ```
/// use e3_neat::{Genome, InnovationTracker, NetPlan, PlanBatch};
///
/// let mut tracker = InnovationTracker::with_reserved_nodes(3);
/// let mut genome = Genome::bare(2, 1);
/// genome.add_connection(0, 2, 0.5, &mut tracker)?;
/// genome.add_connection(1, 2, -0.5, &mut tracker)?;
/// let plan = NetPlan::compile(&genome)?;
/// let batch = PlanBatch::build(&[&plan, &plan]);
/// let mut values = vec![0.0; batch.value_buffer_slots()];
/// let mut outputs = vec![0.0; 2 * batch.num_outputs()];
/// batch.activate_batch_into(&[1.0, 1.0, 0.5, 0.5], &[true, true], &mut values, &mut outputs);
/// let solo = plan.execute(&[1.0, 1.0]);
/// assert_eq!(outputs[0], solo[0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlanBatch {
    num_inputs: usize,
    num_outputs: usize,
    lanes: usize,
    /// All individuals' compute nodes, level-major: merged level `k`
    /// holds every lane's level-`k` nodes, lanes in ascending order.
    nodes: Vec<BatchNode>,
    /// Shared edge arena with **globalized** source slots.
    edges: Vec<(u32, f64)>,
    /// Per merged level: `(start, end)` index range into `nodes`.
    levels: Vec<(u32, u32)>,
    /// Per lane: first global value slot (the lane's inputs live at
    /// `value_base[lane] .. value_base[lane] + num_inputs`).
    value_base: Vec<u32>,
    /// Total global value slots across all lanes.
    value_slots: usize,
    /// Lane-major global value slots of the output nodes
    /// (`lanes × num_outputs`, genome id order within a lane).
    output_slots: Vec<u32>,
}

impl PlanBatch {
    /// Packs `plans` (one per lane, in lane order) into the merged
    /// arena.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty or the plans disagree on input or
    /// output counts (a batch evaluates one population against one
    /// environment).
    pub fn build(plans: &[&NetPlan]) -> Self {
        assert!(!plans.is_empty(), "a batch needs at least one plan");
        let num_inputs = plans[0].num_inputs();
        let num_outputs = plans[0].num_outputs();
        for p in plans {
            assert_eq!(p.num_inputs(), num_inputs, "plans must share input count");
            assert_eq!(
                p.num_outputs(),
                num_outputs,
                "plans must share output count"
            );
        }

        let mut value_base = Vec::with_capacity(plans.len());
        let mut value_slots = 0u32;
        for p in plans {
            value_base.push(value_slots);
            let slots = u32::try_from(p.value_buffer_slots()).expect("plan fits u32 slots");
            value_slots = value_slots
                .checked_add(slots)
                .expect("batch value buffer fits u32 slots");
        }

        let total_nodes: usize = plans.iter().map(|p| p.num_compute_nodes()).sum();
        let total_edges: usize = plans.iter().map(|p| p.num_connections()).sum();
        let max_levels = plans.iter().map(|p| p.levels().len()).max().unwrap_or(0);

        let mut nodes: Vec<BatchNode> = Vec::with_capacity(total_nodes);
        let mut edges: Vec<(u32, f64)> = Vec::with_capacity(total_edges);
        let mut levels: Vec<(u32, u32)> = Vec::with_capacity(max_levels);
        for k in 0..max_levels {
            let level_start = nodes.len() as u32;
            for (lane, plan) in plans.iter().enumerate() {
                let Some(&(start, end)) = plan.levels().get(k) else {
                    continue;
                };
                let base = value_base[lane];
                for i in start as usize..end as usize {
                    let offset = edges.len() as u32;
                    // Globalize edge sources into the lane's slot
                    // window; the per-node sorted order is preserved
                    // verbatim (FP accumulation order contract).
                    edges.extend(plan.node_edges(i).iter().map(|&(src, w)| (base + src, w)));
                    nodes.push(BatchNode {
                        lane: lane as u32,
                        slot: base + num_inputs as u32 + i as u32,
                        edge_range: (offset, edges.len() as u32 - offset),
                        bias: plan.bias(i),
                        activation: plan.activation(i),
                    });
                }
            }
            levels.push((level_start, nodes.len() as u32));
        }

        let mut output_slots = Vec::with_capacity(plans.len() * num_outputs);
        for (lane, plan) in plans.iter().enumerate() {
            let base = value_base[lane];
            output_slots.extend(plan.outputs().iter().map(|&i| base + num_inputs as u32 + i));
        }

        PlanBatch {
            num_inputs,
            num_outputs,
            lanes: plans.len(),
            nodes,
            edges,
            levels,
            value_base,
            value_slots: value_slots as usize,
            output_slots,
        }
    }

    /// Runs one forward pass for every **active** lane, zero
    /// allocation. `inputs` and `outputs` are lane-major
    /// (`lanes × num_inputs` / `lanes × num_outputs`); `values` is the
    /// reusable global value buffer of [`PlanBatch::value_buffer_slots`]
    /// slots. Parked lanes are skipped entirely: their value slots and
    /// output rows keep whatever they held before the call.
    ///
    /// Per lane, results are bit-identical to running that lane's
    /// [`NetPlan::execute_into`] alone (with `fast-math` off — see the
    /// [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if any buffer has the wrong length.
    pub fn activate_batch_into(
        &self,
        inputs: &[f64],
        active: &[bool],
        values: &mut [f64],
        outputs: &mut [f64],
    ) {
        assert_eq!(
            inputs.len(),
            self.lanes * self.num_inputs,
            "expected {} x {} lane-major inputs",
            self.lanes,
            self.num_inputs
        );
        assert_eq!(active.len(), self.lanes, "one active flag per lane");
        assert_eq!(values.len(), self.value_slots, "value buffer size mismatch");
        assert_eq!(
            outputs.len(),
            self.lanes * self.num_outputs,
            "expected {} x {} lane-major outputs",
            self.lanes,
            self.num_outputs
        );

        // Scatter active lanes' inputs into their slot windows.
        for lane in 0..self.lanes {
            if !active[lane] {
                continue;
            }
            let base = self.value_base[lane] as usize;
            values[base..base + self.num_inputs]
                .copy_from_slice(&inputs[lane * self.num_inputs..(lane + 1) * self.num_inputs]);
        }

        // Level-major sweep: one tight loop per merged level over the
        // whole population's nodes.
        for &(start, end) in &self.levels {
            for node in &self.nodes[start as usize..end as usize] {
                if !active[node.lane as usize] {
                    continue;
                }
                let (offset, len) = node.edge_range;
                let mut acc = node.bias;
                for &(source, weight) in &self.edges[offset as usize..(offset + len) as usize] {
                    acc += values[source as usize] * weight;
                }
                #[cfg(not(feature = "fast-math"))]
                let out = node.activation.apply(acc);
                #[cfg(feature = "fast-math")]
                let out = node.activation.apply_fast(acc);
                values[node.slot as usize] = out;
            }
        }

        // Gather active lanes' outputs.
        for lane in 0..self.lanes {
            if !active[lane] {
                continue;
            }
            for j in 0..self.num_outputs {
                outputs[lane * self.num_outputs + j] =
                    values[self.output_slots[lane * self.num_outputs + j] as usize];
            }
        }
    }

    /// Number of lanes (individuals) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Inputs per lane.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Outputs per lane.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Size of the shared global value buffer (sum of the lanes'
    /// individual buffers).
    pub fn value_buffer_slots(&self) -> usize {
        self.value_slots
    }

    /// Total compute nodes across all lanes.
    pub fn num_compute_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total enabled connections (MACs per batched inference).
    pub fn num_connections(&self) -> usize {
        self.edges.len()
    }

    /// Number of merged compute levels (the deepest lane's depth).
    pub fn num_compute_levels(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Genome, InnovationTracker};

    fn diamond_plan(weight: f64) -> NetPlan {
        // 2 inputs -> hidden -> output with a skip edge; same topology
        // as the plan.rs chain genome but parameterized weights so
        // different lanes hold different individuals.
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, weight, &mut tracker).unwrap();
        g.add_connection(1, 2, 0.25, &mut tracker).unwrap();
        let h = g
            .split_connection(innovation, Activation::Identity, &mut tracker)
            .unwrap();
        g.set_bias(h, 0.1).unwrap();
        NetPlan::compile(&g).unwrap()
    }

    fn shallow_plan() -> NetPlan {
        // 2 inputs -> output directly: one level, exercising ragged
        // depth in the merged arena.
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        g.add_connection(0, 2, 0.7, &mut tracker).unwrap();
        g.add_connection(1, 2, -0.2, &mut tracker).unwrap();
        NetPlan::compile(&g).unwrap()
    }

    // Bit-exactness only holds with the exact activation functions;
    // under `fast-math` the tolerance tests below take over.
    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn batched_lanes_match_solo_execution_bitwise() {
        let plans = [diamond_plan(0.5), diamond_plan(-1.5), shallow_plan()];
        let refs: Vec<&NetPlan> = plans.iter().collect();
        let batch = PlanBatch::build(&refs);
        assert_eq!(batch.lanes(), 3);
        assert_eq!(batch.num_compute_levels(), 2, "deepest lane wins");

        let inputs = [0.8, 0.4, -0.3, 1.1, 0.05, -2.0];
        let mut values = vec![0.0; batch.value_buffer_slots()];
        let mut outputs = vec![0.0; 3 * batch.num_outputs()];
        batch.activate_batch_into(&inputs, &[true, true, true], &mut values, &mut outputs);

        for (lane, plan) in plans.iter().enumerate() {
            let solo = plan.execute(&inputs[lane * 2..(lane + 1) * 2]);
            assert_eq!(
                outputs[lane].to_bits(),
                solo[0].to_bits(),
                "lane {lane} must be bit-identical to solo execution"
            );
        }
    }

    #[test]
    fn parked_lanes_are_skipped_and_keep_their_outputs() {
        let plans = [diamond_plan(0.5), diamond_plan(2.0)];
        let refs: Vec<&NetPlan> = plans.iter().collect();
        let batch = PlanBatch::build(&refs);
        let mut values = vec![0.0; batch.value_buffer_slots()];
        let mut outputs = vec![0.0; 2];

        batch.activate_batch_into(
            &[1.0, 1.0, 1.0, 1.0],
            &[true, true],
            &mut values,
            &mut outputs,
        );
        let lane1_before = outputs[1];

        // Park lane 1 and feed new inputs: lane 0 updates, lane 1 is
        // untouched even though its inputs changed.
        batch.activate_batch_into(
            &[0.2, 0.3, 9.0, 9.0],
            &[true, false],
            &mut values,
            &mut outputs,
        );
        assert_eq!(outputs[1].to_bits(), lane1_before.to_bits());
        let solo = plans[0].execute(&[0.2, 0.3]);
        assert!(
            (outputs[0] - solo[0]).abs() < 1e-3,
            "lane 0 within activation tolerance of solo execution"
        );
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn single_lane_batch_equals_plan_execute() {
        let plan = diamond_plan(0.75);
        let batch = PlanBatch::build(&[&plan]);
        assert_eq!(batch.value_buffer_slots(), plan.value_buffer_slots());
        assert_eq!(batch.num_compute_nodes(), plan.num_compute_nodes());
        assert_eq!(batch.num_connections(), plan.num_connections());
        let mut values = vec![0.0; batch.value_buffer_slots()];
        let mut outputs = vec![0.0; 1];
        batch.activate_batch_into(&[0.6, -0.9], &[true], &mut values, &mut outputs);
        assert_eq!(
            outputs[0].to_bits(),
            plan.execute(&[0.6, -0.9])[0].to_bits()
        );
    }

    #[test]
    fn batched_lanes_stay_within_activation_tolerance_of_solo() {
        // Holds with or without `fast-math`: the approximation error
        // contract bounds single-pass divergence near 1e-3.
        let plans = [diamond_plan(0.5), shallow_plan()];
        let refs: Vec<&NetPlan> = plans.iter().collect();
        let batch = PlanBatch::build(&refs);
        let inputs = [0.8, 0.4, -0.3, 1.1];
        let mut values = vec![0.0; batch.value_buffer_slots()];
        let mut outputs = vec![0.0; 2];
        batch.activate_batch_into(&inputs, &[true, true], &mut values, &mut outputs);
        for (lane, plan) in plans.iter().enumerate() {
            let solo = plan.execute(&inputs[lane * 2..(lane + 1) * 2]);
            assert!(
                (outputs[lane] - solo[0]).abs() < 2e-3,
                "lane {lane}: {} vs {}",
                outputs[lane],
                solo[0]
            );
        }
    }

    #[test]
    #[should_panic(expected = "share input count")]
    fn mismatched_input_counts_rejected() {
        let a = diamond_plan(0.5);
        let mut tracker = InnovationTracker::with_reserved_nodes(4);
        let mut g = Genome::bare(3, 1);
        g.add_connection(0, 3, 0.5, &mut tracker).unwrap();
        let b = NetPlan::compile(&g).unwrap();
        let _ = PlanBatch::build(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "at least one plan")]
    fn empty_batch_rejected() {
        let _ = PlanBatch::build(&[]);
    }

    #[test]
    #[should_panic(expected = "value buffer size mismatch")]
    fn wrong_value_buffer_length_panics() {
        let plan = diamond_plan(0.5);
        let batch = PlanBatch::build(&[&plan]);
        let mut values = vec![0.0; batch.value_buffer_slots() + 1];
        let mut outputs = vec![0.0; 1];
        batch.activate_batch_into(&[0.0, 0.0], &[true], &mut values, &mut outputs);
    }
}
