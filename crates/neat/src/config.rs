//! NEAT hyperparameter configuration.
//!
//! [`NeatConfig`] gathers every knob of the evolutionary loop. The
//! defaults follow the values used in the E3 paper's evaluation
//! (population 200, mutation and crossover rate 0.5, start with no
//! hidden nodes) with the remaining structural coefficients taken from
//! the NEAT paper and `neat-python` defaults.

use crate::activation::Activation;
use serde::{Deserialize, Serialize};

/// Full hyperparameter set for a NEAT run.
///
/// Construct with [`NeatConfig::builder`] which validates parameters,
/// or use [`NeatConfig::new`] for the paper defaults.
///
/// # Example
///
/// ```
/// use e3_neat::NeatConfig;
///
/// let config = NeatConfig::builder(8, 4)
///     .population_size(200)
///     .initial_hidden_nodes(30)
///     .initial_connection_density(0.2)
///     .build();
/// assert_eq!(config.num_inputs, 8);
/// assert_eq!(config.population_size, 200);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeatConfig {
    /// Number of input (sensor) nodes; fixed by the environment's
    /// observation size and constant across generations.
    pub num_inputs: usize,
    /// Number of output (action) nodes; fixed by the environment's
    /// action space and constant across generations.
    pub num_outputs: usize,
    /// Number of genomes per generation (the paper uses 200).
    pub population_size: usize,
    /// Hidden nodes present in generation-0 genomes. The paper starts
    /// learning runs with 0 and uses 30 for accelerator microbenchmarks.
    pub initial_hidden_nodes: usize,
    /// Fraction of all possible feed-forward connections instantiated in
    /// generation-0 genomes (the paper's "sparsity rate", default 0.2 for
    /// microbenchmarks; learning runs use fully-connected input→output).
    pub initial_connection_density: f64,

    /// Probability that a child is produced by crossover of two parents
    /// (otherwise it is a mutated clone of one parent). Paper: 0.5.
    pub crossover_rate: f64,
    /// Probability that each weight is perturbed during mutation.
    pub weight_mutate_rate: f64,
    /// Probability that a perturbed weight is instead replaced with a
    /// fresh random value.
    pub weight_replace_rate: f64,
    /// Standard deviation of the Gaussian weight perturbation.
    pub weight_perturb_sigma: f64,
    /// Absolute clamp applied to weights and biases after mutation.
    pub weight_max_abs: f64,
    /// Probability of adding a new connection gene during mutation.
    pub add_connection_rate: f64,
    /// Probability of splitting a connection with a new node during
    /// mutation.
    pub add_node_rate: f64,
    /// Probability of toggling a connection gene's enabled flag.
    pub toggle_enable_rate: f64,
    /// Probability of deleting a connection gene during mutation
    /// (explicit pruning; `neat-python` parity).
    pub delete_connection_rate: f64,
    /// Probability of deleting a hidden node (and its connections)
    /// during mutation.
    pub delete_node_rate: f64,
    /// Probability that each node's bias is perturbed during mutation.
    pub bias_mutate_rate: f64,
    /// Standard deviation of the Gaussian bias perturbation.
    pub bias_perturb_sigma: f64,
    /// Probability that a hidden node's activation function mutates.
    pub activation_mutate_rate: f64,
    /// Activation functions available to mutation.
    pub activation_options: Vec<Activation>,
    /// Activation used by output nodes (kept stable so the action
    /// decoding stays meaningful).
    pub output_activation: Activation,
    /// Probability that a disabled gene stays disabled in a crossover
    /// child when it is disabled in either parent (NEAT paper: 0.75).
    pub disable_in_child_rate: f64,

    /// Compatibility-distance coefficient for excess genes (`c1`).
    pub excess_coefficient: f64,
    /// Compatibility-distance coefficient for disjoint genes (`c2`).
    pub disjoint_coefficient: f64,
    /// Compatibility-distance coefficient for mean weight difference
    /// (`c3`).
    pub weight_coefficient: f64,
    /// Distance threshold under which two genomes share a species.
    pub compatibility_threshold: f64,
    /// Generations a species may go without fitness improvement before
    /// it is removed (stagnation).
    pub stagnation_limit: usize,
    /// Number of top genomes copied unchanged into the next generation.
    pub elitism: usize,
    /// Fraction of each species allowed to reproduce.
    pub survival_threshold: f64,
    /// Minimum number of members for a species to keep its elite.
    pub min_species_size: usize,
}

impl NeatConfig {
    /// Paper-default configuration for an environment with the given
    /// observation and action sizes.
    ///
    /// Equivalent to `NeatConfig::builder(num_inputs, num_outputs).build()`.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        Self::builder(num_inputs, num_outputs).build()
    }

    /// Starts a [`NeatConfigBuilder`] with paper defaults.
    ///
    /// # Panics
    ///
    /// The terminal [`NeatConfigBuilder::build`] panics if
    /// `num_inputs == 0` or `num_outputs == 0`.
    pub fn builder(num_inputs: usize, num_outputs: usize) -> NeatConfigBuilder {
        NeatConfigBuilder {
            config: NeatConfig {
                num_inputs,
                num_outputs,
                population_size: 200,
                initial_hidden_nodes: 0,
                initial_connection_density: 1.0,
                crossover_rate: 0.5,
                weight_mutate_rate: 0.8,
                weight_replace_rate: 0.1,
                weight_perturb_sigma: 0.5,
                weight_max_abs: 8.0,
                add_connection_rate: 0.3,
                add_node_rate: 0.1,
                toggle_enable_rate: 0.02,
                delete_connection_rate: 0.05,
                delete_node_rate: 0.02,
                bias_mutate_rate: 0.7,
                bias_perturb_sigma: 0.3,
                activation_mutate_rate: 0.05,
                activation_options: vec![Activation::Sigmoid, Activation::Tanh, Activation::Relu],
                output_activation: Activation::Tanh,
                disable_in_child_rate: 0.75,
                excess_coefficient: 1.0,
                disjoint_coefficient: 1.0,
                weight_coefficient: 0.5,
                compatibility_threshold: 3.0,
                stagnation_limit: 15,
                elitism: 2,
                survival_threshold: 0.3,
                min_species_size: 2,
            },
        }
    }

    /// Number of connections in the *dense MLP counterpart* of an
    /// evolved network with `hidden` hidden nodes, used as the
    /// denominator of the paper's density metric (Fig. 4 caption).
    ///
    /// The dense counterpart is a layered MLP with the same number of
    /// hidden nodes arranged in the same number of levels, with full
    /// connectivity between adjacent levels.
    pub fn dense_counterpart_connections(&self, hidden_per_level: &[usize]) -> usize {
        let mut widths = Vec::with_capacity(hidden_per_level.len() + 2);
        widths.push(self.num_inputs);
        widths.extend_from_slice(hidden_per_level);
        widths.push(self.num_outputs);
        widths.windows(2).map(|w| w[0] * w[1]).sum()
    }
}

impl Default for NeatConfig {
    /// A small default (4 inputs, 2 outputs) suitable for smoke tests.
    fn default() -> Self {
        Self::new(4, 2)
    }
}

/// Builder for [`NeatConfig`]; see [`NeatConfig::builder`].
#[derive(Debug, Clone)]
pub struct NeatConfigBuilder {
    config: NeatConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.config.$name = value;
                self
            }
        )*
    };
}

impl NeatConfigBuilder {
    builder_setters! {
        /// Sets the number of genomes per generation.
        population_size: usize,
        /// Sets the number of hidden nodes in generation-0 genomes.
        initial_hidden_nodes: usize,
        /// Sets the fraction of possible connections instantiated at
        /// generation 0 (the paper's "sparsity rate").
        initial_connection_density: f64,
        /// Sets the crossover probability.
        crossover_rate: f64,
        /// Sets the per-weight perturbation probability.
        weight_mutate_rate: f64,
        /// Sets the probability a perturbed weight is replaced outright.
        weight_replace_rate: f64,
        /// Sets the weight perturbation standard deviation.
        weight_perturb_sigma: f64,
        /// Sets the add-connection mutation probability.
        add_connection_rate: f64,
        /// Sets the add-node mutation probability.
        add_node_rate: f64,
        /// Sets the enable/disable toggle probability.
        toggle_enable_rate: f64,
        /// Sets the delete-connection mutation probability.
        delete_connection_rate: f64,
        /// Sets the delete-node mutation probability.
        delete_node_rate: f64,
        /// Sets the per-bias perturbation probability.
        bias_mutate_rate: f64,
        /// Sets the activation-mutation probability for hidden nodes.
        activation_mutate_rate: f64,
        /// Sets the activation used by output nodes.
        output_activation: crate::Activation,
        /// Sets the species compatibility threshold.
        compatibility_threshold: f64,
        /// Sets the stagnation limit in generations.
        stagnation_limit: usize,
        /// Sets the number of elites copied unchanged per generation.
        elitism: usize,
        /// Sets the fraction of each species allowed to reproduce.
        survival_threshold: f64,
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is invalid: zero inputs or
    /// outputs, zero population, or probabilities outside `[0, 1]`.
    pub fn build(self) -> NeatConfig {
        let c = self.config;
        assert!(c.num_inputs > 0, "NEAT requires at least one input node");
        assert!(c.num_outputs > 0, "NEAT requires at least one output node");
        assert!(c.population_size > 0, "population size must be positive");
        for (name, p) in [
            ("initial_connection_density", c.initial_connection_density),
            ("crossover_rate", c.crossover_rate),
            ("weight_mutate_rate", c.weight_mutate_rate),
            ("weight_replace_rate", c.weight_replace_rate),
            ("add_connection_rate", c.add_connection_rate),
            ("add_node_rate", c.add_node_rate),
            ("toggle_enable_rate", c.toggle_enable_rate),
            ("delete_connection_rate", c.delete_connection_rate),
            ("delete_node_rate", c.delete_node_rate),
            ("bias_mutate_rate", c.bias_mutate_rate),
            ("activation_mutate_rate", c.activation_mutate_rate),
            ("disable_in_child_rate", c.disable_in_child_rate),
            ("survival_threshold", c.survival_threshold),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        assert!(c.weight_perturb_sigma >= 0.0, "sigma must be non-negative");
        assert!(
            !c.activation_options.is_empty(),
            "need at least one activation option"
        );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = NeatConfig::new(8, 4);
        assert_eq!(c.population_size, 200);
        assert_eq!(c.crossover_rate, 0.5);
        assert_eq!(c.initial_hidden_nodes, 0);
    }

    #[test]
    fn builder_overrides_apply() {
        let c = NeatConfig::builder(3, 2)
            .population_size(50)
            .initial_hidden_nodes(30)
            .initial_connection_density(0.2)
            .build();
        assert_eq!(c.population_size, 50);
        assert_eq!(c.initial_hidden_nodes, 30);
        assert_eq!(c.initial_connection_density, 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let _ = NeatConfig::builder(0, 1).build();
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_probability_rejected() {
        let _ = NeatConfig::builder(2, 1).crossover_rate(1.5).build();
    }

    #[test]
    fn dense_counterpart_matches_fig4_example() {
        // Fig. 4(a): 3 inputs, 3 hidden in one level, 3 outputs
        // => dense counterpart has 3*3 + 3*3 = 18 connections.
        let c = NeatConfig::new(3, 3);
        assert_eq!(c.dense_counterpart_connections(&[3]), 18);
        // No hidden nodes: direct input->output.
        assert_eq!(c.dense_counterpart_connections(&[]), 9);
    }
}
