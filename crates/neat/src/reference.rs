//! The legacy per-node decoder and executor, kept as a test oracle.
//!
//! Before the flat CSR [`crate::NetPlan`] IR existed, genomes decoded
//! into a per-node representation (each node owning its own
//! `Vec<(source_index, weight)>` edge list) walked directly by
//! `activate`. That implementation is preserved here **verbatim** as
//! an independent reference: parity tests and the `plan_activate`
//! benchmark compare [`NetPlan`](crate::NetPlan) execution against it
//! bit for bit. It shares no decoding or execution code with the plan
//! path, so agreement between the two is meaningful evidence.
//!
//! Production code must use [`Genome::decode`] /
//! [`crate::Network`]; this module exists only for verification and
//! benchmarking.

use crate::error::DecodeError;
use crate::genome::{Genome, NodeId, NodeKind};
use crate::Activation;

/// One decoded node of the legacy representation: parameters plus an
/// owned incoming edge list.
#[derive(Debug, Clone, PartialEq)]
struct RefNode {
    id: NodeId,
    kind: NodeKind,
    bias: f64,
    activation: Activation,
    /// Incoming edges as `(source_index, weight)` pairs indexing the
    /// node array.
    incoming: Vec<(usize, f64)>,
    level: usize,
}

/// The legacy array-of-structs network: the pre-`NetPlan` decoder and
/// executor, preserved as an independent oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceNetwork {
    num_inputs: usize,
    num_outputs: usize,
    nodes: Vec<RefNode>,
    output_indices: Vec<usize>,
    values: Vec<f64>,
}

impl ReferenceNetwork {
    /// Decodes a genome with the legacy algorithm (identical Kahn sort
    /// and `(level, genome id)` emit order as [`crate::NetPlan::compile`],
    /// implemented independently).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Cycle`] if the enabled connections are
    /// cyclic, or [`DecodeError::DanglingConnection`] if a connection
    /// references a missing node.
    pub fn from_genome(genome: &Genome) -> Result<Self, DecodeError> {
        let genome_nodes = genome.nodes();
        let index_of =
            |id: NodeId| -> Option<usize> { genome_nodes.binary_search_by_key(&id, |n| n.id).ok() };

        let n = genome_nodes.len();
        let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut in_degree = vec![0usize; n];
        for c in genome.connections().iter().filter(|c| c.enabled) {
            let (from, to) = match (index_of(c.from), index_of(c.to)) {
                (Some(f), Some(t)) => (f, t),
                _ => {
                    return Err(DecodeError::DanglingConnection {
                        from: c.from,
                        to: c.to,
                    })
                }
            };
            incoming[to].push((from, c.weight));
            out_edges[from].push(to);
            in_degree[to] += 1;
        }

        let mut level = vec![0usize; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        ready.sort_unstable();
        let mut remaining = in_degree.clone();
        let mut queue = std::collections::VecDeque::from(ready);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            if genome_nodes[i].kind != NodeKind::Input && incoming[i].is_empty() {
                level[i] = level[i].max(1);
            }
            for &succ in &out_edges[i] {
                level[succ] = level[succ].max(level[i] + 1);
                remaining[succ] -= 1;
                if remaining[succ] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| remaining[i] > 0).unwrap_or(0);
            return Err(DecodeError::Cycle(genome_nodes[stuck].id));
        }

        let mut by_level: Vec<usize> = (0..n).collect();
        by_level.sort_by_key(|&i| (level[i], genome_nodes[i].id));
        let mut new_index = vec![0usize; n];
        for (new_i, &old_i) in by_level.iter().enumerate() {
            new_index[old_i] = new_i;
        }
        let mut nodes: Vec<RefNode> = Vec::with_capacity(n);
        for &old_i in &by_level {
            let g = genome_nodes[old_i];
            let mut inc: Vec<(usize, f64)> = incoming[old_i]
                .iter()
                .map(|&(src, w)| (new_index[src], w))
                .collect();
            inc.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            nodes.push(RefNode {
                id: g.id,
                kind: g.kind,
                bias: g.bias,
                activation: g.activation,
                incoming: inc,
                level: level[old_i],
            });
        }
        let mut output_indices: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| node.kind == NodeKind::Output)
            .map(|(i, _)| i)
            .collect();
        output_indices.sort_by_key(|&i| nodes[i].id);

        Ok(ReferenceNetwork {
            num_inputs: genome.num_inputs(),
            num_outputs: genome.num_outputs(),
            values: vec![0.0; nodes.len()],
            nodes,
            output_indices,
        })
    }

    /// Runs one forward pass with the legacy per-node walk and returns
    /// the output node values in genome id order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count.
    pub fn activate(&mut self, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "expected {} inputs, got {}",
            self.num_inputs,
            inputs.len()
        );
        for node_idx in 0..self.nodes.len() {
            let node = &self.nodes[node_idx];
            self.values[node_idx] = match node.kind {
                NodeKind::Input => inputs[node.id],
                _ => {
                    let mut sum = node.bias;
                    for &(src, weight) in &node.incoming {
                        debug_assert!(src < node_idx, "topological order violated");
                        sum += self.values[src] * weight;
                    }
                    node.activation.apply(sum)
                }
            };
        }
        self.output_indices
            .iter()
            .map(|&i| self.values[i])
            .collect()
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Total number of nodes (including inputs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of enabled connections.
    pub fn num_connections(&self) -> usize {
        self.nodes.iter().map(|n| n.incoming.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InnovationTracker, NetPlan};

    #[test]
    fn reference_agrees_with_plan_on_a_skip_topology() {
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, 0.5, &mut tracker).unwrap();
        g.add_connection(1, 2, 0.25, &mut tracker).unwrap();
        g.split_connection(innovation, Activation::Relu, &mut tracker)
            .unwrap();
        let mut reference = ReferenceNetwork::from_genome(&g).unwrap();
        let plan = NetPlan::compile(&g).unwrap();
        for input in [[0.0, 0.0], [1.0, -1.0], [0.3, 0.7], [-2.0, 5.0]] {
            assert_eq!(reference.activate(&input), plan.execute(&input));
        }
        assert_eq!(reference.num_nodes(), plan.num_nodes());
        assert_eq!(reference.num_connections(), plan.num_connections());
    }
}
