//! Speciation: grouping genomes by topological similarity.
//!
//! NEAT protects structural innovation by making genomes compete only
//! within their species (the paper's "speciate" step, Table III):
//! young topologies get time to optimize their weights before they must
//! beat the incumbent champion.

use crate::genome::Genome;
use serde::{Deserialize, Serialize};

/// One species: a representative genome, its current members (indices
/// into the population), and a stagnation record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Species {
    /// Stable species identifier.
    pub id: usize,
    /// The representative genome new members are compared against
    /// (a member of the species from the previous generation).
    pub representative: Genome,
    /// Indices of member genomes in the current population.
    pub members: Vec<usize>,
    /// Best *raw* fitness the species has ever reached (`None` before
    /// the first evaluation). Kept as an `Option` rather than `-inf`
    /// so snapshots serialize to JSON cleanly.
    pub best_fitness: Option<f64>,
    /// Generations since `best_fitness` last improved.
    pub stagnation: usize,
    /// Sum of the members' adjusted fitness this generation (fitness
    /// shared across the species, used to apportion offspring).
    pub adjusted_fitness_sum: f64,
}

impl Species {
    /// Creates a species seeded from a representative.
    pub fn new(id: usize, representative: Genome) -> Self {
        Species {
            id,
            representative,
            members: Vec::new(),
            best_fitness: None,
            stagnation: 0,
            adjusted_fitness_sum: 0.0,
        }
    }

    /// Records the generation's best raw member fitness, updating the
    /// stagnation counter.
    pub fn record_fitness(&mut self, best_member_fitness: f64) {
        if self
            .best_fitness
            .is_none_or(|best| best_member_fitness > best)
        {
            self.best_fitness = Some(best_member_fitness);
            self.stagnation = 0;
        } else {
            self.stagnation += 1;
        }
    }

    /// Number of members this generation.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the species has no members this generation.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stagnation_counts_non_improving_generations() {
        let mut s = Species::new(0, Genome::bare(1, 1));
        s.record_fitness(1.0);
        assert_eq!(s.stagnation, 0);
        s.record_fitness(0.5);
        assert_eq!(s.stagnation, 1);
        s.record_fitness(1.0);
        assert_eq!(s.stagnation, 2, "ties do not reset stagnation");
        s.record_fitness(2.0);
        assert_eq!(s.stagnation, 0);
        assert_eq!(s.best_fitness, Some(2.0));
    }

    #[test]
    fn empty_species_reports_empty() {
        let s = Species::new(3, Genome::bare(1, 1));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
