//! One worker pool time-sliced across many concurrent runs.
//!
//! A long-running service hosts N runs (islands, experiments) at
//! once, but spawning N thread pools would oversubscribe the machine
//! N-fold. [`SharedExecutor`] is the multi-run answer: one underlying
//! [`AnyExecutor`] behind an `Arc<Mutex<…>>`, cloned into every run's
//! backend. Each `run_shards` call acquires the pool for exactly one
//! population evaluation, so concurrent runs interleave at evaluation
//! granularity — while one run's evaluation occupies the pool, other
//! runs' evolve phases proceed on their own scheduler threads, which
//! is precisely the evolve/evaluate overlap of CLAN-style
//! asynchronous neuroevolution.
//!
//! Sharing never affects results: the determinism contract of
//! [`Executor`] is per-call (index-ordered reduction, no cross-call
//! state that can change values), so interleaving calls from many
//! runs leaves every run's results bit-identical to running alone.
//! Only the [`crate::stats::ExecStats`] — wall times, steal counts —
//! reflect contention.

use crate::executor::{AnyExecutor, ExecError, Executor, ShardRun, WorkerScratch};
use parking_lot::Mutex;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// A cloneable handle to one executor shared by many runs.
///
/// ```
/// use e3_exec::{Executor, SharedExecutor};
///
/// let shared = SharedExecutor::new(2);
/// let mut a = shared.clone();
/// let mut b = shared;
/// let ra = a.run_shards(4, 2, |_, r| r.map(|i| i * 10).collect::<Vec<_>>()).unwrap();
/// let rb = b.run_shards(4, 2, |_, r| r.map(|i| i + 1).collect::<Vec<_>>()).unwrap();
/// assert_eq!(ra.results, vec![0, 10, 20, 30]);
/// assert_eq!(rb.results, vec![1, 2, 3, 4]);
/// ```
#[derive(Clone)]
pub struct SharedExecutor {
    inner: Arc<Mutex<AnyExecutor>>,
    workers: usize,
}

impl SharedExecutor {
    /// Creates a shared pool with `threads` workers (serial for 1).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        SharedExecutor::from_executor(AnyExecutor::new(threads))
    }

    /// Wraps an existing executor for sharing.
    pub fn from_executor(exec: AnyExecutor) -> Self {
        let workers = exec.workers();
        SharedExecutor {
            inner: Arc::new(Mutex::new(exec)),
            workers,
        }
    }

    /// How many runs currently hold a handle to this pool (including
    /// this one). Observability only.
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl fmt::Debug for SharedExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedExecutor")
            .field("workers", &self.workers)
            .field("handles", &self.handles())
            .finish()
    }
}

impl Executor for SharedExecutor {
    fn workers(&self) -> usize {
        self.workers
    }

    fn run_shards<T, F>(
        &mut self,
        num_items: usize,
        shard_size: usize,
        task: F,
    ) -> Result<ShardRun<T>, ExecError>
    where
        T: Send + 'static,
        F: Fn(&mut WorkerScratch, Range<usize>) -> Vec<T> + Send + Sync + 'static,
    {
        // Hold the pool for the whole call: one population evaluation
        // is the time-slicing quantum.
        self.inner.lock().run_shards(num_items, shard_size, task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_results_match_exclusive_results() {
        let mut exclusive = AnyExecutor::new(2);
        let mut shared = SharedExecutor::new(2);
        let expected = exclusive
            .run_shards(17, 4, |_, r| r.map(|i| i * 3 + 1).collect::<Vec<_>>())
            .unwrap();
        let got = shared
            .run_shards(17, 4, |_, r| r.map(|i| i * 3 + 1).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(expected.results, got.results);
        assert_eq!(shared.workers(), 2);
    }

    #[test]
    fn interleaved_runs_stay_independent() {
        // Two "runs" alternate calls on one pool; each sees exactly
        // its own results, bit-identical to running alone.
        let shared = SharedExecutor::new(2);
        let mut run_a = shared.clone();
        let mut run_b = shared.clone();
        assert!(shared.handles() >= 3);
        for step in 0..4u64 {
            let a = run_a
                .run_shards(8, 2, move |_, r| {
                    r.map(|i| i as u64 * 100 + step).collect::<Vec<_>>()
                })
                .unwrap();
            let b = run_b
                .run_shards(8, 2, move |_, r| {
                    r.map(|i| i as u64 + 1000 * step).collect::<Vec<_>>()
                })
                .unwrap();
            assert_eq!(
                a.results,
                (0..8).map(|i| i * 100 + step).collect::<Vec<_>>()
            );
            assert_eq!(
                b.results,
                (0..8).map(|i| i + 1000 * step).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn shared_pool_is_send_across_threads() {
        let shared = SharedExecutor::new(2);
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let mut exec = shared.clone();
                std::thread::spawn(move || {
                    exec.run_shards(10, 3, move |_, r| {
                        r.map(|i| i as u64 * (t + 1)).collect::<Vec<_>>()
                    })
                    .unwrap()
                    .results
                })
            })
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let got = handle.join().unwrap();
            assert_eq!(got, (0..10).map(|i| i * (t as u64 + 1)).collect::<Vec<_>>());
        }
    }
}
