//! One worker pool time-sliced across many concurrent runs.
//!
//! A long-running service hosts N runs (islands, experiments) at
//! once, but spawning N thread pools would oversubscribe the machine
//! N-fold. [`SharedExecutor`] is the multi-run answer: one underlying
//! [`AnyExecutor`] behind an `Arc<Mutex<…>>`, cloned into every run's
//! backend. Each `run_shards` call acquires the pool for exactly one
//! population evaluation, so concurrent runs interleave at evaluation
//! granularity — while one run's evaluation occupies the pool, other
//! runs' evolve phases proceed on their own scheduler threads, which
//! is precisely the evolve/evaluate overlap of CLAN-style
//! asynchronous neuroevolution.
//!
//! Sharing never affects results: the determinism contract of
//! [`Executor`] is per-call (index-ordered reduction, no cross-call
//! state that can change values), so interleaving calls from many
//! runs leaves every run's results bit-identical to running alone.
//! Only the [`crate::stats::ExecStats`] — wall times, steal counts —
//! reflect contention.

use crate::executor::{AnyExecutor, ExecError, Executor, ShardRun, WorkerScratch};
use e3_jit::JitConfig;
use parking_lot::Mutex;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Live pool gauges every clone of a [`SharedExecutor`] updates —
/// what an observability plane samples on a ticker to see queue
/// pressure while evaluations are in flight, without waiting for the
/// post-hoc [`crate::stats::ExecStats`] record.
#[derive(Debug, Default)]
struct PoolGauges {
    /// `run_shards` calls currently holding the pool (0 or 1 per
    /// pool, summed over clones — >1 means callers are queued on the
    /// pool mutex).
    evals_in_flight: AtomicUsize,
    /// Total `run_shards` calls completed over the pool's lifetime.
    evals_total: AtomicU64,
    /// Per-worker shard queue depths from the most recent call.
    last_queue_depths: Mutex<Vec<usize>>,
}

/// A point-in-time copy of the live pool gauges — see
/// [`SharedExecutor::snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PoolSnapshot {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Handles currently pointing at the pool (runs + observers).
    pub handles: usize,
    /// `run_shards` calls in flight right now (callers queued on the
    /// pool count too).
    pub evals_in_flight: usize,
    /// `run_shards` calls completed since the pool was built.
    pub evals_total: u64,
    /// Per-worker shard queue depths of the most recent call (empty
    /// before the first call).
    pub last_queue_depths: Vec<usize>,
}

/// A cloneable handle to one executor shared by many runs.
///
/// ```
/// use e3_exec::{Executor, SharedExecutor};
///
/// let shared = SharedExecutor::new(2);
/// let mut a = shared.clone();
/// let mut b = shared;
/// let ra = a.run_shards(4, 2, |_, r| r.map(|i| i * 10).collect::<Vec<_>>()).unwrap();
/// let rb = b.run_shards(4, 2, |_, r| r.map(|i| i + 1).collect::<Vec<_>>()).unwrap();
/// assert_eq!(ra.results, vec![0, 10, 20, 30]);
/// assert_eq!(rb.results, vec![1, 2, 3, 4]);
/// ```
#[derive(Clone)]
pub struct SharedExecutor {
    inner: Arc<Mutex<AnyExecutor>>,
    gauges: Arc<PoolGauges>,
    workers: usize,
}

impl SharedExecutor {
    /// Creates a shared pool with `threads` workers (serial for 1).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        SharedExecutor::from_executor(AnyExecutor::new(threads))
    }

    /// Wraps an existing executor for sharing.
    pub fn from_executor(exec: AnyExecutor) -> Self {
        let workers = exec.workers();
        SharedExecutor {
            inner: Arc::new(Mutex::new(exec)),
            gauges: Arc::new(PoolGauges::default()),
            workers,
        }
    }

    /// How many runs currently hold a handle to this pool (including
    /// this one). Observability only.
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// A point-in-time copy of the live pool gauges. Safe to call
    /// from any thread at any rate: reading never takes the pool
    /// mutex, so a scraper can never delay an evaluation.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            workers: self.workers,
            handles: self.handles(),
            evals_in_flight: self.gauges.evals_in_flight.load(Ordering::Relaxed),
            evals_total: self.gauges.evals_total.load(Ordering::Relaxed),
            last_queue_depths: self.gauges.last_queue_depths.lock().clone(),
        }
    }
}

impl fmt::Debug for SharedExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedExecutor")
            .field("workers", &self.workers)
            .field("handles", &self.handles())
            .finish()
    }
}

impl Executor for SharedExecutor {
    fn workers(&self) -> usize {
        self.workers
    }

    fn set_jit(&mut self, config: JitConfig) {
        // The policy is pool-wide: every run sharing this pool sees
        // it. Safe because tiers are bit-identical — sharing can only
        // shift speed and telemetry, never a sibling run's results.
        self.inner.lock().set_jit(config);
    }

    fn run_shards<T, F>(
        &mut self,
        num_items: usize,
        shard_size: usize,
        task: F,
    ) -> Result<ShardRun<T>, ExecError>
    where
        T: Send + 'static,
        F: Fn(&mut WorkerScratch, Range<usize>) -> Vec<T> + Send + Sync + 'static,
    {
        // Hold the pool for the whole call: one population evaluation
        // is the time-slicing quantum.
        self.gauges.evals_in_flight.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.lock().run_shards(num_items, shard_size, task);
        self.gauges.evals_in_flight.fetch_sub(1, Ordering::Relaxed);
        if let Ok(run) = &result {
            self.gauges.evals_total.fetch_add(1, Ordering::Relaxed);
            *self.gauges.last_queue_depths.lock() = run.stats.queue_depths.clone();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_results_match_exclusive_results() {
        let mut exclusive = AnyExecutor::new(2);
        let mut shared = SharedExecutor::new(2);
        let expected = exclusive
            .run_shards(17, 4, |_, r| r.map(|i| i * 3 + 1).collect::<Vec<_>>())
            .unwrap();
        let got = shared
            .run_shards(17, 4, |_, r| r.map(|i| i * 3 + 1).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(expected.results, got.results);
        assert_eq!(shared.workers(), 2);
    }

    #[test]
    fn interleaved_runs_stay_independent() {
        // Two "runs" alternate calls on one pool; each sees exactly
        // its own results, bit-identical to running alone.
        let shared = SharedExecutor::new(2);
        let mut run_a = shared.clone();
        let mut run_b = shared.clone();
        assert!(shared.handles() >= 3);
        for step in 0..4u64 {
            let a = run_a
                .run_shards(8, 2, move |_, r| {
                    r.map(|i| i as u64 * 100 + step).collect::<Vec<_>>()
                })
                .unwrap();
            let b = run_b
                .run_shards(8, 2, move |_, r| {
                    r.map(|i| i as u64 + 1000 * step).collect::<Vec<_>>()
                })
                .unwrap();
            assert_eq!(
                a.results,
                (0..8).map(|i| i * 100 + step).collect::<Vec<_>>()
            );
            assert_eq!(
                b.results,
                (0..8).map(|i| i + 1000 * step).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn snapshot_tracks_live_pool_gauges() {
        let shared = SharedExecutor::new(2);
        let before = shared.snapshot();
        assert_eq!(before.workers, 2);
        assert_eq!(before.evals_total, 0);
        assert_eq!(before.evals_in_flight, 0);
        assert!(before.last_queue_depths.is_empty());
        let mut run = shared.clone();
        run.run_shards(8, 2, |_, r| r.collect::<Vec<_>>()).unwrap();
        run.run_shards(8, 2, |_, r| r.collect::<Vec<_>>()).unwrap();
        // The clone and the original see the same gauges.
        let after = shared.snapshot();
        assert_eq!(after.evals_total, 2);
        assert_eq!(after.evals_in_flight, 0);
        // 8 items / shard_size 2 = 4 shards over 2 workers.
        assert_eq!(after.last_queue_depths, vec![2, 2]);
    }

    #[test]
    fn shared_pool_is_send_across_threads() {
        let shared = SharedExecutor::new(2);
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let mut exec = shared.clone();
                std::thread::spawn(move || {
                    exec.run_shards(10, 3, move |_, r| {
                        r.map(|i| i as u64 * (t + 1)).collect::<Vec<_>>()
                    })
                    .unwrap()
                    .results
                })
            })
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let got = handle.join().unwrap();
            assert_eq!(got, (0..10).map(|i| i * (t as u64 + 1)).collect::<Vec<_>>());
        }
    }
}
