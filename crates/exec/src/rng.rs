//! Per-individual RNG streams.
//!
//! The determinism contract forbids deriving randomness from worker
//! identity or arrival order. Any stochastic evaluation must instead
//! seed from the logical coordinates of the work item —
//! `(run_seed, generation, genome_index)` — so every individual gets
//! the same stream no matter which worker evaluates it or how the
//! population is sharded.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes `(run_seed, generation, genome_index)` into a single 64-bit
/// stream seed (SplitMix64 finalization per word, XOR-combined with
/// distinct round constants so permuting the arguments changes the
/// result).
pub fn stream_seed(run_seed: u64, generation: u64, genome_index: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let a = mix(run_seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
    let b = mix(generation.wrapping_add(0x3c6e_f372_fe94_f82b));
    let c = mix(genome_index.wrapping_add(0x6135_2469_2d51_8b41));
    mix(a ^ b.rotate_left(21) ^ c.rotate_left(42))
}

/// The RNG stream for one individual of one generation: a [`StdRng`]
/// seeded from [`stream_seed`]. Identical regardless of worker
/// identity, shard layout, or thread count.
pub fn genome_rng(run_seed: u64, generation: u64, genome_index: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed(run_seed, generation, genome_index))
}

/// Mixes the four scenario-evaluation coordinates
/// `(run_seed, generation, genome_index, scenario_index)` into a
/// single 64-bit stream seed. Same construction as [`stream_seed`]
/// with a fourth mixed word and its own rotation schedule, so the
/// three- and four-coordinate families never collide structurally and
/// permuting any pair of arguments changes the result.
pub fn scenario_seed(
    run_seed: u64,
    generation: u64,
    genome_index: u64,
    scenario_index: u64,
) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let a = mix(run_seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
    let b = mix(generation.wrapping_add(0x3c6e_f372_fe94_f82b));
    let c = mix(genome_index.wrapping_add(0x6135_2469_2d51_8b41));
    let d = mix(scenario_index.wrapping_add(0xd6e8_feb8_6659_fd93));
    mix(a ^ b.rotate_left(17) ^ c.rotate_left(34) ^ d.rotate_left(51))
}

/// The RNG stream for one scenario of one individual of one
/// generation: a [`StdRng`] seeded from [`scenario_seed`]. Identical
/// regardless of worker identity, shard layout, or thread count.
pub fn scenario_rng(
    run_seed: u64,
    generation: u64,
    genome_index: u64,
    scenario_index: u64,
) -> StdRng {
    StdRng::seed_from_u64(scenario_seed(
        run_seed,
        generation,
        genome_index,
        scenario_index,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_independent_of_worker_and_order() {
        // Drawing the streams in any order, interleaved or not, gives
        // the same per-individual sequences.
        let forward: Vec<u64> = (0..16).map(|i| genome_rng(7, 3, i).gen::<u64>()).collect();
        let mut backward: Vec<u64> = (0..16)
            .rev()
            .map(|i| genome_rng(7, 3, i).gen::<u64>())
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn coordinates_are_not_interchangeable() {
        assert_ne!(stream_seed(1, 2, 3), stream_seed(3, 2, 1));
        assert_ne!(stream_seed(1, 2, 3), stream_seed(2, 1, 3));
        assert_ne!(stream_seed(1, 2, 3), stream_seed(1, 3, 2));
    }

    #[test]
    fn neighbouring_indices_decorrelate() {
        let a = stream_seed(0, 0, 0);
        let b = stream_seed(0, 0, 1);
        assert_ne!(a, b);
        // Crude avalanche check: roughly half the bits differ.
        let differing = (a ^ b).count_ones();
        assert!((16..=48).contains(&differing), "{differing} bits differ");
    }

    #[test]
    fn scenario_coordinates_are_not_interchangeable() {
        assert_ne!(scenario_seed(1, 2, 3, 4), scenario_seed(4, 2, 3, 1));
        assert_ne!(scenario_seed(1, 2, 3, 4), scenario_seed(1, 2, 4, 3));
        assert_ne!(scenario_seed(1, 2, 3, 4), scenario_seed(2, 1, 3, 4));
        assert_ne!(scenario_seed(1, 2, 3, 4), scenario_seed(1, 3, 2, 4));
    }

    #[test]
    fn scenario_streams_are_order_independent() {
        let forward: Vec<u64> = (0..8)
            .map(|s| scenario_rng(7, 3, 5, s).gen::<u64>())
            .collect();
        let mut backward: Vec<u64> = (0..8)
            .rev()
            .map(|s| scenario_rng(7, 3, 5, s).gen::<u64>())
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn scenario_family_does_not_shadow_stream_family() {
        // Sharing the three leading coordinates must not reproduce the
        // three-coordinate seed for any small scenario index.
        let legacy = stream_seed(42, 7, 11);
        for s in 0..64 {
            assert_ne!(scenario_seed(42, 7, 11, s), legacy, "collision at s={s}");
        }
    }

    #[test]
    fn scenario_neighbouring_indices_decorrelate() {
        let a = scenario_seed(0, 0, 0, 0);
        let b = scenario_seed(0, 0, 0, 1);
        assert_ne!(a, b);
        let differing = (a ^ b).count_ones();
        assert!((16..=48).contains(&differing), "{differing} bits differ");
    }
}
