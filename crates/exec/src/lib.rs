//! `e3-exec`: a deterministic parallel evaluation engine for the E3
//! evolve/evaluate loop.
//!
//! The paper's INAX accelerator evaluates a population of `p`
//! individuals as `⌈p/num_pu⌉` waves across its PU cluster (§V-B); the
//! host-side analogue implemented here shards a population across N
//! worker threads — "virtual PUs" — and reduces the per-shard results
//! in **index order**, so the outcome is bit-identical to a serial
//! evaluation no matter how many workers run or which worker picked up
//! which shard.
//!
//! Three rules give that guarantee:
//!
//! 1. **No worker-identity inputs.** A shard task may only depend on
//!    the item indices it was handed, never on which worker runs it.
//!    Per-individual RNG streams come from
//!    [`rng::stream_seed`]`(run_seed, generation, genome_index)`.
//! 2. **Index-ordered reduction.** Results are written into a slot per
//!    item and reduced lowest-index-first, so floating-point
//!    accumulation order matches the serial loop exactly.
//! 3. **Write-only observability.** [`ExecStats`] (shard wall times,
//!    steal counts, cache hit rates) are collected on the side and
//!    never fed back into the computation.
//!
//! The entry point is the [`Executor`] trait with two implementations:
//! [`SerialExecutor`] (the reference — runs shards in order on the
//! calling thread) and [`ThreadPoolExecutor`] (a persistent
//! work-stealing pool built on `crossbeam` deques/channels and
//! `parking_lot`). [`AnyExecutor`] is the enum-dispatch wrapper the
//! platform backends hold, and [`SharedExecutor`] clones one pool
//! into many concurrent runs (multi-run time-slicing for the islands
//! service).
//!
//! Each worker keeps a [`DecodeCache`] of compiled `NetPlan`s so
//! unchanged elites and champions skip genome→plan compilation across
//! generations — the same cache feeds the software executors and the
//! hardware lowering paths. Under an enabled [`JitConfig`] the cache
//! additionally *tiers* execution: entries that stay hot across
//! lookups are promoted to natively compiled code ([`TierExec`],
//! backed by `e3-jit`), with the interpreter remaining the bit-exact
//! oracle and permanent fallback.

#![warn(missing_docs)]

mod cache;
mod executor;
mod pool;
pub mod rng;
mod shared;
mod stats;

pub use cache::{CacheCounters, DecodeCache, TierExec};
pub use e3_jit::JitConfig;
pub use executor::{
    shard_plan, AnyExecutor, ExecError, Executor, SerialExecutor, ShardRun, WorkerScratch,
};
pub use pool::ThreadPoolExecutor;
pub use shared::{PoolSnapshot, SharedExecutor};
pub use stats::{ExecStats, ExecStatsState};
