//! The persistent work-stealing thread pool.
//!
//! Workers are spawned once and live for the executor's lifetime (the
//! paper's PU cluster analogue: the pool is the "virtual PU" array and
//! a `run_shards` call is one evaluation wave). Each job pushes its
//! shards onto per-worker *home* queues (`crossbeam::deque::Injector`)
//! in round-robin order; a worker drains its own queue first and then
//! steals from siblings, so load imbalance between shards (episodes
//! terminate at different steps) is absorbed without any effect on the
//! results — reduction is by item index, never by completion order.
//!
//! Worker panics inside a shard task are contained with
//! `catch_unwind` and surface as [`ExecError::ShardPanicked`]; the
//! pool stays usable afterwards.

use crate::cache::CacheCounters;
use crate::executor::{shard_plan, ExecError, Executor, ShardRun, WorkerScratch};
use crate::stats::ExecStats;
use crossbeam::channel::{self, Receiver, Sender};
use crossbeam::deque::{Injector, Steal};
use e3_jit::JitConfig;
use std::any::Any;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Type-erased shard body: `(scratch, range) -> boxed Vec<T>`.
type ErasedTask =
    Box<dyn Fn(&mut WorkerScratch, Range<usize>) -> Box<dyn Any + Send> + Send + Sync>;

/// One job submitted to the pool: the shard queues, the erased task,
/// and the channel results flow back on.
struct JobShared {
    /// Home queue per worker; shard `s` starts on queue `s % workers`.
    queues: Vec<Injector<(usize, usize)>>,
    task: ErasedTask,
    done_tx: Sender<PoolMsg>,
}

enum WorkerMsg {
    Run(Arc<JobShared>),
    /// Installs the tiered-execution policy on the worker's decode
    /// cache. Channel FIFO order guarantees it lands before any job
    /// submitted after the `set_jit` call.
    SetJit(JitConfig),
    Shutdown,
}

enum PoolMsg {
    Shard {
        start: usize,
        stolen: bool,
        seconds: f64,
        payload: Result<Box<dyn Any + Send>, String>,
    },
    WorkerDone {
        worker: usize,
        busy_seconds: f64,
        counters: CacheCounters,
        cache_entries: u64,
        jit_resident: u64,
    },
}

/// A persistent pool of `threads` workers executing shard jobs with
/// work stealing and per-worker decode caches.
pub struct ThreadPoolExecutor {
    senders: Vec<Sender<WorkerMsg>>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPoolExecutor {
    /// Spawns `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for index in 0..threads {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("e3-exec-worker-{index}"))
                .spawn(move || worker_main(index, rx))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        ThreadPoolExecutor { senders, handles }
    }
}

impl fmt::Debug for ThreadPoolExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPoolExecutor")
            .field("workers", &self.senders.len())
            .finish()
    }
}

impl Drop for ThreadPoolExecutor {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A worker's event loop: wait for a job, drain home queue, steal from
/// siblings, report, repeat.
fn worker_main(index: usize, rx: Receiver<WorkerMsg>) {
    let mut scratch = WorkerScratch::new(index);
    while let Ok(msg) = rx.recv() {
        let job = match msg {
            WorkerMsg::Run(job) => job,
            WorkerMsg::SetJit(config) => {
                scratch.cache().set_jit(config);
                continue;
            }
            WorkerMsg::Shutdown => break,
        };
        scratch.cache().begin_job();
        let workers = job.queues.len();
        let mut busy_seconds = 0.0f64;
        loop {
            // Own home queue first, then round-robin over siblings.
            let mut claimed = None;
            if let Steal::Success(shard) = job.queues[index].steal() {
                claimed = Some((shard, false));
            } else {
                for offset in 1..workers {
                    let victim = (index + offset) % workers;
                    if let Steal::Success(shard) = job.queues[victim].steal() {
                        claimed = Some((shard, true));
                        break;
                    }
                }
            }
            let Some(((start, end), stolen)) = claimed else {
                break; // every queue drained: this wave is over for us
            };
            let t0 = Instant::now();
            let payload = catch_unwind(AssertUnwindSafe(|| (job.task)(&mut scratch, start..end)))
                .map_err(|panic| panic_message(panic.as_ref()));
            let seconds = t0.elapsed().as_secs_f64();
            busy_seconds += seconds;
            if job
                .done_tx
                .send(PoolMsg::Shard {
                    start,
                    stolen,
                    seconds,
                    payload,
                })
                .is_err()
            {
                break; // submitter gave up on the job
            }
        }
        let counters = scratch.cache().take_counters();
        let cache_entries = scratch.cache().len() as u64;
        let jit_resident = scratch.cache().jit_resident() as u64;
        let _ = job.done_tx.send(PoolMsg::WorkerDone {
            worker: index,
            busy_seconds,
            counters,
            cache_entries,
            jit_resident,
        });
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Executor for ThreadPoolExecutor {
    fn workers(&self) -> usize {
        self.senders.len()
    }

    fn set_jit(&mut self, config: JitConfig) {
        // Best effort: a lost worker surfaces as `WorkerLost` on the
        // next job, which is the actionable failure.
        for tx in &self.senders {
            let _ = tx.send(WorkerMsg::SetJit(config));
        }
    }

    fn run_shards<T, F>(
        &mut self,
        num_items: usize,
        shard_size: usize,
        task: F,
    ) -> Result<ShardRun<T>, ExecError>
    where
        T: Send + 'static,
        F: Fn(&mut WorkerScratch, Range<usize>) -> Vec<T> + Send + Sync + 'static,
    {
        let t0 = Instant::now();
        let workers = self.senders.len();
        let plan = shard_plan(num_items, shard_size);
        let num_shards = plan.len();

        let (done_tx, done_rx) = channel::unbounded();
        let job = Arc::new(JobShared {
            queues: (0..workers).map(|_| Injector::new()).collect(),
            task: Box::new(move |scratch, range| Box::new(task(scratch, range))),
            done_tx,
        });
        // Round-robin home assignment: shard s is "resident" on virtual
        // PU s % workers, mirroring the INAX wave layout.
        let mut queue_depths = vec![0usize; workers];
        for (shard_idx, &shard) in plan.iter().enumerate() {
            job.queues[shard_idx % workers].push(shard);
            queue_depths[shard_idx % workers] += 1;
        }
        for tx in &self.senders {
            if tx.send(WorkerMsg::Run(Arc::clone(&job))).is_err() {
                return Err(ExecError::WorkerLost);
            }
        }
        drop(job); // workers hold the remaining references

        let mut slots: Vec<Option<Vec<T>>> = (0..num_shards).map(|_| None).collect();
        let mut stats = ExecStats {
            workers,
            shards: num_shards,
            items: num_items,
            shard_seconds: vec![0.0; num_shards],
            busy_seconds: vec![0.0; workers],
            queue_depths,
            ..ExecStats::default()
        };
        let mut first_panic: Option<(usize, String)> = None;
        let mut shards_seen = 0usize;
        let mut workers_done = 0usize;
        while shards_seen < num_shards || workers_done < workers {
            let msg = done_rx.recv().map_err(|_| ExecError::WorkerLost)?;
            match msg {
                PoolMsg::Shard {
                    start,
                    stolen,
                    seconds,
                    payload,
                } => {
                    shards_seen += 1;
                    let shard_idx = start / shard_size;
                    stats.shard_seconds[shard_idx] = seconds;
                    if stolen {
                        stats.steal_count += 1;
                    }
                    match payload {
                        Ok(boxed) => {
                            let values = *boxed
                                .downcast::<Vec<T>>()
                                .expect("payload type fixed by the submitting call");
                            slots[shard_idx] = Some(values);
                        }
                        Err(message) => {
                            // Deterministic error selection: keep the
                            // panic of the lowest-indexed shard.
                            if first_panic.as_ref().is_none_or(|(s, _)| start < *s) {
                                first_panic = Some((start, message));
                            }
                        }
                    }
                }
                PoolMsg::WorkerDone {
                    worker,
                    busy_seconds,
                    counters,
                    cache_entries,
                    jit_resident,
                } => {
                    workers_done += 1;
                    stats.busy_seconds[worker] = busy_seconds;
                    stats.cache_hits += counters.hits;
                    stats.cache_misses += counters.misses;
                    stats.cache_entries += cache_entries;
                    stats.cache_evictions += counters.evictions;
                    stats.jit_compiled += counters.jit_compiled;
                    stats.jit_bytes += counters.jit_bytes;
                    stats.jit_compile_seconds += counters.jit_compile_nanos as f64 / 1e9;
                    stats.jit_fallbacks += counters.jit_fallbacks;
                    stats.jit_activations += counters.jit_activations;
                    stats.jit_resident += jit_resident;
                }
            }
        }
        if let Some((shard_start, message)) = first_panic {
            return Err(ExecError::ShardPanicked {
                shard_start,
                message,
            });
        }

        // Index-ordered reduction: concatenate shard results lowest
        // index first, exactly as the serial loop would have.
        let mut results = Vec::with_capacity(num_items);
        for (shard_idx, slot) in slots.into_iter().enumerate() {
            let (start, end) = plan[shard_idx];
            let values = slot.expect("every shard reported exactly once");
            assert_eq!(
                values.len(),
                end - start,
                "task must return one value per item"
            );
            results.extend(values);
        }
        stats.wall_seconds = t0.elapsed().as_secs_f64();
        Ok(ShardRun { results, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SerialExecutor;

    #[test]
    fn pool_matches_serial_bit_for_bit() {
        let work = |_: &mut WorkerScratch, range: Range<usize>| -> Vec<f64> {
            range
                .map(|i| (i as f64 * 0.1).sin() + 1.0 / (i as f64 + 1.0))
                .collect()
        };
        let mut serial = SerialExecutor::new();
        let reference = serial.run_shards(101, 7, work).expect("serial").results;
        for threads in [2, 4, 8] {
            let mut pool = ThreadPoolExecutor::new(threads);
            let run = pool.run_shards(101, 7, work).expect("pool");
            assert_eq!(run.results, reference, "threads={threads}");
            assert_eq!(run.stats.workers, threads);
            assert_eq!(run.stats.items, 101);
        }
    }

    #[test]
    fn pool_survives_repeated_jobs() {
        let mut pool = ThreadPoolExecutor::new(3);
        for round in 0..5u64 {
            let run = pool
                .run_shards(20, 4, move |_, range| {
                    range.map(|i| i as u64 + round).collect()
                })
                .expect("pool");
            assert_eq!(
                run.results,
                (0..20).map(|i| i as u64 + round).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn shard_panic_is_contained_and_reported_deterministically() {
        let mut pool = ThreadPoolExecutor::new(4);
        let err = pool
            .run_shards(16, 2, |_, range| {
                range
                    .inspect(|&i| {
                        assert!(i != 5 && i != 11, "boom at {i}");
                    })
                    .collect::<Vec<_>>()
            })
            .expect_err("two shards panic");
        // Shards [4,6) and [10,12) both die; the lowest-indexed one is
        // reported regardless of completion order.
        assert_eq!(
            err,
            ExecError::ShardPanicked {
                shard_start: 4,
                message: "boom at 5".to_string(),
            }
        );
        // The pool remains usable.
        let run = pool
            .run_shards(8, 2, |_, range| range.collect::<Vec<_>>())
            .expect("pool recovered");
        assert_eq!(run.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn stats_account_for_every_shard_and_worker() {
        let mut pool = ThreadPoolExecutor::new(2);
        let run = pool
            .run_shards(30, 4, |_, range| range.collect::<Vec<_>>())
            .expect("pool");
        assert_eq!(run.stats.shards, 8);
        assert_eq!(run.stats.shard_seconds.len(), 8);
        assert_eq!(run.stats.busy_seconds.len(), 2);
        // Round-robin home assignment: 8 shards over 2 workers.
        assert_eq!(run.stats.queue_depths, vec![4, 4]);
        assert!(run.stats.wall_seconds >= 0.0);
        assert!(run.stats.worker_utilization() <= 1.0);
    }
}
