//! Per-worker compiled-plan cache.
//!
//! Unchanged elites and champions survive generations verbatim, so
//! re-running genome→[`NetPlan`] compilation for them every generation
//! is wasted work. Each worker keeps a cache keyed by
//! [`Genome::fingerprint`]: a lookup for an unchanged genome returns
//! the previously compiled plan (wrapped in its [`Network`] executor);
//! any mutation changes the fingerprint, so a mutated genome can never
//! be served a stale phenotype.
//!
//! The cache stores the **plan**, the one CreateNet artifact every
//! backend consumes: software backends run it through
//! [`Network::activate`], and the INAX path lowers it to the hardware
//! layout via [`DecodeCache::get_or_plan`] — one cache feeds all
//! backends. Reusing a cached [`Network`] across episodes is safe
//! because `activate` overwrites every value-buffer slot on each pass —
//! the executor carries no hidden episode state.

use e3_neat::{DecodeError, Genome, NetPlan, Network};
use std::collections::HashMap;

struct CacheEntry {
    net: Network,
    last_used: u64,
}

/// Counters drained from a [`DecodeCache`] by
/// [`DecodeCache::take_counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a fresh plan.
    pub misses: u64,
    /// Entries evicted by [`DecodeCache::begin_job`] epoch turnover.
    pub evictions: u64,
}

/// A genome-fingerprint-keyed cache of compiled network plans.
///
/// Entries not used for two consecutive jobs (generations) are evicted
/// at the next [`DecodeCache::begin_job`], bounding the cache to the
/// working set of the current population.
#[derive(Default)]
pub struct DecodeCache {
    entries: HashMap<u64, CacheEntry>,
    epoch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DecodeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DecodeCache::default()
    }

    /// Starts a new job (generation): advances the epoch and evicts
    /// every entry not used in the previous job.
    pub fn begin_job(&mut self) {
        self.epoch += 1;
        let horizon = self.epoch.saturating_sub(1);
        let before = self.entries.len();
        self.entries.retain(|_, e| e.last_used >= horizon);
        self.evictions += (before - self.entries.len()) as u64;
    }

    /// Returns the plan-backed executor for `genome`, compiling and
    /// caching the plan on first sight of the fingerprint.
    ///
    /// The returned reference is mutable so callers can run inference
    /// in place; `activate` fully overwrites the value buffer, so reuse
    /// across episodes cannot leak results between genomes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the genome is not feed-forward.
    pub fn get_or_decode(&mut self, genome: &Genome) -> Result<&mut Network, DecodeError> {
        let key = genome.fingerprint();
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.hits += 1;
                let entry = slot.into_mut();
                entry.last_used = self.epoch;
                Ok(&mut entry.net)
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses += 1;
                let net = genome.decode()?;
                let entry = slot.insert(CacheEntry {
                    net,
                    last_used: self.epoch,
                });
                Ok(&mut entry.net)
            }
        }
    }

    /// Returns the compiled [`NetPlan`] for `genome` — the entry point
    /// for backends that lower the plan to another representation
    /// (e.g. the INAX hardware layout) instead of executing it in
    /// software. Shares entries and counters with
    /// [`DecodeCache::get_or_decode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the genome is not feed-forward.
    pub fn get_or_plan(&mut self, genome: &Genome) -> Result<&NetPlan, DecodeError> {
        Ok(self.get_or_decode(genome)?.plan())
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Takes and resets the hit/miss/eviction counters. The current
    /// entry count is *not* reset — it is a gauge, read via
    /// [`DecodeCache::len`].
    pub fn take_counters(&mut self) -> CacheCounters {
        CacheCounters {
            hits: std::mem::take(&mut self.hits),
            misses: std::mem::take(&mut self.misses),
            evictions: std::mem::take(&mut self.evictions),
        }
    }
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("entries", &self.entries.len())
            .field("epoch", &self.epoch)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{Genome, InnovationTracker, NeatConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn counters(hits: u64, misses: u64, evictions: u64) -> CacheCounters {
        CacheCounters {
            hits,
            misses,
            evictions,
        }
    }

    fn genome() -> (Genome, NeatConfig, InnovationTracker, StdRng) {
        let config = NeatConfig::new(3, 2);
        let mut tracker = InnovationTracker::with_reserved_nodes(5);
        let mut rng = StdRng::seed_from_u64(5);
        let g = Genome::initial(&config, &mut tracker, &mut rng);
        (g, config, tracker, rng)
    }

    #[test]
    fn second_lookup_hits() {
        let (g, _, _, _) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        cache.get_or_decode(&g).expect("decodes");
        cache.get_or_decode(&g).expect("decodes");
        assert_eq!(cache.take_counters(), counters(1, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn plan_lookup_shares_entries_with_decode() {
        let (g, _, _, _) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        let plan = cache.get_or_plan(&g).expect("compiles").clone();
        assert_eq!(plan, *g.decode().expect("decodes").plan());
        // The software path hits the entry the plan lookup created.
        cache.get_or_decode(&g).expect("decodes");
        assert_eq!(cache.take_counters(), counters(1, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn mutated_genome_never_served_stale_network() {
        let (mut g, config, mut tracker, mut rng) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        let inputs = vec![0.25, -0.5, 1.0];
        let before = cache.get_or_decode(&g).expect("decodes").activate(&inputs);
        // Mutate until the phenotype output actually changes.
        let mut after = before.clone();
        for _ in 0..100 {
            g.mutate(&config, &mut tracker, &mut rng);
            after = cache.get_or_decode(&g).expect("decodes").activate(&inputs);
            if after != before {
                break;
            }
        }
        assert_ne!(
            before, after,
            "mutated genome decoded fresh, not from cache"
        );
        // The cached entry for the pre-mutation genome must equal a
        // fresh decode of it too (the entry itself is never mutated).
        let unmutated = genome().0;
        let cached = cache
            .get_or_decode(&unmutated)
            .expect("decodes")
            .activate(&inputs);
        let fresh = unmutated.decode().expect("decodes").activate(&inputs);
        assert_eq!(cached, fresh);
    }

    #[test]
    fn eviction_drops_entries_unused_for_two_jobs() {
        let (g, config, mut tracker, mut rng) = genome();
        let mut other = g.clone();
        for _ in 0..20 {
            other.mutate(&config, &mut tracker, &mut rng);
        }
        assert_ne!(g.fingerprint(), other.fingerprint());
        let mut cache = DecodeCache::new();
        cache.begin_job(); // epoch 1
        cache.get_or_decode(&g).expect("decodes");
        cache.get_or_decode(&other).expect("decodes");
        assert_eq!(cache.len(), 2);
        cache.begin_job(); // epoch 2: both used at epoch 1, kept
        cache.get_or_decode(&g).expect("decodes");
        assert_eq!(cache.len(), 2);
        cache.begin_job(); // epoch 3: `other` last used at epoch 1, evicted
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.take_counters(),
            counters(1, 2, 1),
            "the epoch turnover is counted as one eviction"
        );
        cache.get_or_decode(&other).expect("decodes");
        assert_eq!(
            cache.take_counters(),
            counters(0, 1, 0),
            "evicted entry re-decodes"
        );
    }
}
