//! Per-worker compiled-plan cache.
//!
//! Unchanged elites and champions survive generations verbatim, so
//! re-running genome→[`NetPlan`] compilation for them every generation
//! is wasted work. Each worker keeps a cache keyed by
//! [`Genome::fingerprint`]: a lookup for an unchanged genome returns
//! the previously compiled plan (wrapped in its [`Network`] executor);
//! any mutation changes the fingerprint, so a mutated genome can never
//! be served a stale phenotype.
//!
//! The cache stores the **plan**, the one CreateNet artifact every
//! backend consumes: software backends run it through
//! [`Network::activate`], and the INAX path lowers it to the hardware
//! layout via [`DecodeCache::get_or_plan`] — one cache feeds all
//! backends. Reusing a cached [`Network`] across episodes is safe
//! because `activate` overwrites every value-buffer slot on each pass —
//! the executor carries no hidden episode state.
//!
//! The cache is also where **tiered execution** lives: every entry
//! carries a use counter, and [`DecodeCache::get_or_tiered`] promotes
//! entries that cross the configured [`JitConfig::hot_threshold`] to a
//! natively compiled [`CompiledPlan`] (see `e3-jit`). The interpreter
//! stays the oracle — both tiers are bit-identical — so promotion can
//! only change speed and telemetry, never results.

use e3_jit::{CompiledPlan, JitConfig};
use e3_neat::{DecodeError, ForwardPass, Genome, NetPlan, Network};
use std::collections::HashMap;
use std::time::Instant;

struct CacheEntry {
    net: Network,
    last_used: u64,
    /// Lookups that returned this entry since it was decoded — the
    /// hotness signal tier promotion reads.
    uses: u64,
    /// Native tier, present once the entry crossed the hot threshold
    /// and compiled successfully.
    jit: Option<CompiledPlan>,
    /// Compilation failed once; never retried (the failure is a
    /// property of the plan or the platform, not of the moment).
    jit_failed: bool,
}

impl CacheEntry {
    fn new(net: Network, last_used: u64) -> Self {
        CacheEntry {
            net,
            last_used,
            uses: 0,
            jit: None,
            jit_failed: false,
        }
    }
}

/// Counters drained from a [`DecodeCache`] by
/// [`DecodeCache::take_counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a fresh plan.
    pub misses: u64,
    /// Entries evicted by [`DecodeCache::begin_job`] epoch turnover.
    pub evictions: u64,
    /// Plans promoted to the native tier.
    pub jit_compiled: u64,
    /// Machine-code bytes emitted by those promotions.
    pub jit_bytes: u64,
    /// Nanoseconds spent compiling (observability only — never fed
    /// back into scheduling).
    pub jit_compile_nanos: u64,
    /// Promotion attempts that failed and fell back to the interpreter.
    pub jit_fallbacks: u64,
    /// Forward passes executed on the native tier (drained from every
    /// resident and evicted [`CompiledPlan`]).
    pub jit_activations: u64,
}

/// A genome-fingerprint-keyed cache of compiled network plans.
///
/// Entries not used for two consecutive jobs (generations) are evicted
/// at the next [`DecodeCache::begin_job`], bounding the cache to the
/// working set of the current population.
#[derive(Default)]
pub struct DecodeCache {
    entries: HashMap<u64, CacheEntry>,
    epoch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    jit: JitConfig,
    jit_compiled: u64,
    jit_bytes: u64,
    jit_compile_nanos: u64,
    jit_fallbacks: u64,
    jit_activations: u64,
}

/// The execution tier [`DecodeCache::get_or_tiered`] selected for a
/// genome: the interpreted [`Network`], or (for hot entries under an
/// enabled [`JitConfig`]) its natively compiled twin plus a shared
/// borrow of the network for plan inspection (costing, metrics).
///
/// Both tiers are bit-identical by `e3-jit`'s contract, so the choice
/// may only affect speed and telemetry, never results.
#[derive(Debug)]
pub enum TierExec<'a> {
    /// The plan interpreter — always available.
    Interpreted(&'a mut Network),
    /// The native tier, with the backing network alongside.
    Compiled {
        /// The interpreted twin (for [`NetPlan`] inspection).
        net: &'a Network,
        /// The natively compiled executor.
        jit: &'a mut CompiledPlan,
    },
}

impl TierExec<'_> {
    /// The interpreted network backing either tier (for plan
    /// inspection — costing, complexity metrics).
    pub fn net(&self) -> &Network {
        match self {
            TierExec::Interpreted(net) => net,
            TierExec::Compiled { net, .. } => net,
        }
    }

    /// The compiled plan backing either tier.
    pub fn plan(&self) -> &NetPlan {
        self.net().plan()
    }

    /// The selected tier as the episode-kernel execution seam.
    pub fn forward(&mut self) -> &mut dyn ForwardPass {
        match self {
            TierExec::Interpreted(net) => *net,
            TierExec::Compiled { jit, .. } => *jit,
        }
    }

    /// Whether the native tier was selected.
    pub fn is_compiled(&self) -> bool {
        matches!(self, TierExec::Compiled { .. })
    }
}

impl DecodeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DecodeCache::default()
    }

    /// Starts a new job (generation): advances the epoch and evicts
    /// every entry not used in the previous job. Evicted native-tier
    /// plans have their activation counters drained first so no
    /// telemetry is lost with them.
    pub fn begin_job(&mut self) {
        self.epoch += 1;
        let horizon = self.epoch.saturating_sub(1);
        let before = self.entries.len();
        let mut drained = 0u64;
        self.entries.retain(|_, e| {
            if e.last_used >= horizon {
                return true;
            }
            if let Some(jit) = e.jit.as_mut() {
                drained += jit.take_activations();
            }
            false
        });
        self.jit_activations += drained;
        self.evictions += (before - self.entries.len()) as u64;
    }

    /// Installs the tiered-execution policy. Entries already resident
    /// keep their compiled tier; future promotions follow the new
    /// policy.
    pub fn set_jit(&mut self, config: JitConfig) {
        self.jit = config;
    }

    /// Returns the selected execution tier for `genome`, decoding (and
    /// counting a miss) on first sight of the fingerprint exactly like
    /// [`DecodeCache::get_or_decode`], then promoting the entry to the
    /// native tier once its use count crosses the configured hot
    /// threshold. With the default (disabled) [`JitConfig`] this is
    /// `get_or_decode` with a different return type — same entries,
    /// same counters, same results.
    ///
    /// A failed compilation is counted as a fallback, marks the entry
    /// so it is never retried, and keeps the interpreter — promotion
    /// is an optimization, never a requirement.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the genome is not feed-forward.
    pub fn get_or_tiered(&mut self, genome: &Genome) -> Result<TierExec<'_>, DecodeError> {
        let key = genome.fingerprint();
        let entry = match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.hits += 1;
                slot.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses += 1;
                let net = genome.decode()?;
                slot.insert(CacheEntry::new(net, 0))
            }
        };
        entry.last_used = self.epoch;
        entry.uses += 1;
        if self.jit.enabled
            && entry.jit.is_none()
            && !entry.jit_failed
            && entry.uses >= self.jit.hot_threshold
        {
            let t0 = Instant::now();
            match CompiledPlan::compile(entry.net.plan()) {
                Ok(compiled) => {
                    self.jit_compile_nanos += t0.elapsed().as_nanos() as u64;
                    self.jit_compiled += 1;
                    self.jit_bytes += compiled.code_bytes() as u64;
                    entry.jit = Some(compiled);
                }
                Err(_) => {
                    entry.jit_failed = true;
                    self.jit_fallbacks += 1;
                }
            }
        }
        match entry.jit.as_mut() {
            Some(jit) => Ok(TierExec::Compiled {
                net: &entry.net,
                jit,
            }),
            None => Ok(TierExec::Interpreted(&mut entry.net)),
        }
    }

    /// Returns the plan-backed executor for `genome`, compiling and
    /// caching the plan on first sight of the fingerprint.
    ///
    /// The returned reference is mutable so callers can run inference
    /// in place; `activate` fully overwrites the value buffer, so reuse
    /// across episodes cannot leak results between genomes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the genome is not feed-forward.
    pub fn get_or_decode(&mut self, genome: &Genome) -> Result<&mut Network, DecodeError> {
        let key = genome.fingerprint();
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.hits += 1;
                let entry = slot.into_mut();
                entry.last_used = self.epoch;
                Ok(&mut entry.net)
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses += 1;
                let net = genome.decode()?;
                let entry = slot.insert(CacheEntry::new(net, self.epoch));
                Ok(&mut entry.net)
            }
        }
    }

    /// Returns the compiled [`NetPlan`] for `genome` — the entry point
    /// for backends that lower the plan to another representation
    /// (e.g. the INAX hardware layout) instead of executing it in
    /// software. Shares entries and counters with
    /// [`DecodeCache::get_or_decode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the genome is not feed-forward.
    pub fn get_or_plan(&mut self, genome: &Genome) -> Result<&NetPlan, DecodeError> {
        Ok(self.get_or_decode(genome)?.plan())
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries currently holding a native-tier plan — a
    /// gauge, like [`DecodeCache::len`].
    pub fn jit_resident(&self) -> usize {
        self.entries.values().filter(|e| e.jit.is_some()).count()
    }

    /// Takes and resets the hit/miss/eviction and JIT counters,
    /// draining every resident [`CompiledPlan`]'s activation count
    /// along the way. The current entry counts are *not* reset — they
    /// are gauges, read via [`DecodeCache::len`] and
    /// [`DecodeCache::jit_resident`].
    pub fn take_counters(&mut self) -> CacheCounters {
        let mut jit_activations = std::mem::take(&mut self.jit_activations);
        for entry in self.entries.values_mut() {
            if let Some(jit) = entry.jit.as_mut() {
                jit_activations += jit.take_activations();
            }
        }
        CacheCounters {
            hits: std::mem::take(&mut self.hits),
            misses: std::mem::take(&mut self.misses),
            evictions: std::mem::take(&mut self.evictions),
            jit_compiled: std::mem::take(&mut self.jit_compiled),
            jit_bytes: std::mem::take(&mut self.jit_bytes),
            jit_compile_nanos: std::mem::take(&mut self.jit_compile_nanos),
            jit_fallbacks: std::mem::take(&mut self.jit_fallbacks),
            jit_activations,
        }
    }
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("entries", &self.entries.len())
            .field("epoch", &self.epoch)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .field("jit", &self.jit)
            .field("jit_resident", &self.jit_resident())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{Genome, InnovationTracker, NeatConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn counters(hits: u64, misses: u64, evictions: u64) -> CacheCounters {
        CacheCounters {
            hits,
            misses,
            evictions,
            ..CacheCounters::default()
        }
    }

    fn genome() -> (Genome, NeatConfig, InnovationTracker, StdRng) {
        let config = NeatConfig::new(3, 2);
        let mut tracker = InnovationTracker::with_reserved_nodes(5);
        let mut rng = StdRng::seed_from_u64(5);
        let g = Genome::initial(&config, &mut tracker, &mut rng);
        (g, config, tracker, rng)
    }

    #[test]
    fn second_lookup_hits() {
        let (g, _, _, _) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        cache.get_or_decode(&g).expect("decodes");
        cache.get_or_decode(&g).expect("decodes");
        assert_eq!(cache.take_counters(), counters(1, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn plan_lookup_shares_entries_with_decode() {
        let (g, _, _, _) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        let plan = cache.get_or_plan(&g).expect("compiles").clone();
        assert_eq!(plan, *g.decode().expect("decodes").plan());
        // The software path hits the entry the plan lookup created.
        cache.get_or_decode(&g).expect("decodes");
        assert_eq!(cache.take_counters(), counters(1, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn mutated_genome_never_served_stale_network() {
        let (mut g, config, mut tracker, mut rng) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        let inputs = vec![0.25, -0.5, 1.0];
        let before = cache.get_or_decode(&g).expect("decodes").activate(&inputs);
        // Mutate until the phenotype output actually changes.
        let mut after = before.clone();
        for _ in 0..100 {
            g.mutate(&config, &mut tracker, &mut rng);
            after = cache.get_or_decode(&g).expect("decodes").activate(&inputs);
            if after != before {
                break;
            }
        }
        assert_ne!(
            before, after,
            "mutated genome decoded fresh, not from cache"
        );
        // The cached entry for the pre-mutation genome must equal a
        // fresh decode of it too (the entry itself is never mutated).
        let unmutated = genome().0;
        let cached = cache
            .get_or_decode(&unmutated)
            .expect("decodes")
            .activate(&inputs);
        let fresh = unmutated.decode().expect("decodes").activate(&inputs);
        assert_eq!(cached, fresh);
    }

    #[test]
    fn eviction_drops_entries_unused_for_two_jobs() {
        let (g, config, mut tracker, mut rng) = genome();
        let mut other = g.clone();
        for _ in 0..20 {
            other.mutate(&config, &mut tracker, &mut rng);
        }
        assert_ne!(g.fingerprint(), other.fingerprint());
        let mut cache = DecodeCache::new();
        cache.begin_job(); // epoch 1
        cache.get_or_decode(&g).expect("decodes");
        cache.get_or_decode(&other).expect("decodes");
        assert_eq!(cache.len(), 2);
        cache.begin_job(); // epoch 2: both used at epoch 1, kept
        cache.get_or_decode(&g).expect("decodes");
        assert_eq!(cache.len(), 2);
        cache.begin_job(); // epoch 3: `other` last used at epoch 1, evicted
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.take_counters(),
            counters(1, 2, 1),
            "the epoch turnover is counted as one eviction"
        );
        cache.get_or_decode(&other).expect("decodes");
        assert_eq!(
            cache.take_counters(),
            counters(0, 1, 0),
            "evicted entry re-decodes"
        );
    }

    #[test]
    fn tiered_lookup_with_default_config_matches_get_or_decode() {
        let (g, _, _, _) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        for _ in 0..10 {
            let tier = cache.get_or_tiered(&g).expect("decodes");
            assert!(
                !tier.is_compiled(),
                "disabled config must never promote an entry"
            );
        }
        assert_eq!(cache.take_counters(), counters(9, 1, 0));
        assert_eq!(cache.jit_resident(), 0);
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn hot_entries_promote_and_stay_bit_identical() {
        let (g, _, _, _) = genome();
        let inputs = vec![0.25, -0.5, 1.0];
        let reference = g.decode().expect("decodes").activate(&inputs);
        let mut cache = DecodeCache::new();
        cache.set_jit(JitConfig {
            enabled: true,
            hot_threshold: 3,
        });
        cache.begin_job();
        for use_count in 1..=5u64 {
            let mut tier = cache.get_or_tiered(&g).expect("decodes");
            assert_eq!(
                tier.is_compiled(),
                use_count >= 3,
                "promotion happens exactly at the threshold"
            );
            let out = match &mut tier {
                TierExec::Interpreted(net) => net.activate(&inputs),
                TierExec::Compiled { jit, .. } => jit.activate(&inputs),
            };
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                "tiers drifted at use {use_count}"
            );
        }
        assert_eq!(cache.jit_resident(), 1);
        let c = cache.take_counters();
        assert_eq!((c.hits, c.misses), (4, 1));
        assert_eq!(c.jit_compiled, 1);
        assert!(c.jit_bytes > 0);
        assert_eq!(c.jit_fallbacks, 0);
        assert_eq!(c.jit_activations, 3, "uses 3..=5 ran on the native tier");
        // Drained counters reset; the resident plan keeps executing.
        let TierExec::Compiled { jit, .. } = cache.get_or_tiered(&g).expect("decodes") else {
            panic!("entry stays promoted");
        };
        jit.activate(&inputs);
        assert_eq!(cache.take_counters().jit_activations, 1);
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn eviction_drains_native_tier_activations() {
        let (g, _, _, _) = genome();
        let mut cache = DecodeCache::new();
        cache.set_jit(JitConfig {
            enabled: true,
            hot_threshold: 1,
        });
        cache.begin_job(); // epoch 1
        let mut tier = cache.get_or_tiered(&g).expect("decodes");
        if let TierExec::Compiled { jit, .. } = &mut tier {
            jit.activate(&[0.1, 0.2, 0.3]);
        } else {
            panic!("threshold 1 promotes on first use");
        }
        cache.begin_job(); // epoch 2: kept (used at epoch 1)
        cache.begin_job(); // epoch 3: evicted, activation drained
        assert_eq!(cache.len(), 0);
        let c = cache.take_counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(
            c.jit_activations, 1,
            "activations of evicted plans survive into the counters"
        );
    }

    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    #[test]
    fn unsupported_targets_fall_back_to_the_interpreter() {
        let (g, _, _, _) = genome();
        let mut cache = DecodeCache::new();
        cache.set_jit(JitConfig {
            enabled: true,
            hot_threshold: 1,
        });
        cache.begin_job();
        for _ in 0..3 {
            let tier = cache.get_or_tiered(&g).expect("decodes");
            assert!(!tier.is_compiled(), "no native tier off x86-64 Linux");
        }
        let c = cache.take_counters();
        assert_eq!(c.jit_fallbacks, 1, "the failed compile is not retried");
        assert_eq!(c.jit_compiled, 0);
    }
}
