//! Per-worker decoded-network cache.
//!
//! Unchanged elites and champions survive generations verbatim, so
//! re-running genome→[`Network`] decoding for them every generation is
//! wasted work. Each worker keeps a cache keyed by
//! [`Genome::fingerprint`]: a lookup for an unchanged genome returns
//! the previously decoded network; any mutation changes the
//! fingerprint, so a mutated genome can never be served a stale
//! phenotype.
//!
//! Reusing a decoded [`Network`] across episodes is safe because
//! `Network::activate` overwrites every node value on each pass — the
//! network carries no hidden episode state.

use e3_neat::{DecodeError, Genome, Network};
use std::collections::HashMap;

struct CacheEntry {
    net: Network,
    last_used: u64,
}

/// A genome-fingerprint-keyed cache of decoded networks.
///
/// Entries not used for two consecutive jobs (generations) are evicted
/// at the next [`DecodeCache::begin_job`], bounding the cache to the
/// working set of the current population.
#[derive(Default)]
pub struct DecodeCache {
    entries: HashMap<u64, CacheEntry>,
    epoch: u64,
    hits: u64,
    misses: u64,
}

impl DecodeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DecodeCache::default()
    }

    /// Starts a new job (generation): advances the epoch and evicts
    /// every entry not used in the previous job.
    pub fn begin_job(&mut self) {
        self.epoch += 1;
        let horizon = self.epoch.saturating_sub(1);
        self.entries.retain(|_, e| e.last_used >= horizon);
    }

    /// Returns the decoded network for `genome`, decoding and caching
    /// it on first sight of the fingerprint.
    ///
    /// The returned reference is mutable so callers can run inference
    /// in place; `activate` fully overwrites node state, so reuse
    /// across episodes cannot leak results between genomes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the genome is not feed-forward.
    pub fn get_or_decode(&mut self, genome: &Genome) -> Result<&mut Network, DecodeError> {
        let key = genome.fingerprint();
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.hits += 1;
                let entry = slot.into_mut();
                entry.last_used = self.epoch;
                Ok(&mut entry.net)
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses += 1;
                let net = genome.decode()?;
                let entry = slot.insert(CacheEntry {
                    net,
                    last_used: self.epoch,
                });
                Ok(&mut entry.net)
            }
        }
    }

    /// Number of cached networks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Takes and resets the `(hits, misses)` counters.
    pub fn take_counters(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("entries", &self.entries.len())
            .field("epoch", &self.epoch)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{Genome, InnovationTracker, NeatConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn genome() -> (Genome, NeatConfig, InnovationTracker, StdRng) {
        let config = NeatConfig::new(3, 2);
        let mut tracker = InnovationTracker::with_reserved_nodes(5);
        let mut rng = StdRng::seed_from_u64(5);
        let g = Genome::initial(&config, &mut tracker, &mut rng);
        (g, config, tracker, rng)
    }

    #[test]
    fn second_lookup_hits() {
        let (g, _, _, _) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        cache.get_or_decode(&g).expect("decodes");
        cache.get_or_decode(&g).expect("decodes");
        assert_eq!(cache.take_counters(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn mutated_genome_never_served_stale_network() {
        let (mut g, config, mut tracker, mut rng) = genome();
        let mut cache = DecodeCache::new();
        cache.begin_job();
        let inputs = vec![0.25, -0.5, 1.0];
        let before = cache.get_or_decode(&g).expect("decodes").activate(&inputs);
        // Mutate until the phenotype output actually changes.
        let mut after = before.clone();
        for _ in 0..100 {
            g.mutate(&config, &mut tracker, &mut rng);
            after = cache.get_or_decode(&g).expect("decodes").activate(&inputs);
            if after != before {
                break;
            }
        }
        assert_ne!(
            before, after,
            "mutated genome decoded fresh, not from cache"
        );
        // The cached entry for the pre-mutation genome must equal a
        // fresh decode of it too (the entry itself is never mutated).
        let unmutated = genome().0;
        let cached = cache
            .get_or_decode(&unmutated)
            .expect("decodes")
            .activate(&inputs);
        let fresh = unmutated.decode().expect("decodes").activate(&inputs);
        assert_eq!(cached, fresh);
    }

    #[test]
    fn eviction_drops_entries_unused_for_two_jobs() {
        let (g, config, mut tracker, mut rng) = genome();
        let mut other = g.clone();
        for _ in 0..20 {
            other.mutate(&config, &mut tracker, &mut rng);
        }
        assert_ne!(g.fingerprint(), other.fingerprint());
        let mut cache = DecodeCache::new();
        cache.begin_job(); // epoch 1
        cache.get_or_decode(&g).expect("decodes");
        cache.get_or_decode(&other).expect("decodes");
        assert_eq!(cache.len(), 2);
        cache.begin_job(); // epoch 2: both used at epoch 1, kept
        cache.get_or_decode(&g).expect("decodes");
        assert_eq!(cache.len(), 2);
        cache.begin_job(); // epoch 3: `other` last used at epoch 1, evicted
        assert_eq!(cache.len(), 1);
        let _ = cache.take_counters();
        cache.get_or_decode(&other).expect("decodes");
        assert_eq!(cache.take_counters(), (0, 1), "evicted entry re-decodes");
    }
}
