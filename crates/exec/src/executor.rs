//! The [`Executor`] trait, the serial reference implementation, and
//! the enum-dispatch wrapper backends hold.

use crate::cache::DecodeCache;
use crate::pool::ThreadPoolExecutor;
use crate::stats::ExecStats;
use e3_jit::JitConfig;
use std::fmt;
use std::ops::Range;
use std::time::Instant;

/// Per-worker mutable state handed to every shard task.
///
/// Scratch state may only affect *how fast* a task runs (the decode
/// cache), never *what* it computes — that is the determinism
/// contract every task closure must uphold.
#[derive(Debug)]
pub struct WorkerScratch {
    index: usize,
    cache: DecodeCache,
}

impl WorkerScratch {
    pub(crate) fn new(index: usize) -> Self {
        WorkerScratch {
            index,
            cache: DecodeCache::new(),
        }
    }

    /// Index of the worker running this shard (0 for the serial
    /// executor). **For observability only** — results must not depend
    /// on it.
    pub fn worker_index(&self) -> usize {
        self.index
    }

    /// The worker's decoded-network cache.
    pub fn cache(&mut self) -> &mut DecodeCache {
        &mut self.cache
    }
}

/// Why a [`Executor::run_shards`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A shard task panicked; the panic was contained to its shard.
    ShardPanicked {
        /// First item index of the panicking shard.
        shard_start: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A worker disappeared without delivering its results (the pool
    /// is unusable afterwards).
    WorkerLost,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ShardPanicked {
                shard_start,
                message,
            } => write!(
                f,
                "shard starting at item {shard_start} panicked: {message}"
            ),
            ExecError::WorkerLost => f.write_str("a worker thread was lost mid-job"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The results of one sharded run: per-item values in **item-index
/// order** plus write-only execution stats.
#[derive(Debug)]
pub struct ShardRun<T> {
    /// One result per item, index `i` holding item `i`'s value.
    pub results: Vec<T>,
    /// How the run executed (nondeterministic; observability only).
    pub stats: ExecStats,
}

/// Splits `num_items` into contiguous `(start, end)` shards of at most
/// `shard_size` items. Shard boundaries depend only on the two
/// arguments, never on worker count or timing, so every executor
/// produces the same plan.
pub fn shard_plan(num_items: usize, shard_size: usize) -> Vec<(usize, usize)> {
    assert!(shard_size > 0, "shard size must be positive");
    (0..num_items)
        .step_by(shard_size)
        .map(|start| (start, (start + shard_size).min(num_items)))
        .collect()
}

/// An execution strategy for embarrassingly parallel per-item work.
///
/// `run_shards` splits `0..num_items` into contiguous shards (see
/// [`shard_plan`]), evaluates `task` once per shard, and returns the
/// per-item results in index order. The task receives the shard's item
/// range plus the executing worker's [`WorkerScratch`] and must return
/// exactly one value per item in the range.
///
/// # Determinism contract
///
/// Implementations guarantee the returned `results` vector is
/// identical to what [`SerialExecutor`] produces **provided the task
/// closure is itself deterministic in the item index** (no
/// worker-identity inputs, no shared mutable state, RNG derived via
/// [`crate::rng`]). The [`ExecStats`] are exempt: they describe the
/// (nondeterministic) execution schedule.
pub trait Executor {
    /// Number of workers (virtual PUs) this executor runs shards on.
    fn workers(&self) -> usize;

    /// Installs the tiered-execution policy on every worker's decode
    /// cache (see [`crate::TierExec`]). Takes effect before the next
    /// `run_shards` call. The default ignores the policy — executors
    /// without decode caches stay valid — and because both tiers are
    /// bit-identical, whether a policy is installed can never change
    /// results.
    fn set_jit(&mut self, _config: JitConfig) {}

    /// Runs `task` over every shard of `0..num_items` and reduces the
    /// results in index order.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a shard task panicked or a worker was
    /// lost.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size == 0` or `task` returns the wrong number
    /// of results for a shard.
    fn run_shards<T, F>(
        &mut self,
        num_items: usize,
        shard_size: usize,
        task: F,
    ) -> Result<ShardRun<T>, ExecError>
    where
        T: Send + 'static,
        F: Fn(&mut WorkerScratch, Range<usize>) -> Vec<T> + Send + Sync + 'static;
}

/// The reference executor: runs every shard on the calling thread, in
/// shard order. This is by definition the serial semantics the
/// parallel executors must reproduce bit-for-bit.
pub struct SerialExecutor {
    scratch: WorkerScratch,
}

impl SerialExecutor {
    /// Creates the serial executor.
    pub fn new() -> Self {
        SerialExecutor {
            scratch: WorkerScratch::new(0),
        }
    }
}

impl Default for SerialExecutor {
    fn default() -> Self {
        SerialExecutor::new()
    }
}

impl fmt::Debug for SerialExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SerialExecutor")
            .field("workers", &1usize)
            .finish()
    }
}

impl Executor for SerialExecutor {
    fn workers(&self) -> usize {
        1
    }

    fn set_jit(&mut self, config: JitConfig) {
        self.scratch.cache.set_jit(config);
    }

    fn run_shards<T, F>(
        &mut self,
        num_items: usize,
        shard_size: usize,
        task: F,
    ) -> Result<ShardRun<T>, ExecError>
    where
        T: Send + 'static,
        F: Fn(&mut WorkerScratch, Range<usize>) -> Vec<T> + Send + Sync + 'static,
    {
        let t0 = Instant::now();
        let plan = shard_plan(num_items, shard_size);
        self.scratch.cache.begin_job();
        let mut results = Vec::with_capacity(num_items);
        let mut shard_seconds = Vec::with_capacity(plan.len());
        for &(start, end) in &plan {
            let shard_t0 = Instant::now();
            let shard = task(&mut self.scratch, start..end);
            assert_eq!(
                shard.len(),
                end - start,
                "task must return one value per item"
            );
            results.extend(shard);
            shard_seconds.push(shard_t0.elapsed().as_secs_f64());
        }
        let cache = self.scratch.cache.take_counters();
        let busy = shard_seconds.iter().sum();
        Ok(ShardRun {
            results,
            stats: ExecStats {
                workers: 1,
                shards: plan.len(),
                items: num_items,
                shard_seconds,
                steal_count: 0,
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                cache_entries: self.scratch.cache.len() as u64,
                cache_evictions: cache.evictions,
                jit_compiled: cache.jit_compiled,
                jit_bytes: cache.jit_bytes,
                jit_compile_seconds: cache.jit_compile_nanos as f64 / 1e9,
                jit_fallbacks: cache.jit_fallbacks,
                jit_activations: cache.jit_activations,
                jit_resident: self.scratch.cache.jit_resident() as u64,
                busy_seconds: vec![busy],
                queue_depths: vec![plan.len()],
                wall_seconds: t0.elapsed().as_secs_f64(),
            },
        })
    }
}

/// An executor of any strategy behind one concrete type (enum
/// dispatch, mirroring `AnyBackend`).
#[derive(Debug)]
pub enum AnyExecutor {
    /// Single-threaded reference execution.
    Serial(SerialExecutor),
    /// Persistent work-stealing pool.
    Pool(ThreadPoolExecutor),
    /// A handle to a pool shared with other runs (multi-run
    /// time-slicing; see [`crate::SharedExecutor`]).
    Shared(crate::SharedExecutor),
}

impl AnyExecutor {
    /// Creates an executor with `threads` workers: serial for 1, a
    /// thread pool otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        if threads == 1 {
            AnyExecutor::Serial(SerialExecutor::new())
        } else {
            AnyExecutor::Pool(ThreadPoolExecutor::new(threads))
        }
    }

    /// An executor for a sibling run: exclusive executors fork into a
    /// *fresh* pool of the same width (worker pools are never shared
    /// implicitly), while [`AnyExecutor::Shared`] forks into another
    /// handle to the *same* pool — that sharing is the handle's whole
    /// point.
    pub fn fork(&self) -> Self {
        match self {
            AnyExecutor::Shared(e) => AnyExecutor::Shared(e.clone()),
            other => AnyExecutor::new(other.workers()),
        }
    }
}

impl Executor for AnyExecutor {
    fn workers(&self) -> usize {
        match self {
            AnyExecutor::Serial(e) => e.workers(),
            AnyExecutor::Pool(e) => e.workers(),
            AnyExecutor::Shared(e) => e.workers(),
        }
    }

    fn set_jit(&mut self, config: JitConfig) {
        match self {
            AnyExecutor::Serial(e) => e.set_jit(config),
            AnyExecutor::Pool(e) => e.set_jit(config),
            AnyExecutor::Shared(e) => e.set_jit(config),
        }
    }

    fn run_shards<T, F>(
        &mut self,
        num_items: usize,
        shard_size: usize,
        task: F,
    ) -> Result<ShardRun<T>, ExecError>
    where
        T: Send + 'static,
        F: Fn(&mut WorkerScratch, Range<usize>) -> Vec<T> + Send + Sync + 'static,
    {
        match self {
            AnyExecutor::Serial(e) => e.run_shards(num_items, shard_size, task),
            AnyExecutor::Pool(e) => e.run_shards(num_items, shard_size, task),
            AnyExecutor::Shared(e) => e.run_shards(num_items, shard_size, task),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_covers_range_exactly_once() {
        for (items, size) in [(0usize, 3usize), (1, 1), (7, 3), (8, 4), (9, 100)] {
            let plan = shard_plan(items, size);
            let mut covered = Vec::new();
            for &(start, end) in &plan {
                assert!(start < end || items == 0);
                assert!(end - start <= size);
                covered.extend(start..end);
            }
            assert_eq!(covered, (0..items).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_executor_preserves_index_order() {
        let mut exec = SerialExecutor::new();
        let run = exec
            .run_shards(10, 3, |_, range| range.map(|i| i * i).collect())
            .expect("no panics");
        assert_eq!(run.results, (0..10).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(run.stats.shards, 4);
        assert_eq!(run.stats.steal_count, 0);
        assert_eq!(run.stats.workers, 1);
    }

    #[test]
    fn empty_input_yields_empty_run() {
        let mut exec = AnyExecutor::new(1);
        let run = exec
            .run_shards(0, 4, |_, range| range.collect::<Vec<usize>>())
            .expect("no panics");
        assert!(run.results.is_empty());
        assert_eq!(run.stats.shards, 0);
    }

    #[test]
    fn any_executor_selects_strategy_by_thread_count() {
        assert!(matches!(AnyExecutor::new(1), AnyExecutor::Serial(_)));
        assert!(matches!(AnyExecutor::new(4), AnyExecutor::Pool(_)));
        assert_eq!(AnyExecutor::new(4).workers(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = AnyExecutor::new(0);
    }
}
