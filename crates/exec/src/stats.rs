//! Execution statistics — the host-side analogue of the INAX `U(r)`
//! utilization counters.

use serde::{Deserialize, Serialize};

/// Observability counters for one [`crate::Executor::run_shards`] call.
///
/// Stats are **write-only**: they describe how the work was executed
/// (which is nondeterministic under a thread pool — wall times and
/// steal counts vary run to run) and are never fed back into the
/// computation, so they cannot perturb the bit-identical results
/// contract.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Number of workers (virtual PUs) the executor runs.
    pub workers: usize,
    /// Number of shards the item range was split into.
    pub shards: usize,
    /// Total items processed.
    pub items: usize,
    /// Wall-clock seconds per shard, in shard order.
    pub shard_seconds: Vec<f64>,
    /// Shards executed by a worker other than their home worker
    /// (always 0 for the serial executor).
    pub steal_count: u64,
    /// Decode-cache hits across all workers for this call.
    pub cache_hits: u64,
    /// Decode-cache misses across all workers for this call.
    pub cache_misses: u64,
    /// Compiled plans resident across all workers' decode caches at
    /// the end of this call (a gauge, not a rate).
    #[serde(default)]
    pub cache_entries: u64,
    /// Decode-cache entries evicted by epoch turnover during this call,
    /// summed across workers.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Plans promoted to the native (JIT) tier during this call, summed
    /// across workers. All `jit_*` fields are zero when the tier is
    /// disabled or unsupported.
    pub jit_compiled: u64,
    /// Machine-code bytes emitted by this call's promotions.
    pub jit_bytes: u64,
    /// Seconds spent compiling plans to native code during this call.
    pub jit_compile_seconds: f64,
    /// Promotion attempts that failed and kept the interpreter.
    pub jit_fallbacks: u64,
    /// Forward passes executed on the native tier during this call.
    pub jit_activations: u64,
    /// Natively compiled plans resident across all workers' caches at
    /// the end of this call (a gauge, like `cache_entries`).
    pub jit_resident: u64,
    /// Seconds each worker spent running shard bodies, by worker index.
    pub busy_seconds: Vec<f64>,
    /// Shards enqueued on each worker's home queue at submit time
    /// (before any stealing), by worker index. The serial executor
    /// reports a single entry holding every shard.
    pub queue_depths: Vec<usize>,
    /// Wall-clock seconds for the whole call (submit to reduce).
    pub wall_seconds: f64,
}

impl ExecStats {
    /// Fraction of decode lookups served from cache (0 when no lookups
    /// happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean fraction of the call's wall-clock each worker spent busy —
    /// the host-side analogue of the INAX PU utilization `U(r)`.
    /// Returns 0 when the call did no timed work.
    pub fn worker_utilization(&self) -> f64 {
        if self.workers == 0 || self.wall_seconds <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.busy_seconds.iter().sum();
        (busy / (self.workers as f64 * self.wall_seconds)).min(1.0)
    }
}

/// What a backend's `take_exec_stats` call can report.
///
/// The old API returned `Option<ExecStats>`, which conflated "this
/// backend never produces stats" with "no evaluation ran since the
/// last take" — both came back `None`, silently dropping the
/// distinction. This enum keeps the three states apart so callers can
/// tell a misconfigured pipeline from a merely quiet one.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ExecStatsState {
    /// The backend does not run through an executor at all; it will
    /// never produce stats. This is the trait default.
    #[default]
    Unavailable,
    /// The backend has an executor but no evaluation completed since
    /// stats were last taken.
    Idle,
    /// Stats from the most recent evaluation; taking them resets the
    /// backend to [`ExecStatsState::Idle`].
    Ready(ExecStats),
}

impl ExecStatsState {
    /// The stats, if ready — the shape most telemetry call sites want.
    pub fn into_option(self) -> Option<ExecStats> {
        match self {
            ExecStatsState::Ready(stats) => Some(stats),
            ExecStatsState::Unavailable | ExecStatsState::Idle => None,
        }
    }

    /// True when the producer can never yield stats.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, ExecStatsState::Unavailable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_state_separates_never_from_not_yet() {
        assert!(ExecStatsState::Unavailable.is_unavailable());
        assert!(!ExecStatsState::Idle.is_unavailable());
        assert_eq!(ExecStatsState::Unavailable.into_option(), None);
        assert_eq!(ExecStatsState::Idle.into_option(), None);
        let stats = ExecStats {
            workers: 2,
            ..ExecStats::default()
        };
        assert_eq!(
            ExecStatsState::Ready(stats.clone()).into_option(),
            Some(stats)
        );
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut stats = ExecStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        stats.cache_hits = 3;
        stats.cache_misses = 1;
        assert!((stats.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_bounded() {
        let stats = ExecStats {
            workers: 2,
            wall_seconds: 1.0,
            busy_seconds: vec![0.9, 0.7],
            ..ExecStats::default()
        };
        let u = stats.worker_utilization();
        assert!(u > 0.0 && u <= 1.0);
        assert!((u - 0.8).abs() < 1e-12);
    }

    #[test]
    fn serializes_round_trip() {
        let stats = ExecStats {
            workers: 4,
            shards: 8,
            items: 32,
            shard_seconds: vec![0.1; 8],
            steal_count: 2,
            cache_hits: 10,
            cache_misses: 22,
            cache_entries: 16,
            cache_evictions: 3,
            jit_compiled: 5,
            jit_bytes: 4096,
            jit_compile_seconds: 0.001,
            jit_fallbacks: 1,
            jit_activations: 900,
            jit_resident: 4,
            busy_seconds: vec![0.2; 4],
            queue_depths: vec![2; 4],
            wall_seconds: 0.3,
        };
        let json = serde_json::to_string(&stats).expect("serialize");
        let back: ExecStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(stats, back);
    }
}
