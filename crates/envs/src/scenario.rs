//! Scenario parameterization: seeded distributions over environment
//! physics.
//!
//! The fixed-env contract ("one [`EnvId`](crate::EnvId) → one
//! environment with hard-coded constants") overfits fitness to a
//! single pole length, gravity, and terrain. This module refactors
//! that contract into "one `EnvId` + [`ScenarioParams`] → a concrete
//! environment", plus a [`ScenarioDistribution`] that samples
//! parameter sets from per-field seeded ranges — the substrate for
//! evaluating each genome across K scenarios and for held-out
//! generalization checks.
//!
//! ## The parameter vocabulary
//!
//! All environments share one [`ScenarioParams`] struct. Multiplicative
//! *scale* fields default to `1.0` and additive *disturbance* fields
//! default to `0.0`, so the default parameter set reproduces today's
//! constants **bit-identically** (an `x * 1.0` multiply is IEEE-exact,
//! and zero-valued disturbances are skipped entirely). Each
//! environment maps the fields onto its own physics:
//!
//! | Field | CartPole | Pendulum | Acrobot | MountainCar | LunarLander | Bipedal | Pong |
//! |-------|----------|----------|---------|-------------|-------------|---------|------|
//! | `gravity_scale` | gravity | gravity | gravity | hill gravity | gravity | — | — |
//! | `mass_scale` | pole mass | bob mass | link masses | — | hull mass | — | — |
//! | `length_scale` | pole length | rod length | link lengths | — | — | — | — |
//! | `force_scale` | push force | torque gain | torque gain | motor force | thruster accel | motor torque | paddle speed |
//! | `wind` | lateral accel | angular accel | tip torque | lateral accel | lateral accel | headwind | ball drift |
//! | `roughness` | — | — | — | — | — | extra drag | — |
//!
//! ## Determinism
//!
//! [`ScenarioDistribution::sample`] derives every parameter from a
//! single `u64` seed via `StdRng`, drawing fields in a fixed order, so
//! the same seed always yields the same `ScenarioParams` regardless of
//! thread count or call site. Degenerate ranges (`lo == hi`) return
//! `lo` exactly without consuming RNG state asymmetrically — they
//! still draw nothing, keeping a fully-fixed distribution free of RNG
//! influence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One concrete scenario: the physics knobs an environment is built
/// with. `Default` reproduces the classic hard-coded constants
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ScenarioParams {
    /// Multiplies the environment's gravitational constant.
    pub gravity_scale: f64,
    /// Multiplies the moving body's mass (pole, bob, links, hull).
    pub mass_scale: f64,
    /// Multiplies the characteristic length (pole, rod, links).
    pub length_scale: f64,
    /// Multiplies the actuator strength (push force, torque, thrust).
    pub force_scale: f64,
    /// Constant lateral disturbance added each step (env-specific
    /// units); `0.0` means no disturbance code runs at all.
    pub wind: f64,
    /// Extra surface drag / terrain roughness (only bipedal uses it);
    /// `0.0` means untouched dynamics.
    pub roughness: f64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            gravity_scale: 1.0,
            mass_scale: 1.0,
            length_scale: 1.0,
            force_scale: 1.0,
            wind: 0.0,
            roughness: 0.0,
        }
    }
}

impl ScenarioParams {
    /// `true` when every field holds its default — the bit-identical
    /// legacy physics.
    pub fn is_default(&self) -> bool {
        *self == ScenarioParams::default()
    }
}

/// An inclusive-exclusive sampling range for one scenario field.
/// A degenerate range (`lo == hi`) is *fixed*: sampling returns `lo`
/// exactly and draws nothing from the RNG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    /// Lower bound (returned exactly when the range is fixed).
    pub lo: f64,
    /// Upper bound (exclusive when sampling).
    pub hi: f64,
}

impl ParamRange {
    /// A range pinned to a single value.
    pub fn fixed(value: f64) -> Self {
        ParamRange {
            lo: value,
            hi: value,
        }
    }

    /// A sampling range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// If either bound is non-finite or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid scenario range [{lo}, {hi})"
        );
        ParamRange { lo, hi }
    }

    /// `true` when the range is pinned to a single value.
    pub fn is_fixed(&self) -> bool {
        self.lo == self.hi
    }

    /// One value from the range: `lo` exactly when fixed, otherwise a
    /// uniform draw from `[lo, hi)`.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        if self.is_fixed() {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Per-field seeded ranges over [`ScenarioParams`]. `Default` pins
/// every field to its default value, so the default distribution
/// samples exactly the legacy physics no matter the seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ScenarioDistribution {
    /// Range for [`ScenarioParams::gravity_scale`].
    pub gravity_scale: ParamRange,
    /// Range for [`ScenarioParams::mass_scale`].
    pub mass_scale: ParamRange,
    /// Range for [`ScenarioParams::length_scale`].
    pub length_scale: ParamRange,
    /// Range for [`ScenarioParams::force_scale`].
    pub force_scale: ParamRange,
    /// Range for [`ScenarioParams::wind`].
    pub wind: ParamRange,
    /// Range for [`ScenarioParams::roughness`].
    pub roughness: ParamRange,
}

impl Default for ScenarioDistribution {
    fn default() -> Self {
        let d = ScenarioParams::default();
        ScenarioDistribution {
            gravity_scale: ParamRange::fixed(d.gravity_scale),
            mass_scale: ParamRange::fixed(d.mass_scale),
            length_scale: ParamRange::fixed(d.length_scale),
            force_scale: ParamRange::fixed(d.force_scale),
            wind: ParamRange::fixed(d.wind),
            roughness: ParamRange::fixed(d.roughness),
        }
    }
}

impl ScenarioDistribution {
    /// `true` when every range is pinned to the default parameter set
    /// — the distribution that can only ever produce legacy physics.
    pub fn is_default(&self) -> bool {
        *self == ScenarioDistribution::default()
    }

    /// Samples one parameter set. The draw order is fixed (gravity,
    /// mass, length, force, wind, roughness), so the same seed always
    /// produces the same parameters.
    pub fn sample(&self, seed: u64) -> ScenarioParams {
        let mut rng = StdRng::seed_from_u64(seed);
        ScenarioParams {
            gravity_scale: self.gravity_scale.sample(&mut rng),
            mass_scale: self.mass_scale.sample(&mut rng),
            length_scale: self.length_scale.sample(&mut rng),
            force_scale: self.force_scale.sample(&mut rng),
            wind: self.wind.sample(&mut rng),
            roughness: self.roughness.sample(&mut rng),
        }
    }

    /// A moderate *training* distribution: ±15% physics scales plus a
    /// light disturbance — wide enough to punish overfitting, narrow
    /// enough that the default policy structure still solves it.
    pub fn moderate() -> Self {
        ScenarioDistribution {
            gravity_scale: ParamRange::new(0.85, 1.15),
            mass_scale: ParamRange::new(0.85, 1.15),
            length_scale: ParamRange::new(0.85, 1.15),
            force_scale: ParamRange::new(0.85, 1.15),
            wind: ParamRange::new(-0.05, 0.05),
            roughness: ParamRange::new(0.0, 0.1),
        }
    }

    /// A *shifted* held-out distribution: scales pushed beyond the
    /// training support (heavier, longer, weaker motors, stronger
    /// wind), for measuring the train-vs-held-out generalization gap.
    pub fn shifted() -> Self {
        ScenarioDistribution {
            gravity_scale: ParamRange::new(1.1, 1.3),
            mass_scale: ParamRange::new(1.1, 1.3),
            length_scale: ParamRange::new(1.1, 1.3),
            force_scale: ParamRange::new(0.7, 0.9),
            wind: ParamRange::new(0.05, 0.1),
            roughness: ParamRange::new(0.1, 0.2),
        }
    }

    /// Builder-style override of the gravity range.
    pub fn with_gravity_scale(mut self, range: ParamRange) -> Self {
        self.gravity_scale = range;
        self
    }

    /// Builder-style override of the mass range.
    pub fn with_mass_scale(mut self, range: ParamRange) -> Self {
        self.mass_scale = range;
        self
    }

    /// Builder-style override of the length range.
    pub fn with_length_scale(mut self, range: ParamRange) -> Self {
        self.length_scale = range;
        self
    }

    /// Builder-style override of the force range.
    pub fn with_force_scale(mut self, range: ParamRange) -> Self {
        self.force_scale = range;
        self
    }

    /// Builder-style override of the wind range.
    pub fn with_wind(mut self, range: ParamRange) -> Self {
        self.wind = range;
        self
    }

    /// Builder-style override of the roughness range.
    pub fn with_roughness(mut self, range: ParamRange) -> Self {
        self.roughness = range;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_identity() {
        let p = ScenarioParams::default();
        assert_eq!(p.gravity_scale, 1.0);
        assert_eq!(p.mass_scale, 1.0);
        assert_eq!(p.length_scale, 1.0);
        assert_eq!(p.force_scale, 1.0);
        assert_eq!(p.wind, 0.0);
        assert_eq!(p.roughness, 0.0);
        assert!(p.is_default());
    }

    #[test]
    fn default_distribution_samples_default_params_for_any_seed() {
        let dist = ScenarioDistribution::default();
        assert!(dist.is_default());
        for seed in [0u64, 1, 42, u64::MAX] {
            assert!(dist.sample(seed).is_default());
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = ScenarioDistribution::moderate();
        let a = dist.sample(12345);
        let b = dist.sample(12345);
        assert_eq!(a, b);
        let c = dist.sample(12346);
        assert_ne!(a, c, "different seeds should perturb the draw");
    }

    #[test]
    fn sampled_params_respect_their_ranges() {
        let dist = ScenarioDistribution::moderate();
        for seed in 0..256u64 {
            let p = dist.sample(seed);
            assert!((0.85..1.15).contains(&p.gravity_scale));
            assert!((0.85..1.15).contains(&p.mass_scale));
            assert!((0.85..1.15).contains(&p.length_scale));
            assert!((0.85..1.15).contains(&p.force_scale));
            assert!((-0.05..0.05).contains(&p.wind));
            assert!((0.0..0.1).contains(&p.roughness));
        }
    }

    #[test]
    fn fixed_ranges_return_the_exact_value() {
        let range = ParamRange::fixed(0.3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(range.sample(&mut rng).to_bits(), 0.3f64.to_bits());
        assert!(range.is_fixed());
    }

    #[test]
    #[should_panic(expected = "invalid scenario range")]
    fn inverted_ranges_panic() {
        let _ = ParamRange::new(2.0, 1.0);
    }

    #[test]
    fn distributions_round_trip_through_serde() {
        let dist = ScenarioDistribution::shifted();
        let json = serde_json::to_string(&dist).unwrap();
        let back: ScenarioDistribution = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dist);
    }
}
