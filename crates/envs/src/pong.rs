//! Pong (Atari-class benchmark): the paper's evaluation mentions "a
//! mix of control benchmarks and Atari games", and its Fig. 11 caption
//! averages over "Env1–Env7". This is the seventh environment: a
//! from-scratch planar Pong against a tracking opponent.
//!
//! Unlike ALE this is a state-based (RAM-like) observation — 6 floats —
//! which is what a NEAT-evolved network would consume on an edge
//! device (pixel stacks are out of scope for 10-node networks).

use crate::env::{expect_discrete, Action, ActionSpace, Environment, Step};
use crate::scenario::ScenarioParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DT: f64 = 1.0;
const PADDLE_SPEED: f64 = 0.04;
const OPPONENT_SPEED: f64 = 0.02;
const PADDLE_HALF: f64 = 0.1;
const COURT_HALF: f64 = 0.5;
const BALL_SPEED: f64 = 0.03;
const WIN_SCORE: i32 = 5;

/// Scenario-resolved physics (defaults are IEEE-exact against the
/// classic constants). `force_scale` scales the player's paddle speed;
/// `wind` is a constant vertical drift on the ball.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PongPhys {
    paddle_speed: f64,
    wind: f64,
}

impl PongPhys {
    fn from_params(params: &ScenarioParams) -> Self {
        PongPhys {
            paddle_speed: PADDLE_SPEED * params.force_scale,
            wind: params.wind,
        }
    }
}

/// A planar Pong rally against a built-in tracking opponent.
///
/// Observation: `[ball_x, ball_y, ball_vx, ball_vy, own_paddle_y,
/// opponent_paddle_y]`. Actions: 0 stay, 1 up, 2 down. Reward: +1 per
/// point scored, −1 per point conceded, +0.01 per own-paddle hit
/// (shaping). The episode ends at 5 points either way.
#[derive(Debug, Clone)]
pub struct Pong {
    phys: PongPhys,
    ball: [f64; 4],
    own_y: f64,
    opp_y: f64,
    own_score: i32,
    opp_score: i32,
    steps: usize,
    done: bool,
    max_steps: usize,
    rng: StdRng,
}

impl Pong {
    /// Creates the environment with a 3000-step limit.
    pub fn new() -> Self {
        Self::with_max_steps(3000)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self::with_scenario_max_steps(&ScenarioParams::default(), max_steps)
    }

    /// Creates the environment with scenario physics and the default
    /// 3000-step limit.
    pub fn with_scenario(params: &ScenarioParams) -> Self {
        Self::with_scenario_max_steps(params, 3000)
    }

    /// Creates the environment with scenario physics and a custom step
    /// limit.
    pub fn with_scenario_max_steps(params: &ScenarioParams, max_steps: usize) -> Self {
        Pong {
            phys: PongPhys::from_params(params),
            ball: [0.0; 4],
            own_y: 0.0,
            opp_y: 0.0,
            own_score: 0,
            opp_score: 0,
            steps: 0,
            done: true,
            max_steps,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Current score `(own, opponent)`.
    pub fn score(&self) -> (i32, i32) {
        (self.own_score, self.opp_score)
    }

    fn observation(&self) -> Vec<f64> {
        vec![
            self.ball[0],
            self.ball[1],
            self.ball[2] / BALL_SPEED,
            self.ball[3] / BALL_SPEED,
            self.own_y,
            self.opp_y,
        ]
    }

    fn serve(&mut self, toward_own: bool) {
        let angle: f64 = self.rng.gen_range(-0.7..0.7);
        let dir = if toward_own { 1.0 } else { -1.0 };
        self.ball = [
            0.0,
            self.rng.gen_range(-0.2..0.2),
            dir * BALL_SPEED * angle.cos(),
            BALL_SPEED * angle.sin(),
        ];
    }
}

impl Default for Pong {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for Pong {
    fn observation_size(&self) -> usize {
        6
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(3)
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        self.rng = StdRng::seed_from_u64(seed);
        self.own_y = 0.0;
        self.opp_y = 0.0;
        self.own_score = 0;
        self.opp_score = 0;
        self.steps = 0;
        self.done = false;
        self.serve(true);
        self.observation()
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished (terminated or
    /// truncated) without an intervening reset, or if the action is
    /// not `Discrete(0..=2)`.
    fn step(&mut self, action: &Action) -> Step {
        assert!(!self.done, "pong: step() called on a finished episode");
        let a = expect_discrete(action, 3, "pong");
        match a {
            1 => self.own_y = (self.own_y + self.phys.paddle_speed * DT).min(COURT_HALF),
            2 => self.own_y = (self.own_y - self.phys.paddle_speed * DT).max(-COURT_HALF),
            _ => {}
        }
        // Opponent: slow tracker of the ball (beatable).
        let target = self.ball[1];
        let delta = (target - self.opp_y).clamp(-OPPONENT_SPEED * DT, OPPONENT_SPEED * DT);
        self.opp_y = (self.opp_y + delta).clamp(-COURT_HALF, COURT_HALF);

        // Ball physics: own paddle lives at x = +0.5, opponent at -0.5.
        if self.phys.wind != 0.0 {
            self.ball[3] += self.phys.wind * BALL_SPEED * DT;
        }
        self.ball[0] += self.ball[2] * DT;
        self.ball[1] += self.ball[3] * DT;
        if self.ball[1].abs() > COURT_HALF {
            self.ball[1] = self.ball[1].clamp(-COURT_HALF, COURT_HALF);
            self.ball[3] = -self.ball[3];
        }
        let mut reward = 0.0;
        if self.ball[0] >= COURT_HALF {
            if (self.ball[1] - self.own_y).abs() <= PADDLE_HALF {
                // Returned: reflect with english from the hit offset.
                self.ball[0] = COURT_HALF;
                self.ball[2] = -self.ball[2].abs();
                self.ball[3] += 0.5 * BALL_SPEED * (self.ball[1] - self.own_y) / PADDLE_HALF;
                reward += 0.01;
            } else {
                self.opp_score += 1;
                reward -= 1.0;
                self.serve(true);
            }
        } else if self.ball[0] <= -COURT_HALF {
            if (self.ball[1] - self.opp_y).abs() <= PADDLE_HALF {
                self.ball[0] = -COURT_HALF;
                self.ball[2] = self.ball[2].abs();
                self.ball[3] += 0.5 * BALL_SPEED * (self.ball[1] - self.opp_y) / PADDLE_HALF;
            } else {
                self.own_score += 1;
                reward += 1.0;
                self.serve(false);
            }
        }

        self.steps += 1;
        let terminated = self.own_score >= WIN_SCORE || self.opp_score >= WIN_SCORE;
        let truncated = !terminated && self.steps >= self.max_steps;
        self.done = terminated || truncated;
        Step {
            observation: self.observation(),
            reward,
            terminated,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "pong"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn play(policy: impl Fn(&[f64]) -> usize, seed: u64) -> (f64, i32, i32) {
        let mut env = Pong::new();
        let mut obs = env.reset(seed);
        let mut total = 0.0;
        loop {
            let s = env.step(&Action::Discrete(policy(&obs)));
            total += s.reward;
            obs = s.observation.clone();
            if s.done() {
                let (own, opp) = env.score();
                return (total, own, opp);
            }
        }
    }

    #[test]
    fn idle_paddle_loses() {
        let (total, own, opp) = play(|_| 0, 1);
        assert_eq!(opp, WIN_SCORE, "the tracker wins against a frozen paddle");
        assert!(own < WIN_SCORE);
        assert!(total < 0.0);
    }

    #[test]
    fn ball_tracking_beats_idling() {
        let tracker = |obs: &[f64]| {
            if obs[1] > obs[4] + 0.02 {
                1
            } else if obs[1] < obs[4] - 0.02 {
                2
            } else {
                0
            }
        };
        let (track_reward, own, _) = play(tracker, 2);
        let (idle_reward, _, _) = play(|_| 0, 2);
        assert!(track_reward > idle_reward);
        assert!(own >= 1, "a perfect tracker should score at least once");
    }

    #[test]
    fn observation_shape_and_bounds() {
        let mut env = Pong::new();
        let obs = env.reset(3);
        assert_eq!(obs.len(), 6);
        for _ in 0..500 {
            let s = env.step(&Action::Discrete(1));
            assert!(
                s.observation[1].abs() <= COURT_HALF + 1e-9,
                "ball stays in court"
            );
            assert!(
                s.observation[4].abs() <= COURT_HALF + 1e-9,
                "paddle stays in court"
            );
            if s.done() {
                break;
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = play(|obs| usize::from(obs[1] > obs[4]), 7);
        let b = play(|obs| usize::from(obs[1] > obs[4]), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn episode_terminates_at_win_score() {
        let (_, own, opp) = play(|_| 0, 9);
        assert!(own == WIN_SCORE || opp == WIN_SCORE);
    }

    #[test]
    fn default_scenario_matches_legacy_physics_bitwise() {
        let mut legacy = Pong::new();
        let mut scenario = Pong::with_scenario(&ScenarioParams::default());
        assert_eq!(legacy.reset(7), scenario.reset(7));
        for _ in 0..300 {
            let sa = legacy.step(&Action::Discrete(1));
            let sb = scenario.step(&Action::Discrete(1));
            for (x, y) in sa.observation.iter().zip(&sb.observation) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            if sa.done() {
                break;
            }
        }
    }

    #[test]
    fn slower_paddle_changes_the_rally() {
        let slow = ScenarioParams {
            force_scale: 0.25,
            ..ScenarioParams::default()
        };
        let mut full = Pong::new();
        let mut crippled = Pong::with_scenario(&slow);
        full.reset(7);
        crippled.reset(7);
        let a = full.step(&Action::Discrete(1));
        let b = crippled.step(&Action::Discrete(1));
        assert!(
            b.observation[4] < a.observation[4],
            "slower paddle moves less"
        );
    }
}
