//! Environment wrappers: composable modifiers for deployment studies.
//!
//! The paper's *model-tuning* use case is an agent meeting a shifted
//! version of its training environment ("a robot trained to walk on
//! grass but now encounters sand"). These wrappers produce such shifts
//! deterministically: sensor noise, action repetition (slower control
//! loops), and tighter time limits — without touching the underlying
//! physics implementations.

use crate::env::{Action, ActionSpace, Environment, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Adds deterministic Gaussian noise to every observation.
///
/// The noise stream is seeded from the episode seed, so wrapped
/// environments remain fully reproducible.
///
/// # Example
///
/// ```
/// use e3_envs::{CartPole, Environment};
/// use e3_envs::wrappers::ObservationNoise;
///
/// let mut clean = CartPole::new();
/// let mut noisy = ObservationNoise::new(CartPole::new(), 0.05);
/// let a = clean.reset(3);
/// let b = noisy.reset(3);
/// assert_ne!(a, b, "observations are perturbed");
/// ```
#[derive(Debug, Clone)]
pub struct ObservationNoise<E> {
    inner: E,
    sigma: f64,
    rng: StdRng,
}

impl<E: Environment> ObservationNoise<E> {
    /// Wraps `inner`, adding zero-mean Gaussian noise with standard
    /// deviation `sigma` to every observation component.
    pub fn new(inner: E, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        ObservationNoise {
            inner,
            sigma,
            rng: StdRng::seed_from_u64(0),
        }
    }

    fn perturb(&mut self, mut obs: Vec<f64>) -> Vec<f64> {
        for v in &mut obs {
            let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            *v += self.sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
        obs
    }
}

impl<E: Environment> Environment for ObservationNoise<E> {
    fn observation_size(&self) -> usize {
        self.inner.observation_size()
    }

    fn action_space(&self) -> ActionSpace {
        self.inner.action_space()
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        self.rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let obs = self.inner.reset(seed);
        self.perturb(obs)
    }

    fn step(&mut self, action: &Action) -> Step {
        let mut step = self.inner.step(action);
        step.observation = self.perturb(std::mem::take(&mut step.observation));
        step
    }

    fn max_episode_steps(&self) -> usize {
        self.inner.max_episode_steps()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Repeats each action for `k` physics steps (a slower control loop),
/// summing the rewards — the standard frame-skip wrapper.
#[derive(Debug, Clone)]
pub struct ActionRepeat<E> {
    inner: E,
    repeat: usize,
}

impl<E: Environment> ActionRepeat<E> {
    /// Wraps `inner`, repeating each submitted action `repeat` times.
    ///
    /// # Panics
    ///
    /// Panics if `repeat == 0`.
    pub fn new(inner: E, repeat: usize) -> Self {
        assert!(repeat > 0, "action repeat must be at least 1");
        ActionRepeat { inner, repeat }
    }
}

impl<E: Environment> Environment for ActionRepeat<E> {
    fn observation_size(&self) -> usize {
        self.inner.observation_size()
    }

    fn action_space(&self) -> ActionSpace {
        self.inner.action_space()
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        self.inner.reset(seed)
    }

    fn step(&mut self, action: &Action) -> Step {
        let mut total_reward = 0.0;
        let mut last = None;
        for _ in 0..self.repeat {
            let step = self.inner.step(action);
            total_reward += step.reward;
            let done = step.done();
            last = Some(step);
            if done {
                break;
            }
        }
        let mut step = last.expect("repeat >= 1");
        step.reward = total_reward;
        step
    }

    fn max_episode_steps(&self) -> usize {
        self.inner.max_episode_steps().div_ceil(self.repeat)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Overrides the episode step limit with a tighter one.
#[derive(Debug, Clone)]
pub struct TimeLimit<E> {
    inner: E,
    limit: usize,
    steps: usize,
    done: bool,
}

impl<E: Environment> TimeLimit<E> {
    /// Wraps `inner` with a (typically tighter) step limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn new(inner: E, limit: usize) -> Self {
        assert!(limit > 0, "time limit must be positive");
        TimeLimit {
            inner,
            limit,
            steps: 0,
            done: true,
        }
    }
}

impl<E: Environment> Environment for TimeLimit<E> {
    fn observation_size(&self) -> usize {
        self.inner.observation_size()
    }

    fn action_space(&self) -> ActionSpace {
        self.inner.action_space()
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        self.steps = 0;
        self.done = false;
        self.inner.reset(seed)
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished — including after
    /// the wrapper's *own* truncation, when the inner environment
    /// would still accept steps. This keeps the uniform post-done
    /// `step` contract of [`Environment::step`] intact under
    /// wrapping.
    fn step(&mut self, action: &Action) -> Step {
        assert!(
            !self.done,
            "{}: step() called on a finished episode (time limit)",
            self.inner.name()
        );
        let mut step = self.inner.step(action);
        self.steps += 1;
        if !step.terminated && self.steps >= self.limit {
            step.truncated = true;
        }
        self.done = step.done();
        step
    }

    fn max_episode_steps(&self) -> usize {
        self.limit.min(self.inner.max_episode_steps())
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartpole::CartPole;
    use crate::pendulum::Pendulum;

    #[test]
    fn observation_noise_is_deterministic_per_seed() {
        let mut a = ObservationNoise::new(CartPole::new(), 0.1);
        let mut b = ObservationNoise::new(CartPole::new(), 0.1);
        assert_eq!(a.reset(5), b.reset(5));
        let step_a = a.step(&Action::Discrete(1));
        let step_b = b.step(&Action::Discrete(1));
        assert_eq!(step_a, step_b);
    }

    #[test]
    fn zero_noise_is_transparent() {
        let mut clean = CartPole::new();
        let mut wrapped = ObservationNoise::new(CartPole::new(), 0.0);
        assert_eq!(clean.reset(2), wrapped.reset(2));
        assert_eq!(
            clean.step(&Action::Discrete(0)),
            wrapped.step(&Action::Discrete(0))
        );
    }

    #[test]
    fn action_repeat_sums_rewards_and_shortens_episodes() {
        let mut plain = Pendulum::new();
        let mut skipped = ActionRepeat::new(Pendulum::new(), 4);
        plain.reset(1);
        skipped.reset(1);
        assert_eq!(skipped.max_episode_steps(), 50);
        // One wrapped step == 4 plain steps, rewards summed.
        let wrapped = skipped.step(&Action::Continuous(vec![1.0]));
        let mut total = 0.0;
        let mut last_obs = Vec::new();
        for _ in 0..4 {
            let s = plain.step(&Action::Continuous(vec![1.0]));
            total += s.reward;
            last_obs = s.observation;
        }
        assert!((wrapped.reward - total).abs() < 1e-12);
        assert_eq!(wrapped.observation, last_obs);
    }

    #[test]
    fn action_repeat_stops_at_termination() {
        let mut env = ActionRepeat::new(CartPole::new(), 10);
        env.reset(1);
        let mut steps = 0;
        loop {
            let s = env.step(&Action::Discrete(1));
            steps += 1;
            if s.done() {
                assert!(s.terminated);
                break;
            }
            assert!(steps < 100);
        }
    }

    #[test]
    fn time_limit_truncates_early() {
        let mut env = TimeLimit::new(Pendulum::new(), 10);
        env.reset(3);
        for i in 0..10 {
            let s = env.step(&Action::Continuous(vec![0.0]));
            assert_eq!(s.truncated, i == 9, "truncate exactly at the new limit");
        }
        assert_eq!(env.max_episode_steps(), 10);
    }

    #[test]
    #[should_panic(expected = "finished episode")]
    fn time_limit_panics_after_its_own_truncation() {
        // The inner pendulum would happily keep stepping (its own
        // limit is 200); the wrapper must still enforce the uniform
        // post-done panic contract after truncating at 5.
        let mut env = TimeLimit::new(Pendulum::new(), 5);
        env.reset(3);
        for _ in 0..5 {
            env.step(&Action::Continuous(vec![0.0]));
        }
        let _ = env.step(&Action::Continuous(vec![0.0]));
    }

    #[test]
    fn time_limit_reset_clears_the_done_latch() {
        let mut env = TimeLimit::new(Pendulum::new(), 2);
        env.reset(1);
        env.step(&Action::Continuous(vec![0.0]));
        env.step(&Action::Continuous(vec![0.0]));
        env.reset(1);
        let s = env.step(&Action::Continuous(vec![0.0]));
        assert!(!s.done());
    }

    #[test]
    fn wrappers_propagate_inner_name() {
        assert_eq!(
            ObservationNoise::new(CartPole::new(), 0.1).name(),
            "cartpole"
        );
        assert_eq!(ActionRepeat::new(Pendulum::new(), 2).name(), "pendulum");
        assert_eq!(TimeLimit::new(CartPole::new(), 5).name(), "cartpole");
        // Stacked wrappers still surface the innermost env's name.
        let stacked = TimeLimit::new(ActionRepeat::new(CartPole::new(), 2), 5);
        assert_eq!(stacked.name(), "cartpole");
    }
}
