//! Batch-first environment stepping: many episodes in lockstep.
//!
//! `BENCH_exec.json` showed the per-individual eval API defeating the
//! thread pool — sub-microsecond work items drown in scheduling
//! overhead. The fix (the TensorNEAT insight) is to restructure the
//! eval loop population-major: a [`BatchEnv`] advances a whole *batch*
//! of episodes per call, reading and writing struct-of-arrays buffers
//! ([`StepBatch`]) so the per-step cost is one virtual dispatch and a
//! tight loop over lanes instead of one dispatch, one `Vec` allocation
//! and one `Step` struct per individual.
//!
//! # Lanes and parking
//!
//! A batch has a fixed number of **lanes**, one episode per lane.
//! Episodes end at different times; a finished lane is **parked**
//! (`active[lane] = false`) and skipped by every subsequent
//! [`BatchEnv::step_batch`] instead of stalling the batch or panicking
//! the way a scalar [`Environment::step`] on a finished episode would.
//! The [`StepBatch`] carries the authoritative lane state: callers
//! must not flip `active` back on without a fresh
//! [`BatchEnv::reset_batch`].
//!
//! # Determinism contract
//!
//! Lane `i` of a batch reproduces, **bit for bit**, the trajectory the
//! scalar environment produces from the same reset seed and action
//! sequence. Lanes are fully independent: the hand-vectorized SoA
//! implementations (`CartPoleBatch`, `LunarLanderBatch`) perform each
//! lane's floating-point operations in exactly the scalar order, and
//! the generic [`ScalarBatch`] adapter simply owns one scalar
//! environment per lane. Batch composition and lane count never affect
//! a lane's trajectory.

use crate::env::{Action, ActionSpace, Environment, Step};

/// Struct-of-arrays step buffers for one batch of episodes.
///
/// All vectors are lane-indexed; `observations` is lane-major flat
/// storage (`lanes × obs_size`). The buffer is caller-owned and reused
/// across steps — no per-step allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct StepBatch {
    obs_size: usize,
    /// Lane-major observations: lane `i` occupies
    /// `observations[i*obs_size .. (i+1)*obs_size]`. Rows of parked
    /// lanes keep their final (terminal) observation.
    pub observations: Vec<f64>,
    /// Reward earned by each lane's last transition; `0.0` for lanes
    /// that were parked when the step ran.
    pub rewards: Vec<f64>,
    /// Whether each lane's episode reached a terminal state. Sticky
    /// once set (until the next reset).
    pub terminated: Vec<bool>,
    /// Whether each lane's episode hit the step limit. Sticky once set
    /// (until the next reset).
    pub truncated: Vec<bool>,
    /// The active-lane mask: `true` while the lane's episode is still
    /// running, `false` once parked.
    pub active: Vec<bool>,
}

impl StepBatch {
    /// Creates zeroed buffers for `lanes` episodes of `obs_size`
    /// observations. All lanes start parked; [`BatchEnv::reset_batch`]
    /// activates them.
    pub fn new(lanes: usize, obs_size: usize) -> Self {
        StepBatch {
            obs_size,
            observations: vec![0.0; lanes * obs_size],
            rewards: vec![0.0; lanes],
            terminated: vec![false; lanes],
            truncated: vec![false; lanes],
            active: vec![false; lanes],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.rewards.len()
    }

    /// Observation length per lane.
    pub fn obs_size(&self) -> usize {
        self.obs_size
    }

    /// The observation row of `lane`.
    pub fn obs_row(&self, lane: usize) -> &[f64] {
        &self.observations[lane * self.obs_size..(lane + 1) * self.obs_size]
    }

    /// The mutable observation row of `lane` (for [`BatchEnv`]
    /// implementations).
    pub fn obs_row_mut(&mut self, lane: usize) -> &mut [f64] {
        &mut self.observations[lane * self.obs_size..(lane + 1) * self.obs_size]
    }

    /// Number of lanes still running.
    pub fn active_lanes(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Whether every lane has parked (the batch loop's exit test).
    pub fn all_parked(&self) -> bool {
        !self.active.iter().any(|&a| a)
    }

    fn assert_lanes(&self, lanes: usize, what: &str) {
        assert_eq!(
            self.lanes(),
            lanes,
            "{what}: batch has {} lanes, environment has {lanes}",
            self.lanes()
        );
    }
}

/// A batch of environments stepped in lockstep.
///
/// Mirrors [`Environment`], lifted to a fixed number of lanes. See the
/// [module docs](self) for lane parking and the determinism contract.
pub trait BatchEnv {
    /// Number of lanes (episodes per batch).
    fn lanes(&self) -> usize;

    /// Length of one lane's observation vector.
    fn observation_size(&self) -> usize;

    /// The per-lane action space (identical across lanes).
    fn action_space(&self) -> ActionSpace;

    /// Maximum steps per episode before truncation (per lane).
    fn max_episode_steps(&self) -> usize;

    /// Short name of the underlying environment (e.g. `"cartpole"`).
    fn name(&self) -> &'static str;

    /// Resets every lane: lane `i` is seeded with `seeds[i]` exactly
    /// like [`Environment::reset`], its observation row is filled, and
    /// the lane is marked active with cleared reward/done flags.
    ///
    /// # Panics
    ///
    /// Panics if `seeds.len()` or the batch's lane count differ from
    /// [`BatchEnv::lanes`].
    fn reset_batch(&mut self, seeds: &[u64], batch: &mut StepBatch);

    /// Advances every **active** lane one timestep with its action;
    /// parked lanes are skipped (reward set to `0.0`, observation and
    /// done flags untouched). A lane whose episode ends this step has
    /// its terminal observation, reward and flags recorded, then parks.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len()` or the batch's lane count differ from
    /// [`BatchEnv::lanes`], or if an active lane's action does not
    /// match [`BatchEnv::action_space`] (same validation as the scalar
    /// [`Environment::step`]). Actions of parked lanes are ignored.
    fn step_batch(&mut self, actions: &[Action], batch: &mut StepBatch);
}

/// Generic [`BatchEnv`] adapter over `N` scalar environments: the
/// reference semantics every hand-vectorized implementation must
/// reproduce, and the fallback [`crate::EnvId::make_batch`] uses for
/// environments without a SoA port.
///
/// # Example
///
/// ```
/// use e3_envs::{Action, BatchEnv, CartPole, ScalarBatch, StepBatch};
///
/// let mut env = ScalarBatch::from_fn(3, |_| CartPole::new());
/// let mut batch = StepBatch::new(3, env.observation_size());
/// env.reset_batch(&[7, 8, 9], &mut batch);
/// let actions = vec![Action::Discrete(1); 3];
/// env.step_batch(&actions, &mut batch);
/// assert_eq!(batch.active_lanes(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ScalarBatch<E> {
    envs: Vec<E>,
}

impl<E: Environment> ScalarBatch<E> {
    /// Wraps one pre-built scalar environment per lane.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty.
    pub fn new(envs: Vec<E>) -> Self {
        assert!(!envs.is_empty(), "a batch needs at least one lane");
        ScalarBatch { envs }
    }

    /// Builds `lanes` environments with a per-lane constructor.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn from_fn(lanes: usize, make: impl FnMut(usize) -> E) -> Self {
        ScalarBatch::new((0..lanes).map(make).collect())
    }
}

impl<E: Environment> BatchEnv for ScalarBatch<E> {
    fn lanes(&self) -> usize {
        self.envs.len()
    }

    fn observation_size(&self) -> usize {
        self.envs[0].observation_size()
    }

    fn action_space(&self) -> ActionSpace {
        self.envs[0].action_space()
    }

    fn max_episode_steps(&self) -> usize {
        self.envs[0].max_episode_steps()
    }

    fn name(&self) -> &'static str {
        self.envs[0].name()
    }

    fn reset_batch(&mut self, seeds: &[u64], batch: &mut StepBatch) {
        assert_eq!(seeds.len(), self.envs.len(), "one seed per lane");
        batch.assert_lanes(self.envs.len(), "reset_batch");
        for (lane, env) in self.envs.iter_mut().enumerate() {
            let obs = env.reset(seeds[lane]);
            batch.obs_row_mut(lane).copy_from_slice(&obs);
            batch.rewards[lane] = 0.0;
            batch.terminated[lane] = false;
            batch.truncated[lane] = false;
            batch.active[lane] = true;
        }
    }

    fn step_batch(&mut self, actions: &[Action], batch: &mut StepBatch) {
        assert_eq!(actions.len(), self.envs.len(), "one action per lane");
        batch.assert_lanes(self.envs.len(), "step_batch");
        for (lane, env) in self.envs.iter_mut().enumerate() {
            if !batch.active[lane] {
                batch.rewards[lane] = 0.0;
                continue;
            }
            let Step {
                observation,
                reward,
                terminated,
                truncated,
            } = env.step(&actions[lane]);
            batch.obs_row_mut(lane).copy_from_slice(&observation);
            batch.rewards[lane] = reward;
            batch.terminated[lane] = terminated;
            batch.truncated[lane] = truncated;
            if terminated || truncated {
                batch.active[lane] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartpole::CartPole;
    use crate::pendulum::Pendulum;

    #[test]
    fn scalar_batch_matches_independent_scalar_envs() {
        let lanes = 4;
        let mut batch_env = ScalarBatch::from_fn(lanes, |_| CartPole::new());
        let mut batch = StepBatch::new(lanes, batch_env.observation_size());
        let seeds: Vec<u64> = (0..lanes as u64).map(|s| s * 31 + 5).collect();
        batch_env.reset_batch(&seeds, &mut batch);

        let mut scalars: Vec<CartPole> = (0..lanes).map(|_| CartPole::new()).collect();
        for (lane, env) in scalars.iter_mut().enumerate() {
            let obs = env.reset(seeds[lane]);
            assert_eq!(batch.obs_row(lane), obs.as_slice(), "reset lane {lane}");
        }

        let mut done = vec![false; lanes];
        let actions: Vec<Action> = (0..lanes).map(|l| Action::Discrete(l % 2)).collect();
        for _ in 0..200 {
            batch_env.step_batch(&actions, &mut batch);
            for (lane, env) in scalars.iter_mut().enumerate() {
                if done[lane] {
                    assert_eq!(batch.rewards[lane], 0.0, "parked lane pays nothing");
                    continue;
                }
                let step = env.step(&actions[lane]);
                assert_eq!(batch.obs_row(lane), step.observation.as_slice());
                assert_eq!(batch.rewards[lane].to_bits(), step.reward.to_bits());
                assert_eq!(batch.terminated[lane], step.terminated);
                assert_eq!(batch.truncated[lane], step.truncated);
                done[lane] = step.done();
                assert_eq!(batch.active[lane], !done[lane]);
            }
            if batch.all_parked() {
                break;
            }
        }
        assert!(batch.all_parked(), "constant policies tip every pole");
    }

    #[test]
    fn early_finishers_park_without_stalling_the_batch() {
        // Lane 0 gets a 5-step limit; lane 1 runs the full pendulum
        // horizon. The batch must keep stepping lane 1 after lane 0
        // parks.
        let mut env = ScalarBatch::new(vec![
            Pendulum::with_max_steps(5),
            Pendulum::with_max_steps(20),
        ]);
        let mut batch = StepBatch::new(2, env.observation_size());
        env.reset_batch(&[1, 2], &mut batch);
        let actions = vec![Action::Continuous(vec![0.0]); 2];
        for step in 0..20 {
            env.step_batch(&actions, &mut batch);
            if step >= 5 {
                assert!(!batch.active[0], "lane 0 parked at its limit");
                assert!(batch.truncated[0], "truncation flag is sticky");
            }
        }
        assert!(batch.all_parked());
        assert_eq!(batch.active_lanes(), 0);
    }

    #[test]
    fn reset_reactivates_parked_lanes() {
        let mut env = ScalarBatch::from_fn(2, |_| Pendulum::with_max_steps(1));
        let mut batch = StepBatch::new(2, env.observation_size());
        env.reset_batch(&[3, 4], &mut batch);
        env.step_batch(&vec![Action::Continuous(vec![0.0]); 2], &mut batch);
        assert!(batch.all_parked());
        env.reset_batch(&[3, 4], &mut batch);
        assert_eq!(batch.active_lanes(), 2);
        assert!(!batch.terminated[0] && !batch.truncated[0]);
    }

    #[test]
    #[should_panic(expected = "one seed per lane")]
    fn seed_count_must_match_lanes() {
        let mut env = ScalarBatch::from_fn(2, |_| CartPole::new());
        let mut batch = StepBatch::new(2, env.observation_size());
        env.reset_batch(&[1], &mut batch);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_batch_rejected() {
        let _ = ScalarBatch::<CartPole>::new(Vec::new());
    }

    #[test]
    fn step_batch_rows_index_lane_major() {
        let batch = StepBatch::new(3, 4);
        assert_eq!(batch.lanes(), 3);
        assert_eq!(batch.obs_size(), 4);
        assert_eq!(batch.obs_row(2).len(), 4);
        assert_eq!(batch.observations.len(), 12);
        assert!(batch.all_parked(), "lanes start parked until reset");
    }
}
