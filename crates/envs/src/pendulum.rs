//! Pendulum (Gym `Pendulum-v1`): swing a torque-limited pendulum
//! upright and hold it. The paper's **Env6** and its only classic
//! continuous-action task.
//!
//! Scenario physics ([`ScenarioParams`]) can scale gravity, bob mass,
//! rod length, and torque gain, and add a constant angular wind; the
//! default parameters reproduce the classic constants bit-identically.

use crate::env::{expect_continuous, Action, ActionSpace, Environment, Step};
use crate::scenario::ScenarioParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

const MAX_SPEED: f64 = 8.0;
const MAX_TORQUE: f64 = 2.0;
const DT: f64 = 0.05;
const GRAVITY: f64 = 10.0;
const MASS: f64 = 1.0;
const LENGTH: f64 = 1.0;

/// Scenario-resolved physics (defaults are IEEE-exact against the
/// classic constants). The *action space* stays `[-2, 2]` regardless
/// of scenario — `torque_gain` scales the applied torque, not the
/// policy's output bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendulumPhys {
    gravity: f64,
    mass: f64,
    length: f64,
    torque_gain: f64,
    wind: f64,
}

impl PendulumPhys {
    fn from_params(params: &ScenarioParams) -> Self {
        PendulumPhys {
            gravity: GRAVITY * params.gravity_scale,
            mass: MASS * params.mass_scale,
            length: LENGTH * params.length_scale,
            torque_gain: params.force_scale,
            wind: params.wind,
        }
    }
}

/// The Pendulum swing-up task.
///
/// Observation: `[cos θ, sin θ, θ̇]`. Action: one torque in
/// `[-2, 2]`. Reward: `-(θ² + 0.1·θ̇² + 0.001·u²)` with θ normalized
/// to `[-π, π]`; the episode never terminates, only truncates.
#[derive(Debug, Clone)]
pub struct Pendulum {
    phys: PendulumPhys,
    theta: f64,
    theta_dot: f64,
    steps: usize,
    done: bool,
    max_steps: usize,
}

impl Pendulum {
    /// Creates the environment with the Gym step limit (200).
    pub fn new() -> Self {
        Self::with_max_steps(200)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self::with_scenario_max_steps(&ScenarioParams::default(), max_steps)
    }

    /// Creates the environment with scenario physics and the Gym step
    /// limit (200).
    pub fn with_scenario(params: &ScenarioParams) -> Self {
        Self::with_scenario_max_steps(params, 200)
    }

    /// Creates the environment with scenario physics and a custom step
    /// limit.
    pub fn with_scenario_max_steps(params: &ScenarioParams, max_steps: usize) -> Self {
        Pendulum {
            phys: PendulumPhys::from_params(params),
            theta: 0.0,
            theta_dot: 0.0,
            steps: 0,
            done: true,
            max_steps,
        }
    }

    fn observation(&self) -> Vec<f64> {
        vec![self.theta.cos(), self.theta.sin(), self.theta_dot]
    }

    /// Angle normalized to `[-π, π]` (0 = upright).
    pub fn normalized_angle(&self) -> f64 {
        let mut a = (self.theta + PI) % (2.0 * PI);
        if a < 0.0 {
            a += 2.0 * PI;
        }
        a - PI
    }
}

impl Default for Pendulum {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for Pendulum {
    fn observation_size(&self) -> usize {
        3
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous {
            low: vec![-MAX_TORQUE],
            high: vec![MAX_TORQUE],
        }
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.theta = rng.gen_range(-PI..PI);
        self.theta_dot = rng.gen_range(-1.0..1.0);
        self.steps = 0;
        self.done = false;
        self.observation()
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished (truncated; this
    /// environment never terminates) without an intervening reset, or
    /// if the action is not a one-dimensional `Continuous` torque.
    fn step(&mut self, action: &Action) -> Step {
        assert!(!self.done, "pendulum: step() called on a finished episode");
        let u = expect_continuous(action, &[-MAX_TORQUE], &[MAX_TORQUE], "pendulum")[0];
        let u = u * self.phys.torque_gain;
        let angle = self.normalized_angle();
        let cost = angle * angle + 0.1 * self.theta_dot * self.theta_dot + 0.001 * u * u;
        self.theta_dot += (3.0 * self.phys.gravity / (2.0 * self.phys.length) * self.theta.sin()
            + 3.0 / (self.phys.mass * self.phys.length * self.phys.length) * u)
            * DT;
        if self.phys.wind != 0.0 {
            self.theta_dot += self.phys.wind * DT;
        }
        self.theta_dot = self.theta_dot.clamp(-MAX_SPEED, MAX_SPEED);
        self.theta += self.theta_dot * DT;
        self.steps += 1;
        let truncated = self.steps >= self.max_steps;
        self.done = truncated;
        Step {
            observation: self.observation(),
            reward: -cost,
            terminated: false,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "pendulum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Gym's convention: θ is measured from upright, sin θ positive
    // counter-clockwise; gravity torque is +1.5·g·sin θ, i.e. upright
    // (θ = 0) is an unstable equilibrium.

    #[test]
    fn reward_is_never_positive_and_bounded() {
        let mut env = Pendulum::new();
        env.reset(1);
        let worst = -(PI * PI + 0.1 * MAX_SPEED * MAX_SPEED + 0.001 * MAX_TORQUE * MAX_TORQUE);
        for _ in 0..200 {
            let s = env.step(&Action::Continuous(vec![2.0]));
            assert!(s.reward <= 0.0);
            assert!(s.reward >= worst - 1e-9);
            if s.done() {
                break;
            }
        }
    }

    #[test]
    fn never_terminates_only_truncates() {
        let mut env = Pendulum::new();
        env.reset(3);
        for i in 0..200 {
            let s = env.step(&Action::Continuous(vec![0.0]));
            assert!(!s.terminated);
            assert_eq!(s.truncated, i == 199);
        }
    }

    #[test]
    fn gravity_pulls_away_from_upright() {
        let mut env = Pendulum::new();
        env.reset(1);
        // Force state slightly off upright, no torque.
        env.theta = 0.1;
        env.theta_dot = 0.0;
        let before = env.normalized_angle().abs();
        for _ in 0..10 {
            env.step(&Action::Continuous(vec![0.0]));
        }
        assert!(env.normalized_angle().abs() > before, "upright is unstable");
    }

    #[test]
    fn torque_is_clamped_to_bounds() {
        let mut a = Pendulum::new();
        let mut b = Pendulum::new();
        a.reset(5);
        b.reset(5);
        for _ in 0..20 {
            let sa = a.step(&Action::Continuous(vec![100.0]));
            let sb = b.step(&Action::Continuous(vec![MAX_TORQUE]));
            assert_eq!(sa.observation, sb.observation);
        }
    }

    #[test]
    fn speed_is_clamped() {
        let mut env = Pendulum::new();
        env.reset(6);
        for _ in 0..200 {
            let s = env.step(&Action::Continuous(vec![2.0]));
            assert!(s.observation[2].abs() <= MAX_SPEED + 1e-12);
            if s.done() {
                break;
            }
        }
    }

    #[test]
    fn default_scenario_matches_legacy_physics_bitwise() {
        let mut legacy = Pendulum::new();
        let mut scenario = Pendulum::with_scenario(&ScenarioParams::default());
        assert_eq!(legacy.reset(9), scenario.reset(9));
        for _ in 0..50 {
            let a = legacy.step(&Action::Continuous(vec![1.0]));
            let b = scenario.step(&Action::Continuous(vec![1.0]));
            for (x, y) in a.observation.iter().zip(&b.observation) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.reward.to_bits(), b.reward.to_bits());
        }
    }

    #[test]
    fn weaker_motor_swings_slower() {
        let weak = ScenarioParams {
            force_scale: 0.5,
            ..ScenarioParams::default()
        };
        let mut full = Pendulum::new();
        let mut half = Pendulum::with_scenario(&weak);
        full.reset(11);
        half.reset(11);
        let a = full.step(&Action::Continuous(vec![2.0]));
        let b = half.step(&Action::Continuous(vec![2.0]));
        assert_ne!(a.observation[2].to_bits(), b.observation[2].to_bits());
    }
}
