//! Acrobot (Gym `Acrobot-v1`): swing a two-link pendulum's tip above a
//! target height by torquing the middle joint. The paper's **Env2**.
//!
//! Scenario physics ([`ScenarioParams`]) can scale gravity, link
//! masses/lengths, and torque gain, and add a constant tip torque
//! (wind); the default parameters reproduce the classic constants
//! bit-identically.

use crate::env::{expect_discrete, Action, ActionSpace, Environment, Step};
use crate::scenario::ScenarioParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

const LINK_LENGTH_1: f64 = 1.0;
const LINK_MASS_1: f64 = 1.0;
const LINK_MASS_2: f64 = 1.0;
const LINK_COM_1: f64 = 0.5;
const LINK_COM_2: f64 = 0.5;
const LINK_MOI: f64 = 1.0;
const MAX_VEL_1: f64 = 4.0 * PI;
const MAX_VEL_2: f64 = 9.0 * PI;
const DT: f64 = 0.2;
const TORQUES: [f64; 3] = [-1.0, 0.0, 1.0];
const GRAVITY: f64 = 9.8;

/// Scenario-resolved physics (defaults are IEEE-exact against the
/// classic constants).
#[derive(Debug, Clone, Copy, PartialEq)]
struct AcrobotPhys {
    gravity: f64,
    m1: f64,
    m2: f64,
    l1: f64,
    lc1: f64,
    lc2: f64,
    torque_gain: f64,
    wind: f64,
}

impl AcrobotPhys {
    fn from_params(params: &ScenarioParams) -> Self {
        AcrobotPhys {
            gravity: GRAVITY * params.gravity_scale,
            m1: LINK_MASS_1 * params.mass_scale,
            m2: LINK_MASS_2 * params.mass_scale,
            l1: LINK_LENGTH_1 * params.length_scale,
            lc1: LINK_COM_1 * params.length_scale,
            lc2: LINK_COM_2 * params.length_scale,
            torque_gain: params.force_scale,
            wind: params.wind,
        }
    }
}

/// The Acrobot swing-up task.
///
/// Observation: `[cos θ1, sin θ1, cos θ2, sin θ2, ω1, ω2]`. Actions:
/// three torque levels on the middle joint. Reward −1 per step until
/// the tip crosses the target height. Uses the "book" dynamics with
/// RK4 integration like Gym.
#[derive(Debug, Clone)]
pub struct Acrobot {
    phys: AcrobotPhys,
    /// `[θ1, θ2, ω1, ω2]`
    state: [f64; 4],
    steps: usize,
    done: bool,
    max_steps: usize,
}

impl Acrobot {
    /// Creates the environment with the Gym step limit (500).
    pub fn new() -> Self {
        Self::with_max_steps(500)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self::with_scenario_max_steps(&ScenarioParams::default(), max_steps)
    }

    /// Creates the environment with scenario physics and the Gym step
    /// limit (500).
    pub fn with_scenario(params: &ScenarioParams) -> Self {
        Self::with_scenario_max_steps(params, 500)
    }

    /// Creates the environment with scenario physics and a custom step
    /// limit.
    pub fn with_scenario_max_steps(params: &ScenarioParams, max_steps: usize) -> Self {
        Acrobot {
            phys: AcrobotPhys::from_params(params),
            state: [0.0; 4],
            steps: 0,
            done: true,
            max_steps,
        }
    }

    fn observation(&self) -> Vec<f64> {
        let [t1, t2, w1, w2] = self.state;
        vec![t1.cos(), t1.sin(), t2.cos(), t2.sin(), w1, w2]
    }

    /// Height of the tip above the pivot: `-cos θ1 - cos(θ1 + θ2)`.
    pub fn tip_height(&self) -> f64 {
        -self.state[0].cos() - (self.state[0] + self.state[1]).cos()
    }

    fn dynamics(phys: &AcrobotPhys, state: [f64; 4], torque: f64) -> [f64; 4] {
        let (m1, m2) = (phys.m1, phys.m2);
        let (l1, lc1, lc2) = (phys.l1, phys.lc1, phys.lc2);
        let (i1, i2) = (LINK_MOI, LINK_MOI);
        let gravity = phys.gravity;
        let [t1, t2, w1, w2] = state;
        let d1 = m1 * lc1 * lc1 + m2 * (l1 * l1 + lc2 * lc2 + 2.0 * l1 * lc2 * t2.cos()) + i1 + i2;
        let d2 = m2 * (lc2 * lc2 + l1 * lc2 * t2.cos()) + i2;
        let phi2 = m2 * lc2 * gravity * (t1 + t2 - PI / 2.0).cos();
        let phi1 = -m2 * l1 * lc2 * w2 * w2 * t2.sin() - 2.0 * m2 * l1 * lc2 * w2 * w1 * t2.sin()
            + (m1 * lc1 + m2 * l1) * gravity * (t1 - PI / 2.0).cos()
            + phi2;
        // "Book" (Sutton & Barto) formulation, as in Gym.
        let ddt2 = (torque + d2 / d1 * phi1 - m2 * l1 * lc2 * w1 * w1 * t2.sin() - phi2)
            / (m2 * lc2 * lc2 + i2 - d2 * d2 / d1);
        let ddt1 = -(d2 * ddt2 + phi1) / d1;
        [w1, w2, ddt1, ddt2]
    }

    fn rk4(phys: &AcrobotPhys, state: [f64; 4], torque: f64, dt: f64) -> [f64; 4] {
        let add = |a: [f64; 4], b: [f64; 4], s: f64| {
            [
                a[0] + b[0] * s,
                a[1] + b[1] * s,
                a[2] + b[2] * s,
                a[3] + b[3] * s,
            ]
        };
        let k1 = Self::dynamics(phys, state, torque);
        let k2 = Self::dynamics(phys, add(state, k1, dt / 2.0), torque);
        let k3 = Self::dynamics(phys, add(state, k2, dt / 2.0), torque);
        let k4 = Self::dynamics(phys, add(state, k3, dt), torque);
        let mut out = state;
        for i in 0..4 {
            out[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        out
    }
}

impl Default for Acrobot {
    fn default() -> Self {
        Self::new()
    }
}

fn wrap_angle(x: f64) -> f64 {
    let mut x = (x + PI) % (2.0 * PI);
    if x < 0.0 {
        x += 2.0 * PI;
    }
    x - PI
}

impl Environment for Acrobot {
    fn observation_size(&self) -> usize {
        6
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(3)
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        for s in &mut self.state {
            *s = rng.gen_range(-0.1..0.1);
        }
        self.steps = 0;
        self.done = false;
        self.observation()
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished (terminated or
    /// truncated) without an intervening reset, or if the action is
    /// not `Discrete(0..=2)`.
    fn step(&mut self, action: &Action) -> Step {
        assert!(!self.done, "acrobot: step() called on a finished episode");
        let torque = TORQUES[expect_discrete(action, 3, "acrobot")] * self.phys.torque_gain;
        let mut next = Self::rk4(&self.phys, self.state, torque, DT);
        if self.phys.wind != 0.0 {
            next[3] += self.phys.wind * DT;
        }
        self.state = [
            wrap_angle(next[0]),
            wrap_angle(next[1]),
            next[2].clamp(-MAX_VEL_1, MAX_VEL_1),
            next[3].clamp(-MAX_VEL_2, MAX_VEL_2),
        ];
        self.steps += 1;
        let terminated = self.tip_height() > 1.0;
        let truncated = !terminated && self.steps >= self.max_steps;
        self.done = terminated || truncated;
        Step {
            observation: self.observation(),
            reward: if terminated { 0.0 } else { -1.0 },
            terminated,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "acrobot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hangs_near_bottom_without_torque() {
        let mut env = Acrobot::new();
        env.reset(0);
        for _ in 0..100 {
            let s = env.step(&Action::Discrete(1)); // zero torque
            assert!(!s.terminated, "no torque cannot reach the target height");
            assert!(env.tip_height() < 1.0);
        }
    }

    #[test]
    fn energy_pumping_swings_higher_than_idle() {
        // Torque in the direction of ω1 pumps energy into the swing.
        let mut env = Acrobot::new();
        env.reset(5);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..400 {
            let a = if env.state[2] > 0.0 { 2 } else { 0 };
            let s = env.step(&Action::Discrete(a));
            best = best.max(env.tip_height());
            if s.done() {
                break;
            }
        }
        // Idle hangs near -2.0; resonant pumping must lift the tip far
        // above that even if this crude heuristic does not fully solve
        // the task.
        let mut idle = Acrobot::new();
        idle.reset(5);
        let mut idle_best = f64::NEG_INFINITY;
        for _ in 0..400 {
            let s = idle.step(&Action::Discrete(1));
            idle_best = idle_best.max(idle.tip_height());
            if s.done() {
                break;
            }
        }
        assert!(
            best > idle_best + 1.0,
            "pumping reached {best}, idle reached {idle_best}"
        );
    }

    #[test]
    fn velocities_stay_clamped() {
        let mut env = Acrobot::new();
        env.reset(9);
        for i in 0..300 {
            let s = env.step(&Action::Discrete(if i % 7 < 4 { 0 } else { 2 }));
            assert!(s.observation[4].abs() <= MAX_VEL_1 + 1e-9);
            assert!(s.observation[5].abs() <= MAX_VEL_2 + 1e-9);
            if s.done() {
                break;
            }
        }
    }

    #[test]
    fn observation_is_trig_encoded() {
        let mut env = Acrobot::new();
        let obs = env.reset(1);
        assert_eq!(obs.len(), 6);
        // cos² + sin² = 1 for both angles.
        assert!((obs[0] * obs[0] + obs[1] * obs[1] - 1.0).abs() < 1e-12);
        assert!((obs[2] * obs[2] + obs[3] * obs[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reward_is_minus_one_until_goal() {
        let mut env = Acrobot::new();
        env.reset(2);
        let s = env.step(&Action::Discrete(0));
        assert_eq!(s.reward, -1.0);
    }

    #[test]
    fn default_scenario_matches_legacy_physics_bitwise() {
        let mut legacy = Acrobot::new();
        let mut scenario = Acrobot::with_scenario(&ScenarioParams::default());
        assert_eq!(legacy.reset(13), scenario.reset(13));
        for i in 0..100 {
            let a = Action::Discrete(i % 3);
            let sa = legacy.step(&a);
            let sb = scenario.step(&a);
            for (x, y) in sa.observation.iter().zip(&sb.observation) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            if sa.done() {
                break;
            }
        }
    }

    #[test]
    fn heavier_links_change_the_swing() {
        let heavy = ScenarioParams {
            mass_scale: 1.5,
            ..ScenarioParams::default()
        };
        let mut base = Acrobot::new();
        let mut scenario = Acrobot::with_scenario(&heavy);
        base.reset(13);
        scenario.reset(13);
        let a = base.step(&Action::Discrete(2));
        let b = scenario.step(&Action::Discrete(2));
        assert_ne!(a.observation[5].to_bits(), b.observation[5].to_bits());
    }

    #[test]
    fn wrap_angle_stays_in_pi_range() {
        for x in [-10.0, -3.2, 0.0, 3.2, 10.0, 100.0] {
            let w = wrap_angle(x);
            assert!((-PI..=PI).contains(&w), "{x} wrapped to {w}");
        }
    }
}
