//! The [`Environment`] trait and action/step types.

use serde::{Deserialize, Serialize};

/// The action space an environment accepts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionSpace {
    /// `n` mutually exclusive actions, selected by index.
    Discrete(usize),
    /// A box of continuous actions with per-dimension bounds.
    Continuous {
        /// Lower bound per action dimension.
        low: Vec<f64>,
        /// Upper bound per action dimension.
        high: Vec<f64>,
    },
}

impl ActionSpace {
    /// Convenience constructor for a symmetric continuous box
    /// `[-bound, bound]^dims`.
    pub fn symmetric(dims: usize, bound: f64) -> Self {
        ActionSpace::Continuous {
            low: vec![-bound; dims],
            high: vec![bound; dims],
        }
    }

    /// Number of values a policy network must output to drive this
    /// space: the action count for discrete spaces (one logit per
    /// action), the dimension count for continuous spaces.
    pub fn policy_outputs(&self) -> usize {
        match self {
            ActionSpace::Discrete(n) => *n,
            ActionSpace::Continuous { low, .. } => low.len(),
        }
    }
}

/// An action submitted to [`Environment::step`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Index into a discrete action space.
    Discrete(usize),
    /// Value vector for a continuous action space.
    Continuous(Vec<f64>),
}

/// The result of one environment step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Observation after the transition.
    pub observation: Vec<f64>,
    /// Reward earned by the transition.
    pub reward: f64,
    /// The episode reached a terminal state (success or failure).
    pub terminated: bool,
    /// The episode hit the step limit without terminating.
    pub truncated: bool,
}

impl Step {
    /// Whether the episode is over for either reason.
    pub fn done(&self) -> bool {
        self.terminated || self.truncated
    }
}

/// A sequential decision environment in the OpenAI-gym mould.
///
/// Implementations must be deterministic: the trajectory is a pure
/// function of the reset seed and the action sequence. This is what
/// makes E3's experiments reproducible and lets the INAX and CPU
/// backends be compared on identical episodes.
pub trait Environment {
    /// Length of the observation vector.
    fn observation_size(&self) -> usize;

    /// The action space.
    fn action_space(&self) -> ActionSpace;

    /// Resets to an initial state drawn deterministically from `seed`
    /// and returns the first observation.
    fn reset(&mut self, seed: u64) -> Vec<f64>;

    /// Advances one timestep.
    ///
    /// # Panics
    ///
    /// Implementations panic if the action variant or dimensionality
    /// does not match [`Environment::action_space`], or if `step` is
    /// called after the episode finished without an intervening
    /// [`Environment::reset`].
    fn step(&mut self, action: &Action) -> Step;

    /// Maximum steps per episode before truncation.
    fn max_episode_steps(&self) -> usize;

    /// Short name (e.g. `"cartpole"`).
    fn name(&self) -> &'static str;
}

impl<E: Environment + ?Sized> Environment for Box<E> {
    fn observation_size(&self) -> usize {
        (**self).observation_size()
    }

    fn action_space(&self) -> ActionSpace {
        (**self).action_space()
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        (**self).reset(seed)
    }

    fn step(&mut self, action: &Action) -> Step {
        (**self).step(action)
    }

    fn max_episode_steps(&self) -> usize {
        (**self).max_episode_steps()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Helper shared by implementations: validates and extracts a discrete
/// action index.
///
/// # Panics
///
/// Panics when the action is continuous or out of range.
pub(crate) fn expect_discrete(action: &Action, n: usize, env: &str) -> usize {
    match action {
        Action::Discrete(i) if *i < n => *i,
        Action::Discrete(i) => panic!("{env}: discrete action {i} out of range 0..{n}"),
        Action::Continuous(_) => panic!("{env}: expected a discrete action"),
    }
}

/// Helper shared by implementations: validates and extracts a
/// continuous action vector, clamped to the bounds.
///
/// # Panics
///
/// Panics when the action is discrete or has the wrong dimension.
pub(crate) fn expect_continuous(action: &Action, low: &[f64], high: &[f64], env: &str) -> Vec<f64> {
    match action {
        Action::Continuous(v) if v.len() == low.len() => v
            .iter()
            .zip(low.iter().zip(high))
            .map(|(&x, (&lo, &hi))| x.clamp(lo, hi))
            .collect(),
        Action::Continuous(v) => {
            panic!("{env}: expected {} action dims, got {}", low.len(), v.len())
        }
        Action::Discrete(_) => panic!("{env}: expected a continuous action"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_outputs_counts_logits_and_dims() {
        assert_eq!(ActionSpace::Discrete(3).policy_outputs(), 3);
        assert_eq!(ActionSpace::symmetric(4, 1.0).policy_outputs(), 4);
    }

    #[test]
    fn step_done_combines_flags() {
        let mut s = Step {
            observation: vec![],
            reward: 0.0,
            terminated: false,
            truncated: false,
        };
        assert!(!s.done());
        s.terminated = true;
        assert!(s.done());
        s.terminated = false;
        s.truncated = true;
        assert!(s.done());
    }

    #[test]
    fn expect_continuous_clamps_to_bounds() {
        let a = Action::Continuous(vec![5.0, -5.0]);
        let v = expect_continuous(&a, &[-1.0, -1.0], &[1.0, 1.0], "test");
        assert_eq!(v, vec![1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn expect_discrete_checks_range() {
        expect_discrete(&Action::Discrete(9), 3, "test");
    }
}
