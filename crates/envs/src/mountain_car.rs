//! MountainCar (Gym `MountainCar-v0`): drive an under-powered car out
//! of a valley by building momentum. The paper's **Env3**.
//!
//! Scenario physics ([`ScenarioParams`]) can scale motor force and
//! hill gravity and add a constant lateral wind; the default
//! parameters reproduce the classic constants bit-identically.

use crate::env::{expect_discrete, Action, ActionSpace, Environment, Step};
use crate::scenario::ScenarioParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MIN_POSITION: f64 = -1.2;
const MAX_POSITION: f64 = 0.6;
const MAX_SPEED: f64 = 0.07;
const GOAL_POSITION: f64 = 0.5;
const FORCE: f64 = 0.001;
const GRAVITY: f64 = 0.0025;

/// Scenario-resolved physics (defaults are IEEE-exact against the
/// classic constants).
#[derive(Debug, Clone, Copy, PartialEq)]
struct MountainCarPhys {
    force: f64,
    gravity: f64,
    wind: f64,
}

impl MountainCarPhys {
    fn from_params(params: &ScenarioParams) -> Self {
        MountainCarPhys {
            force: FORCE * params.force_scale,
            gravity: GRAVITY * params.gravity_scale,
            wind: params.wind,
        }
    }
}

/// The MountainCar task.
///
/// Observation: `[position, velocity]`. Actions: 0 push left, 1 coast,
/// 2 push right. Reward −1 per step; terminates at the goal position.
#[derive(Debug, Clone)]
pub struct MountainCar {
    phys: MountainCarPhys,
    position: f64,
    velocity: f64,
    steps: usize,
    done: bool,
    max_steps: usize,
}

impl MountainCar {
    /// Creates the environment with the Gym step limit (200).
    pub fn new() -> Self {
        Self::with_max_steps(200)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self::with_scenario_max_steps(&ScenarioParams::default(), max_steps)
    }

    /// Creates the environment with scenario physics and the Gym step
    /// limit (200).
    pub fn with_scenario(params: &ScenarioParams) -> Self {
        Self::with_scenario_max_steps(params, 200)
    }

    /// Creates the environment with scenario physics and a custom step
    /// limit.
    pub fn with_scenario_max_steps(params: &ScenarioParams, max_steps: usize) -> Self {
        MountainCar {
            phys: MountainCarPhys::from_params(params),
            position: 0.0,
            velocity: 0.0,
            steps: 0,
            done: true,
            max_steps,
        }
    }

    /// Current position (for tests/tools).
    pub fn position(&self) -> f64 {
        self.position
    }
}

impl Default for MountainCar {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for MountainCar {
    fn observation_size(&self) -> usize {
        2
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(3)
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.position = rng.gen_range(-0.6..-0.4);
        self.velocity = 0.0;
        self.steps = 0;
        self.done = false;
        vec![self.position, self.velocity]
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished (terminated or
    /// truncated) without an intervening reset, or if the action is
    /// not `Discrete(0..=2)`.
    fn step(&mut self, action: &Action) -> Step {
        assert!(
            !self.done,
            "mountain_car: step() called on a finished episode"
        );
        let a = expect_discrete(action, 3, "mountain_car") as f64;
        self.velocity +=
            (a - 1.0) * self.phys.force + (3.0 * self.position).cos() * (-self.phys.gravity);
        if self.phys.wind != 0.0 {
            self.velocity += self.phys.wind;
        }
        self.velocity = self.velocity.clamp(-MAX_SPEED, MAX_SPEED);
        self.position = (self.position + self.velocity).clamp(MIN_POSITION, MAX_POSITION);
        if self.position <= MIN_POSITION && self.velocity < 0.0 {
            self.velocity = 0.0;
        }
        self.steps += 1;
        let terminated = self.position >= GOAL_POSITION;
        let truncated = !terminated && self.steps >= self.max_steps;
        self.done = terminated || truncated;
        Step {
            observation: vec![self.position, self.velocity],
            reward: -1.0,
            terminated,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "mountain_car"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_push_right_cannot_climb() {
        let mut env = MountainCar::new();
        env.reset(1);
        for _ in 0..200 {
            let s = env.step(&Action::Discrete(2));
            assert!(!s.terminated, "underpowered car must not climb directly");
            if s.done() {
                return;
            }
        }
        panic!("episode should have truncated");
    }

    #[test]
    fn momentum_policy_reaches_goal() {
        // Push in the direction of motion: the classic energy-pumping
        // solution.
        let mut env = MountainCar::with_max_steps(300);
        let mut obs = env.reset(1);
        for _ in 0..300 {
            let a = if obs[1] >= 0.0 { 2 } else { 0 };
            let s = env.step(&Action::Discrete(a));
            obs = s.observation.clone();
            if s.terminated {
                return; // reached the flag
            }
            assert!(
                !s.truncated,
                "momentum policy should solve within 300 steps"
            );
        }
    }

    #[test]
    fn position_and_velocity_stay_bounded() {
        let mut env = MountainCar::new();
        env.reset(4);
        for i in 0..200 {
            let s = env.step(&Action::Discrete(i % 3));
            assert!((MIN_POSITION..=MAX_POSITION).contains(&s.observation[0]));
            assert!(s.observation[1].abs() <= MAX_SPEED + 1e-12);
            if s.done() {
                break;
            }
        }
    }

    #[test]
    fn default_scenario_matches_legacy_physics_bitwise() {
        let mut legacy = MountainCar::new();
        let mut scenario = MountainCar::with_scenario(&ScenarioParams::default());
        assert_eq!(legacy.reset(5), scenario.reset(5));
        for i in 0..200 {
            let a = Action::Discrete(i % 3);
            let sa = legacy.step(&a);
            let sb = scenario.step(&a);
            assert_eq!(sa.observation[0].to_bits(), sb.observation[0].to_bits());
            assert_eq!(sa.observation[1].to_bits(), sb.observation[1].to_bits());
            if sa.done() {
                break;
            }
        }
    }

    #[test]
    fn stronger_motor_climbs_where_stock_cannot() {
        let strong = ScenarioParams {
            force_scale: 4.0,
            ..ScenarioParams::default()
        };
        let mut env = MountainCar::with_scenario(&strong);
        env.reset(1);
        for _ in 0..200 {
            let s = env.step(&Action::Discrete(2));
            if s.terminated {
                return; // a 4x motor drives straight up
            }
        }
        panic!("4x motor should reach the goal directly");
    }

    #[test]
    fn left_wall_is_inelastic() {
        let mut env = MountainCar::new();
        env.reset(2);
        // Drive hard left until pinned at the wall.
        for _ in 0..200 {
            let s = env.step(&Action::Discrete(0));
            if s.observation[0] <= MIN_POSITION {
                assert!(s.observation[1] >= 0.0, "velocity zeroed at the wall");
                return;
            }
            if s.done() {
                break;
            }
        }
        // Some seeds may not reach the wall in time; that's fine.
    }
}
