//! # e3-envs — OpenAI-gym-style control environments in pure Rust
//!
//! The E3 paper evaluates across "a suite of OpenAI environments"
//! (paper footnote 4): Env1 cartpole, Env2 acrobot, Env3 mountain car,
//! Env4 bipedal, Env5 lunar lander, Env6 pendulum. This crate ports
//! those environments so the whole platform is self-contained Rust:
//!
//! * [`CartPole`], [`Acrobot`], [`MountainCar`], [`Pendulum`] follow
//!   the published Gym classic-control dynamics equations;
//! * [`LunarLander`] and [`BipedalWalker`] are simplified rigid-body
//!   reimplementations (Gym uses Box2D) with **identical observation
//!   and action spaces** and comparable reward shaping — see DESIGN.md
//!   for the substitution rationale.
//!
//! Every environment implements the [`Environment`] trait and is
//! deterministic given a reset seed.
//!
//! ## Example
//!
//! ```
//! use e3_envs::{Environment, CartPole, Action};
//!
//! let mut env = CartPole::new();
//! let obs = env.reset(7);
//! assert_eq!(obs.len(), env.observation_size());
//! let step = env.step(&Action::Discrete(1));
//! assert_eq!(step.observation.len(), 4);
//! assert!(step.reward > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acrobot;
pub mod batch;
pub mod bipedal_walker;
pub mod cartpole;
pub mod env;
pub mod episode;
pub mod lunar_lander;
pub mod mountain_car;
pub mod pendulum;
pub mod pong;
pub mod scenario;
pub mod suite;
pub mod wrappers;

pub use acrobot::Acrobot;
pub use batch::{BatchEnv, ScalarBatch, StepBatch};
pub use bipedal_walker::BipedalWalker;
pub use cartpole::{CartPole, CartPoleBatch};
pub use env::{Action, ActionSpace, Environment, Step};
pub use episode::{decode_action, run_episode, EpisodeResult, Policy};
pub use lunar_lander::{LunarLander, LunarLanderBatch};
pub use mountain_car::MountainCar;
pub use pendulum::Pendulum;
pub use pong::Pong;
pub use scenario::{ParamRange, ScenarioDistribution, ScenarioParams};
pub use suite::{EnvId, ParseEnvIdError};
