//! LunarLander (substitute for Gym `LunarLander-v2`): land a rocket on
//! a pad with a main engine and two side thrusters. The paper's
//! **Env5**.
//!
//! Gym implements this with Box2D; this port is a simplified planar
//! rigid-body simulation with the **same observation and action
//! spaces** (8 observations, 4 discrete actions) and the same reward
//! shaping structure, which is what the evolved controllers and the
//! accelerator actually see (see DESIGN.md, substitutions).

use crate::batch::{BatchEnv, StepBatch};
use crate::env::{expect_discrete, Action, ActionSpace, Environment, Step};
use crate::scenario::ScenarioParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DT: f64 = 0.02;
const GRAVITY: f64 = 0.6;
const MAIN_ACCEL: f64 = 1.3;
const SIDE_ACCEL: f64 = 0.18;
const SIDE_TORQUE: f64 = 1.8;
const ANGULAR_DAMPING: f64 = 0.4;
const SAFE_VY: f64 = 0.35;
const SAFE_VX: f64 = 0.35;
const SAFE_ANGLE: f64 = 0.35;
const X_LIMIT: f64 = 1.0;

/// Scenario-resolved physics (defaults are IEEE-exact against the
/// classic constants). Thruster accelerations scale with engine force
/// and inversely with hull mass; wind is a constant lateral
/// acceleration.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LanderPhys {
    gravity: f64,
    main_accel: f64,
    side_accel: f64,
    side_torque: f64,
    wind: f64,
}

impl LanderPhys {
    fn from_params(params: &ScenarioParams) -> Self {
        LanderPhys {
            gravity: GRAVITY * params.gravity_scale,
            main_accel: MAIN_ACCEL * params.force_scale / params.mass_scale,
            side_accel: SIDE_ACCEL * params.force_scale / params.mass_scale,
            side_torque: SIDE_TORQUE * params.force_scale / params.mass_scale,
            wind: params.wind,
        }
    }
}

/// The lunar landing task.
///
/// Observation: `[x, y, vx, vy, angle, angular_velocity,
/// left_leg_contact, right_leg_contact]`. Actions: 0 coast, 1 fire
/// left thruster, 2 fire main engine, 3 fire right thruster.
///
/// Reward follows Gym's potential shaping: progress toward the pad,
/// low speed and level attitude are rewarded each step; engines cost
/// fuel; touchdown ends the episode with +100 (gentle, upright, on
/// pad) or −100 (crash or drifting off-screen).
#[derive(Debug, Clone)]
pub struct LunarLander {
    phys: LanderPhys,
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    angle: f64,
    omega: f64,
    prev_shaping: Option<f64>,
    steps: usize,
    done: bool,
    max_steps: usize,
}

impl LunarLander {
    /// Creates the environment with the Gym step limit (1000).
    pub fn new() -> Self {
        Self::with_max_steps(1000)
    }

    /// Creates the environment with scenario physics and the Gym step
    /// limit (1000).
    pub fn with_scenario(params: &ScenarioParams) -> Self {
        Self::with_scenario_max_steps(params, 1000)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self::with_scenario_max_steps(&ScenarioParams::default(), max_steps)
    }

    /// Creates the environment with scenario physics and a custom step
    /// limit.
    pub fn with_scenario_max_steps(params: &ScenarioParams, max_steps: usize) -> Self {
        LunarLander {
            phys: LanderPhys::from_params(params),
            x: 0.0,
            y: 0.0,
            vx: 0.0,
            vy: 0.0,
            angle: 0.0,
            omega: 0.0,
            prev_shaping: None,
            steps: 0,
            done: true,
            max_steps,
        }
    }

    fn observation(&self) -> Vec<f64> {
        let (left, right) = self.leg_contacts();
        vec![
            self.x,
            self.y,
            self.vx,
            self.vy,
            self.angle,
            self.omega,
            f64::from(left),
            f64::from(right),
        ]
    }

    fn leg_contacts(&self) -> (bool, bool) {
        // Legs touch when the hull is essentially on the ground and
        // roughly level; a tilted hull touches one leg first.
        if self.y > 0.02 {
            return (false, false);
        }
        (self.angle <= 0.1, self.angle >= -0.1)
    }

    fn shaping(&self) -> f64 {
        let (left, right) = self.leg_contacts();
        -100.0 * (self.x * self.x + self.y * self.y).sqrt()
            - 100.0 * (self.vx * self.vx + self.vy * self.vy).sqrt()
            - 100.0 * self.angle.abs()
            + 10.0 * f64::from(left)
            + 10.0 * f64::from(right)
    }
}

impl Default for LunarLander {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for LunarLander {
    fn observation_size(&self) -> usize {
        8
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(4)
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.x = rng.gen_range(-0.3..0.3);
        self.y = 1.4;
        self.vx = rng.gen_range(-0.3..0.3);
        self.vy = rng.gen_range(-0.2..0.0);
        self.angle = rng.gen_range(-0.15..0.15);
        self.omega = rng.gen_range(-0.1..0.1);
        self.prev_shaping = None;
        self.steps = 0;
        self.done = false;
        self.observation()
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished (terminated or
    /// truncated) without an intervening reset, or if the action is
    /// not `Discrete(0..=3)`.
    fn step(&mut self, action: &Action) -> Step {
        assert!(
            !self.done,
            "lunar_lander: step() called on a finished episode"
        );
        let a = expect_discrete(action, 4, "lunar_lander");

        // Thrust: main engine pushes along the body's up axis; side
        // thrusters push laterally and spin the hull.
        let (sin_a, cos_a) = self.angle.sin_cos();
        let mut fuel_cost = 0.0;
        let (mut ax, mut ay, mut alpha) = (0.0, -self.phys.gravity, -ANGULAR_DAMPING * self.omega);
        if self.phys.wind != 0.0 {
            ax += self.phys.wind;
        }
        match a {
            0 => {}
            1 => {
                // Left thruster fires rightward and yaws one way.
                ax += self.phys.side_accel * cos_a;
                ay += self.phys.side_accel * sin_a;
                alpha += self.phys.side_torque;
                fuel_cost = 0.03;
            }
            2 => {
                ax += -self.phys.main_accel * sin_a;
                ay += self.phys.main_accel * cos_a;
                fuel_cost = 0.3;
            }
            3 => {
                ax += -self.phys.side_accel * cos_a;
                ay += -self.phys.side_accel * sin_a;
                alpha += -self.phys.side_torque;
                fuel_cost = 0.03;
            }
            _ => unreachable!("validated by expect_discrete"),
        }
        self.vx += ax * DT;
        self.vy += ay * DT;
        self.omega += alpha * DT;
        self.x += self.vx * DT;
        self.y += self.vy * DT;
        self.angle += self.omega * DT;
        self.steps += 1;

        // Potential-based shaping reward.
        let shaping = self.shaping();
        let mut reward = match self.prev_shaping {
            Some(prev) => shaping - prev,
            None => 0.0,
        } - fuel_cost;
        self.prev_shaping = Some(shaping);

        // Terminal outcomes.
        let mut terminated = false;
        if self.x.abs() > X_LIMIT {
            terminated = true;
            reward += -100.0;
        } else if self.y <= 0.0 {
            terminated = true;
            self.y = 0.0;
            let gentle = self.vy.abs() <= SAFE_VY
                && self.vx.abs() <= SAFE_VX
                && self.angle.abs() <= SAFE_ANGLE;
            let on_pad = self.x.abs() <= 0.25;
            reward += if gentle && on_pad { 100.0 } else { -100.0 };
        }
        let truncated = !terminated && self.steps >= self.max_steps;
        self.done = terminated || truncated;
        Step {
            observation: self.observation(),
            reward,
            terminated,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "lunar_lander"
    }
}

/// Hand-vectorized struct-of-arrays batch of LunarLander episodes.
///
/// Lane-indexed arrays for the six rigid-body state variables plus the
/// shaping potential; all active lanes advance per
/// [`BatchEnv::step_batch`] call with the exact floating-point
/// operation order of the scalar [`LunarLander`], so trajectories are
/// bit-identical given the same seed and actions.
#[derive(Debug, Clone)]
pub struct LunarLanderBatch {
    phys: Vec<LanderPhys>,
    x: Vec<f64>,
    y: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    angle: Vec<f64>,
    omega: Vec<f64>,
    prev_shaping: Vec<Option<f64>>,
    steps: Vec<usize>,
    max_steps: usize,
}

impl LunarLanderBatch {
    /// Creates `lanes` episodes with the Gym step limit (1000).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        Self::with_max_steps(lanes, 1000)
    }

    /// Creates one lane per scenario parameter set, with the Gym step
    /// limit (1000). Lanes may be heterogeneous.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn with_scenarios(params: &[ScenarioParams]) -> Self {
        Self::with_scenarios_max_steps(params, 1000)
    }

    /// Creates `lanes` episodes with a custom step limit.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_max_steps(lanes: usize, max_steps: usize) -> Self {
        Self::with_scenarios_max_steps(&vec![ScenarioParams::default(); lanes], max_steps)
    }

    /// Creates one lane per scenario parameter set with a custom step
    /// limit.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn with_scenarios_max_steps(params: &[ScenarioParams], max_steps: usize) -> Self {
        assert!(!params.is_empty(), "a batch needs at least one lane");
        let lanes = params.len();
        LunarLanderBatch {
            phys: params.iter().map(LanderPhys::from_params).collect(),
            x: vec![0.0; lanes],
            y: vec![0.0; lanes],
            vx: vec![0.0; lanes],
            vy: vec![0.0; lanes],
            angle: vec![0.0; lanes],
            omega: vec![0.0; lanes],
            prev_shaping: vec![None; lanes],
            steps: vec![0; lanes],
            max_steps,
        }
    }

    fn leg_contacts(y: f64, angle: f64) -> (bool, bool) {
        if y > 0.02 {
            return (false, false);
        }
        (angle <= 0.1, angle >= -0.1)
    }

    fn shaping(x: f64, y: f64, vx: f64, vy: f64, angle: f64) -> f64 {
        let (left, right) = Self::leg_contacts(y, angle);
        -100.0 * (x * x + y * y).sqrt() - 100.0 * (vx * vx + vy * vy).sqrt() - 100.0 * angle.abs()
            + 10.0 * f64::from(left)
            + 10.0 * f64::from(right)
    }

    fn write_observation(&self, lane: usize, row: &mut [f64]) {
        let (left, right) = Self::leg_contacts(self.y[lane], self.angle[lane]);
        row.copy_from_slice(&[
            self.x[lane],
            self.y[lane],
            self.vx[lane],
            self.vy[lane],
            self.angle[lane],
            self.omega[lane],
            f64::from(left),
            f64::from(right),
        ]);
    }
}

impl BatchEnv for LunarLanderBatch {
    fn lanes(&self) -> usize {
        self.x.len()
    }

    fn observation_size(&self) -> usize {
        8
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(4)
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "lunar_lander"
    }

    fn reset_batch(&mut self, seeds: &[u64], batch: &mut StepBatch) {
        assert_eq!(seeds.len(), self.lanes(), "one seed per lane");
        assert_eq!(batch.lanes(), self.lanes(), "batch/env lane mismatch");
        for (lane, &seed) in seeds.iter().enumerate() {
            // Same draw order as the scalar reset.
            let mut rng = StdRng::seed_from_u64(seed);
            self.x[lane] = rng.gen_range(-0.3..0.3);
            self.y[lane] = 1.4;
            self.vx[lane] = rng.gen_range(-0.3..0.3);
            self.vy[lane] = rng.gen_range(-0.2..0.0);
            self.angle[lane] = rng.gen_range(-0.15..0.15);
            self.omega[lane] = rng.gen_range(-0.1..0.1);
            self.prev_shaping[lane] = None;
            self.steps[lane] = 0;
            self.write_observation(lane, batch.obs_row_mut(lane));
            batch.rewards[lane] = 0.0;
            batch.terminated[lane] = false;
            batch.truncated[lane] = false;
            batch.active[lane] = true;
        }
    }

    fn step_batch(&mut self, actions: &[Action], batch: &mut StepBatch) {
        assert_eq!(actions.len(), self.lanes(), "one action per lane");
        assert_eq!(batch.lanes(), self.lanes(), "batch/env lane mismatch");
        for (lane, action) in actions.iter().enumerate() {
            if !batch.active[lane] {
                batch.rewards[lane] = 0.0;
                continue;
            }
            let a = expect_discrete(action, 4, "lunar_lander");
            let phys = self.phys[lane];
            let (sin_a, cos_a) = self.angle[lane].sin_cos();
            let mut fuel_cost = 0.0;
            let (mut ax, mut ay, mut alpha) =
                (0.0, -phys.gravity, -ANGULAR_DAMPING * self.omega[lane]);
            if phys.wind != 0.0 {
                ax += phys.wind;
            }
            match a {
                0 => {}
                1 => {
                    ax += phys.side_accel * cos_a;
                    ay += phys.side_accel * sin_a;
                    alpha += phys.side_torque;
                    fuel_cost = 0.03;
                }
                2 => {
                    ax += -phys.main_accel * sin_a;
                    ay += phys.main_accel * cos_a;
                    fuel_cost = 0.3;
                }
                3 => {
                    ax += -phys.side_accel * cos_a;
                    ay += -phys.side_accel * sin_a;
                    alpha += -phys.side_torque;
                    fuel_cost = 0.03;
                }
                _ => unreachable!("validated by expect_discrete"),
            }
            self.vx[lane] += ax * DT;
            self.vy[lane] += ay * DT;
            self.omega[lane] += alpha * DT;
            self.x[lane] += self.vx[lane] * DT;
            self.y[lane] += self.vy[lane] * DT;
            self.angle[lane] += self.omega[lane] * DT;
            self.steps[lane] += 1;

            let shaping = Self::shaping(
                self.x[lane],
                self.y[lane],
                self.vx[lane],
                self.vy[lane],
                self.angle[lane],
            );
            let mut reward = match self.prev_shaping[lane] {
                Some(prev) => shaping - prev,
                None => 0.0,
            } - fuel_cost;
            self.prev_shaping[lane] = Some(shaping);

            let mut terminated = false;
            if self.x[lane].abs() > X_LIMIT {
                terminated = true;
                reward += -100.0;
            } else if self.y[lane] <= 0.0 {
                terminated = true;
                self.y[lane] = 0.0;
                let gentle = self.vy[lane].abs() <= SAFE_VY
                    && self.vx[lane].abs() <= SAFE_VX
                    && self.angle[lane].abs() <= SAFE_ANGLE;
                let on_pad = self.x[lane].abs() <= 0.25;
                reward += if gentle && on_pad { 100.0 } else { -100.0 };
            }
            let truncated = !terminated && self.steps[lane] >= self.max_steps;
            self.write_observation(lane, batch.obs_row_mut(lane));
            batch.rewards[lane] = reward;
            batch.terminated[lane] = terminated;
            batch.truncated[lane] = truncated;
            if terminated || truncated {
                batch.active[lane] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_policy(seed: u64, policy: impl Fn(&[f64]) -> usize) -> (f64, bool, Vec<f64>) {
        let mut env = LunarLander::new();
        let mut obs = env.reset(seed);
        let mut total = 0.0;
        loop {
            let s = env.step(&Action::Discrete(policy(&obs)));
            total += s.reward;
            obs = s.observation.clone();
            if s.done() {
                return (total, s.terminated, obs);
            }
        }
    }

    #[test]
    fn free_fall_crashes() {
        let (total, terminated, obs) = run_policy(1, |_| 0);
        assert!(terminated, "gravity must bring the lander down");
        assert!(obs[1] <= 0.0);
        assert!(total < 0.0, "crash landing is penalized, got {total}");
    }

    #[test]
    fn suicide_burn_beats_free_fall() {
        // Fire the main engine when descending too fast, correct tilt
        // with side thrusters.
        let controller = |obs: &[f64]| -> usize {
            if obs[4] > 0.15 || obs[5] > 0.2 {
                1
            } else if obs[4] < -0.15 || obs[5] < -0.2 {
                3
            } else if obs[3] < -0.3 {
                2
            } else {
                0
            }
        };
        let (burn, _, _) = run_policy(2, controller);
        let (fall, _, _) = run_policy(2, |_| 0);
        assert!(
            burn > fall,
            "controlled descent ({burn}) must beat free fall ({fall})"
        );
    }

    #[test]
    fn main_engine_decelerates_descent() {
        let mut free = LunarLander::new();
        let mut thrust = LunarLander::new();
        free.reset(3);
        thrust.reset(3);
        for _ in 0..50 {
            free.step(&Action::Discrete(0));
            thrust.step(&Action::Discrete(2));
        }
        assert!(thrust.vy > free.vy, "main engine must fight gravity");
    }

    #[test]
    fn side_thrusters_rotate_opposite_ways() {
        let mut left = LunarLander::new();
        let mut right = LunarLander::new();
        left.reset(4);
        right.reset(4);
        for _ in 0..20 {
            left.step(&Action::Discrete(1));
            right.step(&Action::Discrete(3));
        }
        assert!(left.omega > right.omega);
    }

    #[test]
    fn observation_has_eight_dims_with_contact_flags() {
        let mut env = LunarLander::new();
        let obs = env.reset(5);
        assert_eq!(obs.len(), 8);
        assert_eq!(obs[6], 0.0, "airborne: no leg contact");
        assert_eq!(obs[7], 0.0);
    }

    #[test]
    fn soa_batch_is_bit_identical_to_scalar() {
        let lanes = 5;
        let mut soa = LunarLanderBatch::new(lanes);
        let mut batch = crate::batch::StepBatch::new(lanes, 8);
        let seeds: Vec<u64> = (0..lanes as u64).map(|s| s * 131 + 2).collect();
        soa.reset_batch(&seeds, &mut batch);

        let mut scalars: Vec<LunarLander> = (0..lanes).map(|_| LunarLander::new()).collect();
        for (lane, env) in scalars.iter_mut().enumerate() {
            let obs = env.reset(seeds[lane]);
            assert_eq!(batch.obs_row(lane), obs.as_slice());
        }
        let mut done = vec![false; lanes];
        // Mix of policies: free fall, constant burn, suicide burn.
        let policy = |lane: usize, o: &[f64]| -> usize {
            match lane % 3 {
                0 => 0,
                1 => 2,
                _ => {
                    if o[4] > 0.15 {
                        1
                    } else if o[4] < -0.15 {
                        3
                    } else if o[3] < -0.3 {
                        2
                    } else {
                        0
                    }
                }
            }
        };
        for _ in 0..1100 {
            let actions: Vec<Action> = (0..lanes)
                .map(|l| Action::Discrete(policy(l, batch.obs_row(l))))
                .collect();
            soa.step_batch(&actions, &mut batch);
            for (lane, env) in scalars.iter_mut().enumerate() {
                if done[lane] {
                    assert_eq!(batch.rewards[lane], 0.0);
                    continue;
                }
                let s = env.step(&actions[lane]);
                for (a, b) in batch.obs_row(lane).iter().zip(&s.observation) {
                    assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} diverged");
                }
                assert_eq!(batch.rewards[lane].to_bits(), s.reward.to_bits());
                assert_eq!(batch.terminated[lane], s.terminated);
                assert_eq!(batch.truncated[lane], s.truncated);
                done[lane] = s.done();
            }
            if batch.all_parked() {
                break;
            }
        }
        assert!(batch.all_parked(), "every lander comes down eventually");
    }

    #[test]
    fn heterogeneous_scenario_lanes_match_their_scalar_twins() {
        let params = [
            ScenarioParams::default(),
            ScenarioParams {
                gravity_scale: 1.3,
                wind: 0.05,
                ..ScenarioParams::default()
            },
            ScenarioParams {
                force_scale: 0.8,
                mass_scale: 1.2,
                ..ScenarioParams::default()
            },
        ];
        let lanes = params.len();
        let mut soa = LunarLanderBatch::with_scenarios(&params);
        let mut batch = crate::batch::StepBatch::new(lanes, 8);
        let seeds: Vec<u64> = (0..lanes as u64).map(|s| s * 17 + 3).collect();
        soa.reset_batch(&seeds, &mut batch);
        let mut scalars: Vec<LunarLander> = params.iter().map(LunarLander::with_scenario).collect();
        for (lane, env) in scalars.iter_mut().enumerate() {
            assert_eq!(batch.obs_row(lane), env.reset(seeds[lane]).as_slice());
        }
        let mut done = vec![false; lanes];
        for _ in 0..1100 {
            let actions: Vec<Action> = (0..lanes)
                .map(|l| {
                    let o = batch.obs_row(l);
                    Action::Discrete(if o[3] < -0.3 { 2 } else { 0 })
                })
                .collect();
            soa.step_batch(&actions, &mut batch);
            for (lane, env) in scalars.iter_mut().enumerate() {
                if done[lane] {
                    continue;
                }
                let s = env.step(&actions[lane]);
                for (a, b) in batch.obs_row(lane).iter().zip(&s.observation) {
                    assert_eq!(a.to_bits(), b.to_bits(), "scenario lane {lane} diverged");
                }
                assert_eq!(batch.rewards[lane].to_bits(), s.reward.to_bits());
                done[lane] = s.done();
            }
            if batch.all_parked() {
                break;
            }
        }
        assert!(batch.all_parked());
    }

    #[test]
    fn drifting_off_screen_terminates() {
        let mut env = LunarLander::new();
        env.reset(6);
        env.vx = 3.0; // force a fast drift
        let mut steps = 0;
        loop {
            let s = env.step(&Action::Discrete(0));
            steps += 1;
            if s.terminated {
                assert!(s.observation[0].abs() > X_LIMIT || s.observation[1] <= 0.0);
                break;
            }
            assert!(steps < 200, "drift must terminate quickly");
        }
    }
}
