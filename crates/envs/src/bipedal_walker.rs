//! BipedalWalker (substitute for Gym `BipedalWalker-v3`): drive a
//! two-legged hull forward with four torque-controlled joints. The
//! paper's **Env4** and its hardest task (NEAT evolves its largest
//! networks here — Table V).
//!
//! Gym implements this with Box2D. This port is a simplified planar
//! gait model with the **same observation and action spaces**
//! (24 observations, 4 continuous torques in `[-1, 1]`) and the same
//! reward structure (forward progress minus torque cost, −100 on a
//! fall). Joints are spring-damper second-order systems; forward
//! propulsion comes from stance-leg hip retraction, so progress
//! requires the alternating, phase-coordinated gait the real task
//! demands (see DESIGN.md, substitutions).

use crate::env::{expect_continuous, Action, ActionSpace, Environment, Step};
use crate::scenario::ScenarioParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DT: f64 = 0.02;
const TORQUE_GAIN: f64 = 6.0;
const JOINT_DAMPING: f64 = 3.0;
const JOINT_SPRING: f64 = 1.0;
const HIP_LIMIT: f64 = 1.1;
const KNEE_LIMIT: f64 = 1.1;
const HULL_SPRING: f64 = 4.0;
const HULL_DAMPING: f64 = 1.5;
const PUSH_GAIN: f64 = 0.9;
const DRAG: f64 = 0.8;
const FALL_ANGLE: f64 = 0.9;
const TRACK_LENGTH: f64 = 60.0;
const LIDAR_RAYS: usize = 10;

/// Scenario-resolved physics (defaults are IEEE-exact against the
/// classic constants). `roughness` adds surface drag and `wind` is a
/// constant headwind (negative) or tailwind (positive) on the hull.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WalkerPhys {
    torque_gain: f64,
    drag: f64,
    wind: f64,
}

impl WalkerPhys {
    fn from_params(params: &ScenarioParams) -> Self {
        WalkerPhys {
            torque_gain: TORQUE_GAIN * params.force_scale,
            drag: if params.roughness != 0.0 {
                DRAG + params.roughness
            } else {
                DRAG
            },
            wind: params.wind,
        }
    }
}

/// The bipedal walking task.
///
/// Observation (24): hull angle & angular velocity, hull x/y velocity,
/// per-leg hip angle/speed and knee angle/speed, per-leg ground
/// contact, and 10 lidar distances to the (flat) terrain. Actions (4):
/// hip and knee torques for both legs in `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct BipedalWalker {
    phys: WalkerPhys,
    hull_angle: f64,
    hull_omega: f64,
    /// Forward velocity of the hull.
    vx: f64,
    vy: f64,
    position: f64,
    /// `[hip0, knee0, hip1, knee1]` joint angles.
    joints: [f64; 4],
    joint_speeds: [f64; 4],
    steps: usize,
    done: bool,
    max_steps: usize,
}

impl BipedalWalker {
    /// Creates the environment with the Gym step limit (1600).
    pub fn new() -> Self {
        Self::with_max_steps(1600)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self::with_scenario_max_steps(&ScenarioParams::default(), max_steps)
    }

    /// Creates the environment with scenario physics and the Gym step
    /// limit (1600).
    pub fn with_scenario(params: &ScenarioParams) -> Self {
        Self::with_scenario_max_steps(params, 1600)
    }

    /// Creates the environment with scenario physics and a custom step
    /// limit.
    pub fn with_scenario_max_steps(params: &ScenarioParams, max_steps: usize) -> Self {
        BipedalWalker {
            phys: WalkerPhys::from_params(params),
            hull_angle: 0.0,
            hull_omega: 0.0,
            vx: 0.0,
            vy: 0.0,
            position: 0.0,
            joints: [0.0; 4],
            joint_speeds: [0.0; 4],
            steps: 0,
            done: true,
            max_steps,
        }
    }

    /// Distance travelled so far (for tests/tools).
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Leg extension toward the ground: larger = foot lower. The foot
    /// of the more extended leg carries the stance.
    fn leg_extension(&self, leg: usize) -> f64 {
        let hip = self.joints[2 * leg];
        let knee = self.joints[2 * leg + 1];
        (hip + self.hull_angle).cos() + 0.8 * (hip + knee + self.hull_angle).cos()
    }

    fn contacts(&self) -> (bool, bool) {
        let e0 = self.leg_extension(0);
        let e1 = self.leg_extension(1);
        let max = e0.max(e1);
        (e0 >= max - 0.08, e1 >= max - 0.08)
    }

    fn observation(&self) -> Vec<f64> {
        let (c0, c1) = self.contacts();
        let mut obs = Vec::with_capacity(24);
        obs.push(self.hull_angle);
        obs.push(self.hull_omega);
        obs.push(self.vx * 0.3); // Gym scales hull velocity
        obs.push(self.vy * 0.3);
        obs.push(self.joints[0]);
        obs.push(self.joint_speeds[0]);
        obs.push(self.joints[1]);
        obs.push(self.joint_speeds[1]);
        obs.push(f64::from(c0));
        obs.push(self.joints[2]);
        obs.push(self.joint_speeds[2]);
        obs.push(self.joints[3]);
        obs.push(self.joint_speeds[3]);
        obs.push(f64::from(c1));
        // Lidar over flat terrain: distance to ground along rays fanned
        // from the hull. Deterministic in hull attitude.
        let hull_height = 1.2;
        for i in 0..LIDAR_RAYS {
            let ray_angle = self.hull_angle + 0.15 * i as f64;
            let dist = hull_height / ray_angle.cos().max(0.2);
            obs.push(dist.min(2.0) / 2.0);
        }
        obs
    }
}

impl Default for BipedalWalker {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for BipedalWalker {
    fn observation_size(&self) -> usize {
        24
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::symmetric(4, 1.0)
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.hull_angle = rng.gen_range(-0.05..0.05);
        self.hull_omega = 0.0;
        self.vx = 0.0;
        self.vy = 0.0;
        self.position = 0.0;
        for (i, j) in self.joints.iter_mut().enumerate() {
            // Legs start slightly split so a gait can bootstrap.
            *j = if i == 0 { 0.2 } else { -0.1 } * (1.0 + rng.gen_range(-0.2..0.2));
        }
        self.joint_speeds = [0.0; 4];
        self.steps = 0;
        self.done = false;
        self.observation()
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished (terminated or
    /// truncated) without an intervening reset, or if the action is
    /// not a four-dimensional `Continuous` torque vector.
    fn step(&mut self, action: &Action) -> Step {
        assert!(
            !self.done,
            "bipedal_walker: step() called on a finished episode"
        );
        let torques = expect_continuous(action, &[-1.0; 4], &[1.0; 4], "bipedal_walker");

        // Joint dynamics: torque-driven spring-damper, clamped range.
        let limits = [HIP_LIMIT, KNEE_LIMIT, HIP_LIMIT, KNEE_LIMIT];
        for i in 0..4 {
            let accel = self.phys.torque_gain * torques[i]
                - JOINT_DAMPING * self.joint_speeds[i]
                - JOINT_SPRING * self.joints[i];
            self.joint_speeds[i] += accel * DT;
            self.joints[i] += self.joint_speeds[i] * DT;
            if self.joints[i].abs() > limits[i] {
                self.joints[i] = self.joints[i].clamp(-limits[i], limits[i]);
                self.joint_speeds[i] = 0.0;
            }
        }

        // Propulsion: a stance leg whose hip swings backward pushes the
        // hull forward (ground reaction). A swing leg contributes
        // nothing; simultaneous stance pushes fight each other through
        // the drag term.
        let (c0, c1) = self.contacts();
        let mut push = 0.0;
        if c0 {
            push += PUSH_GAIN * (-self.joint_speeds[0]).max(0.0);
        }
        if c1 {
            push += PUSH_GAIN * (-self.joint_speeds[2]).max(0.0);
        }
        if self.phys.wind != 0.0 {
            push += self.phys.wind;
        }
        self.vx += (push - self.phys.drag * self.vx) * DT / 0.3;
        self.position += self.vx * DT;
        // Vertical bounce from gait (cosmetic but feeds obs[3]).
        self.vy = 0.3 * (self.joint_speeds[0] + self.joint_speeds[2]);

        // Hull attitude: reaction torque from hip drives pitch; spring
        // models the legs catching the hull.
        let reaction = -0.35 * (torques[0] + torques[2]);
        self.hull_omega +=
            (reaction - HULL_SPRING * self.hull_angle - HULL_DAMPING * self.hull_omega) * DT / 0.25;
        self.hull_angle += self.hull_omega * DT;

        self.steps += 1;
        let fell = self.hull_angle.abs() > FALL_ANGLE;
        let finished = self.position >= TRACK_LENGTH;
        let terminated = fell || finished;
        let truncated = !terminated && self.steps >= self.max_steps;
        self.done = terminated || truncated;

        // Gym-style reward: forward progress dominates, torque costs a
        // little, falling costs -100. Scaled so completing the full
        // track earns ~300 (the Gym solved threshold): 300 / TRACK_LENGTH
        // per unit of progress.
        let torque_cost: f64 = torques.iter().map(|t| t.abs()).sum::<f64>() * 0.0035;
        let mut reward =
            (300.0 / TRACK_LENGTH) * self.vx * DT - torque_cost - 5.0 * self.hull_angle.abs() * DT;
        if fell {
            reward -= 100.0;
        }
        Step {
            observation: self.observation(),
            reward,
            terminated,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "bipedal_walker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_reward(policy: impl Fn(usize, &[f64]) -> [f64; 4], steps: usize) -> (f64, f64) {
        let mut env = BipedalWalker::with_max_steps(steps);
        let mut obs = env.reset(1);
        let mut total = 0.0;
        let mut t = 0;
        loop {
            let a = policy(t, &obs);
            let s = env.step(&Action::Continuous(a.to_vec()));
            total += s.reward;
            obs = s.observation.clone();
            t += 1;
            if s.done() {
                break;
            }
        }
        (total, env.position())
    }

    #[test]
    fn observation_is_24_dimensional() {
        let mut env = BipedalWalker::new();
        assert_eq!(env.reset(0).len(), 24);
        assert_eq!(env.observation_size(), 24);
    }

    #[test]
    fn idle_walker_goes_nowhere() {
        let (_, pos) = total_reward(|_, _| [0.0; 4], 300);
        assert!(pos.abs() < 0.5, "no torque, no progress: {pos}");
    }

    #[test]
    fn alternating_gait_moves_forward() {
        // Out-of-phase sinusoidal hips: the canonical open-loop gait.
        let gait = |t: usize, _: &[f64]| {
            let phase = t as f64 * 0.15;
            [
                phase.sin(),
                0.3 * phase.cos(),
                -phase.sin(),
                -0.3 * phase.cos(),
            ]
        };
        let (reward, pos) = total_reward(gait, 600);
        assert!(pos > 1.0, "gait should make progress, got {pos}");
        let (idle_reward, _) = total_reward(|_, _| [0.0; 4], 600);
        assert!(reward > idle_reward);
    }

    #[test]
    fn symmetric_torques_beat_no_stance_alternation() {
        // Both hips pushed identically: legs move together, contacts
        // stay shared, and drag limits speed versus alternating gait.
        let together = |t: usize, _: &[f64]| {
            let phase = (t as f64 * 0.15).sin();
            [phase, 0.0, phase, 0.0]
        };
        let alternating = |t: usize, _: &[f64]| {
            let phase = t as f64 * 0.15;
            [phase.sin(), 0.0, -phase.sin(), 0.0]
        };
        let (_, pos_together) = total_reward(together, 600);
        let (_, pos_alt) = total_reward(alternating, 600);
        assert!(
            pos_alt > pos_together,
            "alternating ({pos_alt}) must beat in-phase ({pos_together})"
        );
    }

    #[test]
    fn joints_respect_limits() {
        let mut env = BipedalWalker::new();
        env.reset(2);
        for _ in 0..500 {
            let s = env.step(&Action::Continuous(vec![1.0, 1.0, 1.0, 1.0]));
            for &idx in &[4usize, 6, 9, 11] {
                assert!(s.observation[idx].abs() <= HIP_LIMIT + 1e-9);
            }
            if s.done() {
                break;
            }
        }
    }

    #[test]
    fn at_least_one_leg_always_in_contact() {
        let mut env = BipedalWalker::new();
        env.reset(3);
        for t in 0..200 {
            let phase = t as f64 * 0.2;
            let s = env.step(&Action::Continuous(vec![
                phase.sin(),
                0.0,
                -phase.sin(),
                0.0,
            ]));
            assert!(s.observation[8] + s.observation[13] >= 1.0);
            if s.done() {
                break;
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BipedalWalker::new();
        let mut b = BipedalWalker::new();
        assert_eq!(a.reset(9), b.reset(9));
        for t in 0..100 {
            let act = Action::Continuous(vec![(t as f64 * 0.1).sin(), 0.1, -0.2, 0.0]);
            assert_eq!(a.step(&act), b.step(&act));
        }
    }

    #[test]
    fn default_scenario_matches_legacy_physics_bitwise() {
        let mut legacy = BipedalWalker::new();
        let mut scenario = BipedalWalker::with_scenario(&ScenarioParams::default());
        assert_eq!(legacy.reset(9), scenario.reset(9));
        for t in 0..200 {
            let act = Action::Continuous(vec![(t as f64 * 0.15).sin(), 0.1, -0.2, 0.0]);
            let sa = legacy.step(&act);
            let sb = scenario.step(&act);
            for (x, y) in sa.observation.iter().zip(&sb.observation) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(sa.reward.to_bits(), sb.reward.to_bits());
        }
    }

    #[test]
    fn rough_terrain_slows_the_gait() {
        let rough = ScenarioParams {
            roughness: 1.5,
            ..ScenarioParams::default()
        };
        let gait = |t: usize| {
            let phase = t as f64 * 0.15;
            Action::Continuous(vec![
                phase.sin(),
                0.3 * phase.cos(),
                -phase.sin(),
                -0.3 * phase.cos(),
            ])
        };
        let run = |params: &ScenarioParams| {
            let mut env = BipedalWalker::with_scenario_max_steps(params, 600);
            env.reset(1);
            for t in 0..600 {
                if env.step(&gait(t)).done() {
                    break;
                }
            }
            env.position()
        };
        let smooth_pos = run(&ScenarioParams::default());
        let rough_pos = run(&rough);
        assert!(
            rough_pos < smooth_pos,
            "roughness must slow progress: {rough_pos} vs {smooth_pos}"
        );
    }
}
