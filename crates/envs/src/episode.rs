//! Policy-environment rollout helpers.
//!
//! The E3 "evaluate" phase is exactly this loop: feed the observation
//! through a network, decode the output into an action, step the
//! environment, repeat until the episode ends, and report the summed
//! reward as the genome's fitness.

use crate::env::{Action, ActionSpace, Environment, Step};

/// Anything that maps observations to raw network outputs.
///
/// Implemented for closures, so a decoded NEAT network plugs in as
/// `|obs: &[f64]| net.activate(obs)`.
pub trait Policy {
    /// Produces the raw output vector for one observation.
    fn act(&mut self, observation: &[f64]) -> Vec<f64>;
}

impl<F: FnMut(&[f64]) -> Vec<f64>> Policy for F {
    fn act(&mut self, observation: &[f64]) -> Vec<f64> {
        self(observation)
    }
}

/// Summary of one episode rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeResult {
    /// Sum of rewards (the genome's fitness).
    pub total_reward: f64,
    /// Number of environment steps taken.
    pub steps: usize,
    /// Whether the episode ended by termination (vs truncation).
    pub terminated: bool,
}

/// Decodes raw policy outputs into an environment action:
/// argmax for discrete spaces; for continuous spaces each output is
/// interpreted in `[-1, 1]` and rescaled to the per-dimension bounds.
///
/// # Panics
///
/// Panics if `outputs.len()` differs from
/// [`ActionSpace::policy_outputs`].
pub fn decode_action(outputs: &[f64], space: &ActionSpace) -> Action {
    assert_eq!(
        outputs.len(),
        space.policy_outputs(),
        "policy produced {} outputs for a space needing {}",
        outputs.len(),
        space.policy_outputs()
    );
    match space {
        ActionSpace::Discrete(_) => {
            let best = outputs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("policy_outputs >= 1");
            Action::Discrete(best)
        }
        ActionSpace::Continuous { low, high } => {
            let values = outputs
                .iter()
                .zip(low.iter().zip(high))
                .map(|(&x, (&lo, &hi))| {
                    let unit = x.clamp(-1.0, 1.0);
                    lo + (unit + 1.0) / 2.0 * (hi - lo)
                })
                .collect();
            Action::Continuous(values)
        }
    }
}

/// Runs one full episode of `policy` in `env` from `seed` and returns
/// the rollout summary.
pub fn run_episode<P: Policy + ?Sized>(
    env: &mut dyn Environment,
    policy: &mut P,
    seed: u64,
) -> EpisodeResult {
    let space = env.action_space();
    let mut obs = env.reset(seed);
    let mut total_reward = 0.0;
    let mut steps = 0;
    loop {
        let outputs = policy.act(&obs);
        let action = decode_action(&outputs, &space);
        let Step {
            observation,
            reward,
            terminated,
            truncated,
        } = env.step(&action);
        total_reward += reward;
        steps += 1;
        obs = observation;
        if terminated || truncated {
            return EpisodeResult {
                total_reward,
                steps,
                terminated,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartpole::CartPole;
    use crate::pendulum::Pendulum;

    #[test]
    fn decode_discrete_takes_argmax() {
        let a = decode_action(&[0.1, 0.9, -0.5], &ActionSpace::Discrete(3));
        assert_eq!(a, Action::Discrete(1));
    }

    #[test]
    fn decode_continuous_rescales_to_bounds() {
        let space = ActionSpace::Continuous {
            low: vec![-2.0],
            high: vec![2.0],
        };
        assert_eq!(decode_action(&[0.0], &space), Action::Continuous(vec![0.0]));
        assert_eq!(decode_action(&[1.0], &space), Action::Continuous(vec![2.0]));
        assert_eq!(
            decode_action(&[-1.0], &space),
            Action::Continuous(vec![-2.0])
        );
        // Out-of-range outputs are clamped first.
        assert_eq!(decode_action(&[7.0], &space), Action::Continuous(vec![2.0]));
    }

    #[test]
    #[should_panic(expected = "policy produced")]
    fn decode_checks_output_count() {
        let _ = decode_action(&[0.1], &ActionSpace::Discrete(3));
    }

    #[test]
    fn rollout_accumulates_reward_and_steps() {
        let mut env = CartPole::new();
        let mut policy = |obs: &[f64]| vec![-(obs[2] + obs[3]), obs[2] + obs[3]];
        let result = run_episode(&mut env, &mut policy, 3);
        assert_eq!(
            result.total_reward, result.steps as f64,
            "cartpole pays 1 per step"
        );
        assert!(result.steps >= 400, "feedback policy survives long");
    }

    #[test]
    fn rollout_works_for_continuous_spaces() {
        let mut env = Pendulum::new();
        let mut policy = |_: &[f64]| vec![0.0];
        let result = run_episode(&mut env, &mut policy, 1);
        assert_eq!(result.steps, 200);
        assert!(!result.terminated);
        assert!(result.total_reward < 0.0);
    }
}
