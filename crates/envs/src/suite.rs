//! The paper's environment suite: the six control benchmarks of
//! footnote 4 (Env1–Env6) plus the Atari-class Env7 used by Fig. 11,
//! with their observation/action dimensions and required-fitness
//! thresholds.

use crate::batch::{BatchEnv, ScalarBatch};
use crate::cartpole::CartPoleBatch;
use crate::env::Environment;
use crate::lunar_lander::LunarLanderBatch;
use crate::scenario::ScenarioParams;
use crate::{Acrobot, BipedalWalker, CartPole, LunarLander, MountainCar, Pendulum, Pong};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for the benchmark environments, numbered as in the
/// paper (footnote 4 plus the Fig. 11 Env7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvId {
    /// Env1: CartPole.
    CartPole,
    /// Env2: Acrobot.
    Acrobot,
    /// Env3: MountainCar.
    MountainCar,
    /// Env4: BipedalWalker.
    Bipedal,
    /// Env5: LunarLander.
    LunarLander,
    /// Env6: Pendulum.
    Pendulum,
    /// Env7: Pong (the Atari-class game; used by the paper's Fig. 11
    /// "Env1–Env7" average).
    Pong,
}

impl EnvId {
    /// The six control environments in paper order (Env1..Env6) —
    /// the suite of Figs. 2, 9 and 10.
    pub const ALL: [EnvId; 6] = [
        EnvId::CartPole,
        EnvId::Acrobot,
        EnvId::MountainCar,
        EnvId::Bipedal,
        EnvId::LunarLander,
        EnvId::Pendulum,
    ];

    /// The extended suite including the Atari-class Env7 (the paper's
    /// Fig. 11 averages over Env1–Env7).
    pub const ALL_WITH_ATARI: [EnvId; 7] = [
        EnvId::CartPole,
        EnvId::Acrobot,
        EnvId::MountainCar,
        EnvId::Bipedal,
        EnvId::LunarLander,
        EnvId::Pendulum,
        EnvId::Pong,
    ];

    /// Instantiates the environment with default (legacy) physics.
    pub fn make(self) -> Box<dyn Environment> {
        self.make_scenario(&ScenarioParams::default())
    }

    /// Instantiates the environment with scenario physics. With
    /// [`ScenarioParams::default`] this is bit-identical to
    /// [`EnvId::make`].
    pub fn make_scenario(self, params: &ScenarioParams) -> Box<dyn Environment> {
        match self {
            EnvId::CartPole => Box::new(CartPole::with_scenario(params)),
            EnvId::Acrobot => Box::new(Acrobot::with_scenario(params)),
            EnvId::MountainCar => Box::new(MountainCar::with_scenario(params)),
            EnvId::Bipedal => Box::new(BipedalWalker::with_scenario(params)),
            EnvId::LunarLander => Box::new(LunarLander::with_scenario(params)),
            EnvId::Pendulum => Box::new(Pendulum::with_scenario(params)),
            EnvId::Pong => Box::new(Pong::with_scenario(params)),
        }
    }

    /// Instantiates a lockstep batch of `lanes` episodes.
    ///
    /// CartPole and LunarLander — the two scaling workloads — get
    /// their hand-vectorized struct-of-arrays implementations; the
    /// rest fall back to the generic [`ScalarBatch`] adapter. Either
    /// way, every lane's trajectory is bit-identical to the scalar
    /// [`EnvId::make`] environment given the same seed and actions.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn make_batch(self, lanes: usize) -> Box<dyn BatchEnv> {
        match self {
            EnvId::CartPole => Box::new(CartPoleBatch::new(lanes)),
            EnvId::LunarLander => Box::new(LunarLanderBatch::new(lanes)),
            other => Box::new(ScalarBatch::from_fn(lanes, |_| other.make())),
        }
    }

    /// Instantiates a lockstep batch with one lane per scenario
    /// parameter set — how multi-scenario fitness packs heterogeneous
    /// physics into the SoA stepping path. A lane built from
    /// [`ScenarioParams::default`] is bit-identical to the matching
    /// [`EnvId::make_batch`] lane.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn make_batch_scenarios(self, params: &[ScenarioParams]) -> Box<dyn BatchEnv> {
        match self {
            EnvId::CartPole => Box::new(CartPoleBatch::with_scenarios(params)),
            EnvId::LunarLander => Box::new(LunarLanderBatch::with_scenarios(params)),
            other => Box::new(ScalarBatch::from_fn(params.len(), |i| {
                other.make_scenario(&params[i])
            })),
        }
    }

    /// The paper's env index (1-based, per footnote 4).
    pub fn paper_index(self) -> usize {
        match self {
            EnvId::CartPole => 1,
            EnvId::Acrobot => 2,
            EnvId::MountainCar => 3,
            EnvId::Bipedal => 4,
            EnvId::LunarLander => 5,
            EnvId::Pendulum => 6,
            EnvId::Pong => 7,
        }
    }

    /// Observation size (network input count).
    pub fn observation_size(self) -> usize {
        match self {
            EnvId::CartPole => 4,
            EnvId::Acrobot => 6,
            EnvId::MountainCar => 2,
            EnvId::Bipedal => 24,
            EnvId::LunarLander => 8,
            EnvId::Pendulum => 3,
            EnvId::Pong => 6,
        }
    }

    /// Policy output count (action logits / dims). These match the
    /// per-env PE counts used in the paper's Fig. 10(b) footnote
    /// (cartpole 3 includes Gym's historical 3-logit encoding; we use
    /// the true action-space sizes).
    pub fn policy_outputs(self) -> usize {
        match self {
            EnvId::CartPole => 2,
            EnvId::Acrobot => 3,
            EnvId::MountainCar => 3,
            EnvId::Bipedal => 4,
            EnvId::LunarLander => 4,
            EnvId::Pendulum => 1,
            EnvId::Pong => 3,
        }
    }

    /// The "required fitness" used as the stop criterion (per-episode
    /// reward): Gym's solved thresholds where defined, conventional
    /// values otherwise.
    pub fn required_fitness(self) -> f64 {
        match self {
            EnvId::CartPole => 475.0,
            EnvId::Acrobot => -100.0,
            EnvId::MountainCar => -110.0,
            EnvId::Bipedal => 300.0,
            EnvId::LunarLander => 200.0,
            EnvId::Pendulum => -300.0,
            EnvId::Pong => 3.0,
        }
    }

    /// A fitness floor used to normalize achieved fitness into
    /// `[0, 1]` for Fig. 2 (normalized = (f - floor) / (required -
    /// floor), clamped).
    pub fn fitness_floor(self) -> f64 {
        match self {
            EnvId::CartPole => 0.0,
            EnvId::Acrobot => -500.0,
            EnvId::MountainCar => -200.0,
            EnvId::Bipedal => -100.0,
            EnvId::LunarLander => -250.0,
            EnvId::Pendulum => -1600.0,
            EnvId::Pong => -5.0,
        }
    }

    /// Normalizes a raw fitness into `[0, 1]` (1.0 = task finished).
    pub fn normalized_fitness(self, fitness: f64) -> f64 {
        let (floor, goal) = (self.fitness_floor(), self.required_fitness());
        ((fitness - floor) / (goal - floor)).clamp(0.0, 1.0)
    }

    /// Short name (e.g. `"cartpole"`).
    pub fn name(self) -> &'static str {
        match self {
            EnvId::CartPole => "cartpole",
            EnvId::Acrobot => "acrobot",
            EnvId::MountainCar => "mountain_car",
            EnvId::Bipedal => "bipedal",
            EnvId::LunarLander => "lunar_lander",
            EnvId::Pendulum => "pendulum",
            EnvId::Pong => "pong",
        }
    }
}

impl fmt::Display for EnvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Env{} ({})", self.paper_index(), self.name())
    }
}

/// Error produced when parsing an [`EnvId`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEnvIdError {
    input: String,
}

impl fmt::Display for ParseEnvIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown environment {:?} (expected one of:", self.input)?;
        for id in EnvId::ALL_WITH_ATARI {
            write!(f, " {},", id.name())?;
        }
        write!(f, " or env1..env7)")
    }
}

impl std::error::Error for ParseEnvIdError {}

impl std::str::FromStr for EnvId {
    type Err = ParseEnvIdError;

    /// Accepts the short [`EnvId::name`] (separator- and
    /// case-insensitive, so `"mountain_car"`, `"MountainCar"` and
    /// `"mountain-car"` all parse) and the paper numbering (`"env3"`
    /// or plain `"3"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| *c != '_' && *c != '-' && *c != ' ')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        for id in EnvId::ALL_WITH_ATARI {
            let name: String = id.name().chars().filter(|c| *c != '_').collect();
            if normalized == name || normalized == format!("env{}", id.paper_index()) {
                return Ok(id);
            }
        }
        // Bare paper index ("3") and the full names of abbreviated
        // variants round out the accepted spellings.
        match normalized.as_str() {
            "1" | "2" | "3" | "4" | "5" | "6" | "7" => {
                let index: usize = normalized.parse().expect("single digit");
                Ok(EnvId::ALL_WITH_ATARI
                    .into_iter()
                    .find(|id| id.paper_index() == index)
                    .expect("indices 1..=7 are all assigned"))
            }
            "bipedalwalker" => Ok(EnvId::Bipedal),
            _ => Err(ParseEnvIdError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_declared_dimensions() {
        for id in EnvId::ALL {
            let mut env = id.make();
            let obs = env.reset(0);
            assert_eq!(obs.len(), id.observation_size(), "{id} observation size");
            assert_eq!(
                env.action_space().policy_outputs(),
                id.policy_outputs(),
                "{id} policy outputs"
            );
            assert_eq!(env.observation_size(), id.observation_size());
        }
    }

    #[test]
    fn make_batch_mirrors_scalar_metadata() {
        for id in EnvId::ALL {
            let env = id.make();
            let batch = id.make_batch(3);
            assert_eq!(batch.lanes(), 3);
            assert_eq!(batch.observation_size(), env.observation_size(), "{id}");
            assert_eq!(batch.action_space(), env.action_space(), "{id}");
            assert_eq!(batch.max_episode_steps(), env.max_episode_steps(), "{id}");
            assert_eq!(batch.name(), env.name(), "{id}");
        }
    }

    #[test]
    fn make_scenario_default_matches_make_bitwise() {
        use crate::env::Action;
        for id in EnvId::ALL_WITH_ATARI {
            let mut legacy = id.make();
            let mut scenario = id.make_scenario(&ScenarioParams::default());
            let a = legacy.reset(17);
            let b = scenario.reset(17);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{id} reset diverged");
            }
            let action = match legacy.action_space() {
                crate::env::ActionSpace::Discrete(_) => Action::Discrete(0),
                crate::env::ActionSpace::Continuous { low, .. } => {
                    Action::Continuous(vec![0.0; low.len()])
                }
            };
            for _ in 0..25 {
                let sa = legacy.step(&action);
                let sb = scenario.step(&action);
                for (x, y) in sa.observation.iter().zip(&sb.observation) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{id} step diverged");
                }
                if sa.done() {
                    break;
                }
            }
        }
    }

    #[test]
    fn make_batch_scenarios_mirrors_scalar_metadata() {
        let params = vec![
            ScenarioParams::default(),
            ScenarioParams {
                gravity_scale: 1.1,
                ..ScenarioParams::default()
            },
        ];
        for id in EnvId::ALL {
            let env = id.make();
            let batch = id.make_batch_scenarios(&params);
            assert_eq!(batch.lanes(), 2, "{id}");
            assert_eq!(batch.observation_size(), env.observation_size(), "{id}");
            assert_eq!(batch.action_space(), env.action_space(), "{id}");
            assert_eq!(batch.name(), env.name(), "{id}");
        }
    }

    #[test]
    fn paper_indices_are_1_through_7() {
        let mut seen: Vec<usize> = EnvId::ALL_WITH_ATARI
            .iter()
            .map(|e| e.paper_index())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(
            &EnvId::ALL_WITH_ATARI[..6],
            &EnvId::ALL,
            "Env7 extends the suite"
        );
    }

    #[test]
    fn env_ids_parse_from_names_and_indices() {
        for id in EnvId::ALL_WITH_ATARI {
            assert_eq!(id.name().parse::<EnvId>().unwrap(), id, "{id} by name");
            assert_eq!(
                format!("Env{}", id.paper_index()).parse::<EnvId>().unwrap(),
                id,
                "{id} by paper number"
            );
        }
        assert_eq!("MountainCar".parse::<EnvId>().unwrap(), EnvId::MountainCar);
        assert_eq!("mountain-car".parse::<EnvId>().unwrap(), EnvId::MountainCar);
        assert_eq!("BipedalWalker".parse::<EnvId>().unwrap(), EnvId::Bipedal);
        assert_eq!("6".parse::<EnvId>().unwrap(), EnvId::Pendulum);
        let err = "gridworld".parse::<EnvId>().unwrap_err();
        assert!(err.to_string().contains("gridworld"));
    }

    #[test]
    fn env7_matches_declared_dimensions() {
        let mut env = EnvId::Pong.make();
        assert_eq!(env.reset(0).len(), EnvId::Pong.observation_size());
        assert_eq!(
            env.action_space().policy_outputs(),
            EnvId::Pong.policy_outputs()
        );
        assert_eq!(EnvId::Pong.to_string(), "Env7 (pong)");
    }

    #[test]
    fn normalized_fitness_is_clamped() {
        assert_eq!(EnvId::CartPole.normalized_fitness(1e9), 1.0);
        assert_eq!(EnvId::CartPole.normalized_fitness(-1e9), 0.0);
        let mid = EnvId::CartPole.normalized_fitness(237.5);
        assert!((mid - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_includes_paper_numbering() {
        assert_eq!(EnvId::CartPole.to_string(), "Env1 (cartpole)");
        assert_eq!(EnvId::Pendulum.to_string(), "Env6 (pendulum)");
    }
}
