//! CartPole (Gym `CartPole-v1`): balance a pole on a force-controlled
//! cart. This is the paper's **Env1**.
//!
//! The physics constants can be perturbed per scenario via
//! [`ScenarioParams`] — pole mass/length, gravity, push force, and a
//! lateral wind disturbance — while the default parameter set
//! reproduces the classic Gym constants bit-identically.

use crate::batch::{BatchEnv, StepBatch};
use crate::env::{expect_discrete, Action, ActionSpace, Environment, Step};
use crate::scenario::ScenarioParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRAVITY: f64 = 9.8;
const MASS_CART: f64 = 1.0;
const MASS_POLE: f64 = 0.1;
const HALF_POLE_LENGTH: f64 = 0.5;
const FORCE_MAG: f64 = 10.0;
const TAU: f64 = 0.02;
const THETA_THRESHOLD: f64 = 12.0 * std::f64::consts::PI / 180.0;
const X_THRESHOLD: f64 = 2.4;

/// Scenario-resolved physics. Built once per episode from
/// [`ScenarioParams`]; the default parameters produce exactly the
/// classic constants (scales multiply by `1.0`, which is IEEE-exact,
/// and zero wind skips the disturbance branch entirely).
#[derive(Debug, Clone, Copy, PartialEq)]
struct CartPolePhys {
    gravity: f64,
    mass_pole: f64,
    total_mass: f64,
    half_pole_length: f64,
    pole_mass_length: f64,
    force_mag: f64,
    wind: f64,
}

impl CartPolePhys {
    fn from_params(params: &ScenarioParams) -> Self {
        let mass_pole = MASS_POLE * params.mass_scale;
        let half_pole_length = HALF_POLE_LENGTH * params.length_scale;
        CartPolePhys {
            gravity: GRAVITY * params.gravity_scale,
            mass_pole,
            total_mass: MASS_CART + mass_pole,
            half_pole_length,
            pole_mass_length: mass_pole * half_pole_length,
            force_mag: FORCE_MAG * params.force_scale,
            wind: params.wind,
        }
    }

    /// One Euler step of the cart-pole dynamics. Scalar and batched
    /// environments both call this, so their floating-point operation
    /// order is identical by construction.
    fn advance(&self, state: [f64; 4], a: usize) -> [f64; 4] {
        let force = if a == 1 {
            self.force_mag
        } else {
            -self.force_mag
        };
        let [x, x_dot, theta, theta_dot] = state;
        let (sin_t, cos_t) = theta.sin_cos();
        let temp =
            (force + self.pole_mass_length * theta_dot * theta_dot * sin_t) / self.total_mass;
        let theta_acc = (self.gravity * sin_t - cos_t * temp)
            / (self.half_pole_length
                * (4.0 / 3.0 - self.mass_pole * cos_t * cos_t / self.total_mass));
        let mut x_acc = temp - self.pole_mass_length * theta_acc * cos_t / self.total_mass;
        if self.wind != 0.0 {
            x_acc += self.wind;
        }
        [
            x + TAU * x_dot,
            x_dot + TAU * x_acc,
            theta + TAU * theta_dot,
            theta_dot + TAU * theta_acc,
        ]
    }
}

/// The CartPole balancing task.
///
/// Observation: `[x, x_dot, theta, theta_dot]`. Actions: 0 push left,
/// 1 push right. Reward: +1 per surviving step. Terminates when the
/// pole tips past ±12° or the cart leaves ±2.4.
///
/// # Example
///
/// ```
/// use e3_envs::{CartPole, Environment, Action};
///
/// let mut env = CartPole::new();
/// env.reset(0);
/// let step = env.step(&Action::Discrete(0));
/// assert!(!step.truncated);
/// ```
#[derive(Debug, Clone)]
pub struct CartPole {
    phys: CartPolePhys,
    state: [f64; 4],
    steps: usize,
    done: bool,
    max_steps: usize,
}

impl CartPole {
    /// Creates the environment with the Gym v1 step limit (500).
    pub fn new() -> Self {
        Self::with_max_steps(500)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        Self::with_scenario_max_steps(&ScenarioParams::default(), max_steps)
    }

    /// Creates the environment with scenario physics and the Gym v1
    /// step limit (500).
    pub fn with_scenario(params: &ScenarioParams) -> Self {
        Self::with_scenario_max_steps(params, 500)
    }

    /// Creates the environment with scenario physics and a custom step
    /// limit.
    pub fn with_scenario_max_steps(params: &ScenarioParams, max_steps: usize) -> Self {
        CartPole {
            phys: CartPolePhys::from_params(params),
            state: [0.0; 4],
            steps: 0,
            done: true,
            max_steps,
        }
    }

    /// Raw state `[x, x_dot, theta, theta_dot]` (for tests/tools).
    pub fn state(&self) -> [f64; 4] {
        self.state
    }
}

impl Default for CartPole {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for CartPole {
    fn observation_size(&self) -> usize {
        4
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(2)
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        for s in &mut self.state {
            *s = rng.gen_range(-0.05..0.05);
        }
        self.steps = 0;
        self.done = false;
        self.state.to_vec()
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished (terminated or
    /// truncated) without an intervening reset, or if the action is
    /// not `Discrete(0|1)`.
    fn step(&mut self, action: &Action) -> Step {
        assert!(!self.done, "cartpole: step() called on a finished episode");
        let a = expect_discrete(action, 2, "cartpole");
        self.state = self.phys.advance(self.state, a);
        self.steps += 1;
        let terminated = self.state[0].abs() > X_THRESHOLD || self.state[2].abs() > THETA_THRESHOLD;
        let truncated = !terminated && self.steps >= self.max_steps;
        self.done = terminated || truncated;
        Step {
            observation: self.state.to_vec(),
            reward: 1.0,
            terminated,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "cartpole"
    }
}

/// Hand-vectorized struct-of-arrays batch of CartPole episodes.
///
/// Keeps `[x, x_dot, theta, theta_dot]` in four lane-indexed arrays
/// and advances all active lanes per [`BatchEnv::step_batch`] call in
/// one tight loop — no per-step allocation, no per-lane virtual
/// dispatch. Each lane performs the exact floating-point operations of
/// the scalar [`CartPole`] in the same order, so trajectories are
/// bit-identical to the scalar environment given the same seed and
/// actions. Lanes may carry heterogeneous scenario physics (see
/// [`CartPoleBatch::with_scenarios`]).
#[derive(Debug, Clone)]
pub struct CartPoleBatch {
    phys: Vec<CartPolePhys>,
    x: Vec<f64>,
    x_dot: Vec<f64>,
    theta: Vec<f64>,
    theta_dot: Vec<f64>,
    steps: Vec<usize>,
    max_steps: usize,
}

impl CartPoleBatch {
    /// Creates `lanes` episodes with the Gym v1 step limit (500).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        Self::with_max_steps(lanes, 500)
    }

    /// Creates `lanes` episodes with a custom step limit.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_max_steps(lanes: usize, max_steps: usize) -> Self {
        Self::with_scenarios_max_steps(&vec![ScenarioParams::default(); lanes], max_steps)
    }

    /// Creates one lane per scenario parameter set, with the Gym v1
    /// step limit (500). Lanes may be heterogeneous.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn with_scenarios(params: &[ScenarioParams]) -> Self {
        Self::with_scenarios_max_steps(params, 500)
    }

    /// Creates one lane per scenario parameter set with a custom step
    /// limit.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn with_scenarios_max_steps(params: &[ScenarioParams], max_steps: usize) -> Self {
        assert!(!params.is_empty(), "a batch needs at least one lane");
        let lanes = params.len();
        CartPoleBatch {
            phys: params.iter().map(CartPolePhys::from_params).collect(),
            x: vec![0.0; lanes],
            x_dot: vec![0.0; lanes],
            theta: vec![0.0; lanes],
            theta_dot: vec![0.0; lanes],
            steps: vec![0; lanes],
            max_steps,
        }
    }
}

impl BatchEnv for CartPoleBatch {
    fn lanes(&self) -> usize {
        self.x.len()
    }

    fn observation_size(&self) -> usize {
        4
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(2)
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "cartpole"
    }

    fn reset_batch(&mut self, seeds: &[u64], batch: &mut StepBatch) {
        assert_eq!(seeds.len(), self.lanes(), "one seed per lane");
        assert_eq!(batch.lanes(), self.lanes(), "batch/env lane mismatch");
        for (lane, &seed) in seeds.iter().enumerate() {
            // Same draw order as the scalar reset: x, x_dot, theta,
            // theta_dot from a fresh StdRng.
            let mut rng = StdRng::seed_from_u64(seed);
            self.x[lane] = rng.gen_range(-0.05..0.05);
            self.x_dot[lane] = rng.gen_range(-0.05..0.05);
            self.theta[lane] = rng.gen_range(-0.05..0.05);
            self.theta_dot[lane] = rng.gen_range(-0.05..0.05);
            self.steps[lane] = 0;
            batch.obs_row_mut(lane).copy_from_slice(&[
                self.x[lane],
                self.x_dot[lane],
                self.theta[lane],
                self.theta_dot[lane],
            ]);
            batch.rewards[lane] = 0.0;
            batch.terminated[lane] = false;
            batch.truncated[lane] = false;
            batch.active[lane] = true;
        }
    }

    fn step_batch(&mut self, actions: &[Action], batch: &mut StepBatch) {
        assert_eq!(actions.len(), self.lanes(), "one action per lane");
        assert_eq!(batch.lanes(), self.lanes(), "batch/env lane mismatch");
        for (lane, action) in actions.iter().enumerate() {
            if !batch.active[lane] {
                batch.rewards[lane] = 0.0;
                continue;
            }
            let a = expect_discrete(action, 2, "cartpole");
            let state = [
                self.x[lane],
                self.x_dot[lane],
                self.theta[lane],
                self.theta_dot[lane],
            ];
            let next = self.phys[lane].advance(state, a);
            self.x[lane] = next[0];
            self.x_dot[lane] = next[1];
            self.theta[lane] = next[2];
            self.theta_dot[lane] = next[3];
            self.steps[lane] += 1;
            let terminated =
                self.x[lane].abs() > X_THRESHOLD || self.theta[lane].abs() > THETA_THRESHOLD;
            let truncated = !terminated && self.steps[lane] >= self.max_steps;
            batch.obs_row_mut(lane).copy_from_slice(&next);
            batch.rewards[lane] = 1.0;
            batch.terminated[lane] = terminated;
            batch.truncated[lane] = truncated;
            if terminated || truncated {
                batch.active[lane] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_starts_near_upright() {
        let mut env = CartPole::new();
        let obs = env.reset(1);
        for v in obs {
            assert!(v.abs() < 0.05);
        }
    }

    #[test]
    fn constant_push_terminates_quickly() {
        let mut env = CartPole::new();
        env.reset(1);
        let mut steps = 0;
        loop {
            let s = env.step(&Action::Discrete(1));
            steps += 1;
            if s.done() {
                assert!(
                    s.terminated,
                    "constant force must tip the pole, not time out"
                );
                break;
            }
            assert!(steps < 500);
        }
        assert!(steps < 150, "pole tipped in {steps} steps");
    }

    #[test]
    fn bang_bang_controller_balances_longer_than_random() {
        // Simple feedback: push in the direction the pole is falling.
        let run = |controller: &dyn Fn(&[f64], usize) -> usize| {
            let mut env = CartPole::new();
            let mut obs = env.reset(3);
            let mut steps = 0usize;
            loop {
                let a = controller(&obs, steps);
                let s = env.step(&Action::Discrete(a));
                obs = s.observation.clone();
                steps += 1;
                if s.done() {
                    break;
                }
            }
            steps
        };
        let feedback = run(&|obs, _| usize::from(obs[2] + obs[3] > 0.0));
        let alternating = run(&|_, t| t % 2);
        assert!(feedback >= 400, "feedback controller lasted {feedback}");
        assert!(feedback > alternating);
    }

    #[test]
    fn truncates_at_step_limit() {
        let mut env = CartPole::with_max_steps(10);
        let mut obs = env.reset(3);
        for i in 0..10 {
            let a = usize::from(obs[2] + obs[3] > 0.0);
            let s = env.step(&Action::Discrete(a));
            obs = s.observation.clone();
            if i == 9 {
                assert!(s.truncated);
            } else {
                assert!(!s.done());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = CartPole::new();
        let mut b = CartPole::new();
        assert_eq!(a.reset(42), b.reset(42));
        for _ in 0..50 {
            let sa = a.step(&Action::Discrete(1));
            let sb = b.step(&Action::Discrete(1));
            assert_eq!(sa, sb);
            if sa.done() {
                break;
            }
        }
    }

    #[test]
    fn default_scenario_matches_legacy_physics_bitwise() {
        let mut legacy = CartPole::new();
        let mut scenario = CartPole::with_scenario(&ScenarioParams::default());
        assert_eq!(legacy.reset(42), scenario.reset(42));
        for _ in 0..100 {
            let a = legacy.step(&Action::Discrete(1));
            let b = scenario.step(&Action::Discrete(1));
            for (x, y) in a.observation.iter().zip(&b.observation) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.terminated, b.terminated);
            if a.done() {
                break;
            }
        }
    }

    #[test]
    fn scenario_physics_change_the_trajectory() {
        let params = ScenarioParams {
            length_scale: 1.5,
            ..ScenarioParams::default()
        };
        let mut base = CartPole::new();
        let mut long = CartPole::with_scenario(&params);
        base.reset(7);
        long.reset(7);
        let a = base.step(&Action::Discrete(1));
        let b = long.step(&Action::Discrete(1));
        assert_ne!(
            a.observation[3].to_bits(),
            b.observation[3].to_bits(),
            "a longer pole must change theta_dot"
        );
    }

    #[test]
    fn wind_pushes_the_cart() {
        let params = ScenarioParams {
            wind: 0.5,
            ..ScenarioParams::default()
        };
        let mut calm = CartPole::new();
        let mut windy = CartPole::with_scenario(&params);
        calm.reset(7);
        windy.reset(7);
        let a = calm.step(&Action::Discrete(1));
        let b = windy.step(&Action::Discrete(1));
        assert!(b.observation[1] > a.observation[1], "wind adds x velocity");
    }

    #[test]
    #[should_panic(expected = "finished episode")]
    fn step_after_done_panics() {
        let mut env = CartPole::new();
        env.reset(1);
        loop {
            if env.step(&Action::Discrete(1)).done() {
                break;
            }
        }
        let _ = env.step(&Action::Discrete(1));
    }

    #[test]
    fn soa_batch_is_bit_identical_to_scalar() {
        let lanes = 6;
        let mut soa = CartPoleBatch::new(lanes);
        let mut batch = StepBatch::new(lanes, 4);
        let seeds: Vec<u64> = (0..lanes as u64).map(|s| s * 977 + 11).collect();
        soa.reset_batch(&seeds, &mut batch);

        let mut scalars: Vec<CartPole> = (0..lanes).map(|_| CartPole::new()).collect();
        for (lane, env) in scalars.iter_mut().enumerate() {
            let obs = env.reset(seeds[lane]);
            assert_eq!(batch.obs_row(lane), obs.as_slice());
        }
        let mut done = vec![false; lanes];
        // A feedback policy on lane parity: some lanes survive long,
        // some tip early, exercising parked-lane skipping.
        for _ in 0..600 {
            let actions: Vec<Action> = (0..lanes)
                .map(|l| {
                    let o = batch.obs_row(l);
                    if l % 2 == 0 {
                        Action::Discrete(usize::from(o[2] + o[3] > 0.0))
                    } else {
                        Action::Discrete(1)
                    }
                })
                .collect();
            soa.step_batch(&actions, &mut batch);
            for (lane, env) in scalars.iter_mut().enumerate() {
                if done[lane] {
                    continue;
                }
                let s = env.step(&actions[lane]);
                for (a, b) in batch.obs_row(lane).iter().zip(&s.observation) {
                    assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} diverged");
                }
                assert_eq!(batch.terminated[lane], s.terminated);
                assert_eq!(batch.truncated[lane], s.truncated);
                done[lane] = s.done();
            }
            if batch.all_parked() {
                break;
            }
        }
        assert!(done.iter().any(|&d| d), "odd lanes tip early");
    }

    #[test]
    fn heterogeneous_scenario_lanes_match_their_scalar_twins() {
        let params = [
            ScenarioParams::default(),
            ScenarioParams {
                gravity_scale: 1.2,
                ..ScenarioParams::default()
            },
            ScenarioParams {
                mass_scale: 0.8,
                wind: 0.1,
                ..ScenarioParams::default()
            },
        ];
        let lanes = params.len();
        let mut soa = CartPoleBatch::with_scenarios(&params);
        let mut batch = StepBatch::new(lanes, 4);
        let seeds: Vec<u64> = (0..lanes as u64).map(|s| s * 31 + 5).collect();
        soa.reset_batch(&seeds, &mut batch);
        let mut scalars: Vec<CartPole> = params.iter().map(CartPole::with_scenario).collect();
        for (lane, env) in scalars.iter_mut().enumerate() {
            assert_eq!(batch.obs_row(lane), env.reset(seeds[lane]).as_slice());
        }
        let mut done = vec![false; lanes];
        for _ in 0..600 {
            let actions: Vec<Action> = (0..lanes)
                .map(|l| {
                    let o = batch.obs_row(l);
                    Action::Discrete(usize::from(o[2] + o[3] > 0.0))
                })
                .collect();
            soa.step_batch(&actions, &mut batch);
            for (lane, env) in scalars.iter_mut().enumerate() {
                if done[lane] {
                    continue;
                }
                let s = env.step(&actions[lane]);
                for (a, b) in batch.obs_row(lane).iter().zip(&s.observation) {
                    assert_eq!(a.to_bits(), b.to_bits(), "scenario lane {lane} diverged");
                }
                done[lane] = s.done();
            }
            if batch.all_parked() {
                break;
            }
        }
    }

    #[test]
    fn soa_batch_truncates_at_step_limit() {
        let mut soa = CartPoleBatch::with_max_steps(1, 3);
        let mut batch = StepBatch::new(1, 4);
        soa.reset_batch(&[3], &mut batch);
        for i in 0..3 {
            let a = usize::from(batch.obs_row(0)[2] + batch.obs_row(0)[3] > 0.0);
            soa.step_batch(&[Action::Discrete(a)], &mut batch);
            assert_eq!(batch.truncated[0], i == 2);
        }
        assert!(batch.all_parked());
    }
}
