//! CartPole (Gym `CartPole-v1`): balance a pole on a force-controlled
//! cart. This is the paper's **Env1**.

use crate::env::{expect_discrete, Action, ActionSpace, Environment, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRAVITY: f64 = 9.8;
const MASS_CART: f64 = 1.0;
const MASS_POLE: f64 = 0.1;
const TOTAL_MASS: f64 = MASS_CART + MASS_POLE;
const HALF_POLE_LENGTH: f64 = 0.5;
const POLE_MASS_LENGTH: f64 = MASS_POLE * HALF_POLE_LENGTH;
const FORCE_MAG: f64 = 10.0;
const TAU: f64 = 0.02;
const THETA_THRESHOLD: f64 = 12.0 * std::f64::consts::PI / 180.0;
const X_THRESHOLD: f64 = 2.4;

/// The CartPole balancing task.
///
/// Observation: `[x, x_dot, theta, theta_dot]`. Actions: 0 push left,
/// 1 push right. Reward: +1 per surviving step. Terminates when the
/// pole tips past ±12° or the cart leaves ±2.4.
///
/// # Example
///
/// ```
/// use e3_envs::{CartPole, Environment, Action};
///
/// let mut env = CartPole::new();
/// env.reset(0);
/// let step = env.step(&Action::Discrete(0));
/// assert!(!step.truncated);
/// ```
#[derive(Debug, Clone)]
pub struct CartPole {
    state: [f64; 4],
    steps: usize,
    done: bool,
    max_steps: usize,
}

impl CartPole {
    /// Creates the environment with the Gym v1 step limit (500).
    pub fn new() -> Self {
        Self::with_max_steps(500)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        CartPole {
            state: [0.0; 4],
            steps: 0,
            done: true,
            max_steps,
        }
    }

    /// Raw state `[x, x_dot, theta, theta_dot]` (for tests/tools).
    pub fn state(&self) -> [f64; 4] {
        self.state
    }
}

impl Default for CartPole {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for CartPole {
    fn observation_size(&self) -> usize {
        4
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(2)
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        for s in &mut self.state {
            *s = rng.gen_range(-0.05..0.05);
        }
        self.steps = 0;
        self.done = false;
        self.state.to_vec()
    }

    fn step(&mut self, action: &Action) -> Step {
        assert!(!self.done, "cartpole: step() called on a finished episode");
        let a = expect_discrete(action, 2, "cartpole");
        let force = if a == 1 { FORCE_MAG } else { -FORCE_MAG };
        let [x, x_dot, theta, theta_dot] = self.state;
        let (sin_t, cos_t) = theta.sin_cos();
        let temp = (force + POLE_MASS_LENGTH * theta_dot * theta_dot * sin_t) / TOTAL_MASS;
        let theta_acc = (GRAVITY * sin_t - cos_t * temp)
            / (HALF_POLE_LENGTH * (4.0 / 3.0 - MASS_POLE * cos_t * cos_t / TOTAL_MASS));
        let x_acc = temp - POLE_MASS_LENGTH * theta_acc * cos_t / TOTAL_MASS;
        self.state = [
            x + TAU * x_dot,
            x_dot + TAU * x_acc,
            theta + TAU * theta_dot,
            theta_dot + TAU * theta_acc,
        ];
        self.steps += 1;
        let terminated = self.state[0].abs() > X_THRESHOLD || self.state[2].abs() > THETA_THRESHOLD;
        let truncated = !terminated && self.steps >= self.max_steps;
        self.done = terminated || truncated;
        Step {
            observation: self.state.to_vec(),
            reward: 1.0,
            terminated,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "cartpole"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_starts_near_upright() {
        let mut env = CartPole::new();
        let obs = env.reset(1);
        for v in obs {
            assert!(v.abs() < 0.05);
        }
    }

    #[test]
    fn constant_push_terminates_quickly() {
        let mut env = CartPole::new();
        env.reset(1);
        let mut steps = 0;
        loop {
            let s = env.step(&Action::Discrete(1));
            steps += 1;
            if s.done() {
                assert!(
                    s.terminated,
                    "constant force must tip the pole, not time out"
                );
                break;
            }
            assert!(steps < 500);
        }
        assert!(steps < 150, "pole tipped in {steps} steps");
    }

    #[test]
    fn bang_bang_controller_balances_longer_than_random() {
        // Simple feedback: push in the direction the pole is falling.
        let run = |controller: &dyn Fn(&[f64], usize) -> usize| {
            let mut env = CartPole::new();
            let mut obs = env.reset(3);
            let mut steps = 0usize;
            loop {
                let a = controller(&obs, steps);
                let s = env.step(&Action::Discrete(a));
                obs = s.observation.clone();
                steps += 1;
                if s.done() {
                    break;
                }
            }
            steps
        };
        let feedback = run(&|obs, _| usize::from(obs[2] + obs[3] > 0.0));
        let alternating = run(&|_, t| t % 2);
        assert!(feedback >= 400, "feedback controller lasted {feedback}");
        assert!(feedback > alternating);
    }

    #[test]
    fn truncates_at_step_limit() {
        let mut env = CartPole::with_max_steps(10);
        let mut obs = env.reset(3);
        for i in 0..10 {
            let a = usize::from(obs[2] + obs[3] > 0.0);
            let s = env.step(&Action::Discrete(a));
            obs = s.observation.clone();
            if i == 9 {
                assert!(s.truncated);
            } else {
                assert!(!s.done());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = CartPole::new();
        let mut b = CartPole::new();
        assert_eq!(a.reset(42), b.reset(42));
        for _ in 0..50 {
            let sa = a.step(&Action::Discrete(1));
            let sb = b.step(&Action::Discrete(1));
            assert_eq!(sa, sb);
            if sa.done() {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "finished episode")]
    fn step_after_done_panics() {
        let mut env = CartPole::new();
        env.reset(1);
        loop {
            if env.step(&Action::Discrete(1)).done() {
                break;
            }
        }
        let _ = env.step(&Action::Discrete(1));
    }
}
