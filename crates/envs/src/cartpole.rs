//! CartPole (Gym `CartPole-v1`): balance a pole on a force-controlled
//! cart. This is the paper's **Env1**.

use crate::batch::{BatchEnv, StepBatch};
use crate::env::{expect_discrete, Action, ActionSpace, Environment, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GRAVITY: f64 = 9.8;
const MASS_CART: f64 = 1.0;
const MASS_POLE: f64 = 0.1;
const TOTAL_MASS: f64 = MASS_CART + MASS_POLE;
const HALF_POLE_LENGTH: f64 = 0.5;
const POLE_MASS_LENGTH: f64 = MASS_POLE * HALF_POLE_LENGTH;
const FORCE_MAG: f64 = 10.0;
const TAU: f64 = 0.02;
const THETA_THRESHOLD: f64 = 12.0 * std::f64::consts::PI / 180.0;
const X_THRESHOLD: f64 = 2.4;

/// The CartPole balancing task.
///
/// Observation: `[x, x_dot, theta, theta_dot]`. Actions: 0 push left,
/// 1 push right. Reward: +1 per surviving step. Terminates when the
/// pole tips past ±12° or the cart leaves ±2.4.
///
/// # Example
///
/// ```
/// use e3_envs::{CartPole, Environment, Action};
///
/// let mut env = CartPole::new();
/// env.reset(0);
/// let step = env.step(&Action::Discrete(0));
/// assert!(!step.truncated);
/// ```
#[derive(Debug, Clone)]
pub struct CartPole {
    state: [f64; 4],
    steps: usize,
    done: bool,
    max_steps: usize,
}

impl CartPole {
    /// Creates the environment with the Gym v1 step limit (500).
    pub fn new() -> Self {
        Self::with_max_steps(500)
    }

    /// Creates the environment with a custom step limit.
    pub fn with_max_steps(max_steps: usize) -> Self {
        CartPole {
            state: [0.0; 4],
            steps: 0,
            done: true,
            max_steps,
        }
    }

    /// Raw state `[x, x_dot, theta, theta_dot]` (for tests/tools).
    pub fn state(&self) -> [f64; 4] {
        self.state
    }
}

impl Default for CartPole {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment for CartPole {
    fn observation_size(&self) -> usize {
        4
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(2)
    }

    fn reset(&mut self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        for s in &mut self.state {
            *s = rng.gen_range(-0.05..0.05);
        }
        self.steps = 0;
        self.done = false;
        self.state.to_vec()
    }

    /// # Panics
    ///
    /// Panics if called after the episode finished (terminated or
    /// truncated) without an intervening reset, or if the action is
    /// not `Discrete(0|1)`.
    fn step(&mut self, action: &Action) -> Step {
        assert!(!self.done, "cartpole: step() called on a finished episode");
        let a = expect_discrete(action, 2, "cartpole");
        let force = if a == 1 { FORCE_MAG } else { -FORCE_MAG };
        let [x, x_dot, theta, theta_dot] = self.state;
        let (sin_t, cos_t) = theta.sin_cos();
        let temp = (force + POLE_MASS_LENGTH * theta_dot * theta_dot * sin_t) / TOTAL_MASS;
        let theta_acc = (GRAVITY * sin_t - cos_t * temp)
            / (HALF_POLE_LENGTH * (4.0 / 3.0 - MASS_POLE * cos_t * cos_t / TOTAL_MASS));
        let x_acc = temp - POLE_MASS_LENGTH * theta_acc * cos_t / TOTAL_MASS;
        self.state = [
            x + TAU * x_dot,
            x_dot + TAU * x_acc,
            theta + TAU * theta_dot,
            theta_dot + TAU * theta_acc,
        ];
        self.steps += 1;
        let terminated = self.state[0].abs() > X_THRESHOLD || self.state[2].abs() > THETA_THRESHOLD;
        let truncated = !terminated && self.steps >= self.max_steps;
        self.done = terminated || truncated;
        Step {
            observation: self.state.to_vec(),
            reward: 1.0,
            terminated,
            truncated,
        }
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "cartpole"
    }
}

/// Hand-vectorized struct-of-arrays batch of CartPole episodes.
///
/// Keeps `[x, x_dot, theta, theta_dot]` in four lane-indexed arrays
/// and advances all active lanes per [`BatchEnv::step_batch`] call in
/// one tight loop — no per-step allocation, no per-lane virtual
/// dispatch. Each lane performs the exact floating-point operations of
/// the scalar [`CartPole`] in the same order, so trajectories are
/// bit-identical to the scalar environment given the same seed and
/// actions.
#[derive(Debug, Clone)]
pub struct CartPoleBatch {
    x: Vec<f64>,
    x_dot: Vec<f64>,
    theta: Vec<f64>,
    theta_dot: Vec<f64>,
    steps: Vec<usize>,
    max_steps: usize,
}

impl CartPoleBatch {
    /// Creates `lanes` episodes with the Gym v1 step limit (500).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        Self::with_max_steps(lanes, 500)
    }

    /// Creates `lanes` episodes with a custom step limit.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_max_steps(lanes: usize, max_steps: usize) -> Self {
        assert!(lanes > 0, "a batch needs at least one lane");
        CartPoleBatch {
            x: vec![0.0; lanes],
            x_dot: vec![0.0; lanes],
            theta: vec![0.0; lanes],
            theta_dot: vec![0.0; lanes],
            steps: vec![0; lanes],
            max_steps,
        }
    }
}

impl BatchEnv for CartPoleBatch {
    fn lanes(&self) -> usize {
        self.x.len()
    }

    fn observation_size(&self) -> usize {
        4
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Discrete(2)
    }

    fn max_episode_steps(&self) -> usize {
        self.max_steps
    }

    fn name(&self) -> &'static str {
        "cartpole"
    }

    fn reset_batch(&mut self, seeds: &[u64], batch: &mut StepBatch) {
        assert_eq!(seeds.len(), self.lanes(), "one seed per lane");
        assert_eq!(batch.lanes(), self.lanes(), "batch/env lane mismatch");
        for (lane, &seed) in seeds.iter().enumerate() {
            // Same draw order as the scalar reset: x, x_dot, theta,
            // theta_dot from a fresh StdRng.
            let mut rng = StdRng::seed_from_u64(seed);
            self.x[lane] = rng.gen_range(-0.05..0.05);
            self.x_dot[lane] = rng.gen_range(-0.05..0.05);
            self.theta[lane] = rng.gen_range(-0.05..0.05);
            self.theta_dot[lane] = rng.gen_range(-0.05..0.05);
            self.steps[lane] = 0;
            batch.obs_row_mut(lane).copy_from_slice(&[
                self.x[lane],
                self.x_dot[lane],
                self.theta[lane],
                self.theta_dot[lane],
            ]);
            batch.rewards[lane] = 0.0;
            batch.terminated[lane] = false;
            batch.truncated[lane] = false;
            batch.active[lane] = true;
        }
    }

    fn step_batch(&mut self, actions: &[Action], batch: &mut StepBatch) {
        assert_eq!(actions.len(), self.lanes(), "one action per lane");
        assert_eq!(batch.lanes(), self.lanes(), "batch/env lane mismatch");
        for (lane, action) in actions.iter().enumerate() {
            if !batch.active[lane] {
                batch.rewards[lane] = 0.0;
                continue;
            }
            let a = expect_discrete(action, 2, "cartpole");
            let force = if a == 1 { FORCE_MAG } else { -FORCE_MAG };
            let (x, x_dot) = (self.x[lane], self.x_dot[lane]);
            let (theta, theta_dot) = (self.theta[lane], self.theta_dot[lane]);
            let (sin_t, cos_t) = theta.sin_cos();
            let temp = (force + POLE_MASS_LENGTH * theta_dot * theta_dot * sin_t) / TOTAL_MASS;
            let theta_acc = (GRAVITY * sin_t - cos_t * temp)
                / (HALF_POLE_LENGTH * (4.0 / 3.0 - MASS_POLE * cos_t * cos_t / TOTAL_MASS));
            let x_acc = temp - POLE_MASS_LENGTH * theta_acc * cos_t / TOTAL_MASS;
            self.x[lane] = x + TAU * x_dot;
            self.x_dot[lane] = x_dot + TAU * x_acc;
            self.theta[lane] = theta + TAU * theta_dot;
            self.theta_dot[lane] = theta_dot + TAU * theta_acc;
            self.steps[lane] += 1;
            let terminated =
                self.x[lane].abs() > X_THRESHOLD || self.theta[lane].abs() > THETA_THRESHOLD;
            let truncated = !terminated && self.steps[lane] >= self.max_steps;
            batch.obs_row_mut(lane).copy_from_slice(&[
                self.x[lane],
                self.x_dot[lane],
                self.theta[lane],
                self.theta_dot[lane],
            ]);
            batch.rewards[lane] = 1.0;
            batch.terminated[lane] = terminated;
            batch.truncated[lane] = truncated;
            if terminated || truncated {
                batch.active[lane] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_starts_near_upright() {
        let mut env = CartPole::new();
        let obs = env.reset(1);
        for v in obs {
            assert!(v.abs() < 0.05);
        }
    }

    #[test]
    fn constant_push_terminates_quickly() {
        let mut env = CartPole::new();
        env.reset(1);
        let mut steps = 0;
        loop {
            let s = env.step(&Action::Discrete(1));
            steps += 1;
            if s.done() {
                assert!(
                    s.terminated,
                    "constant force must tip the pole, not time out"
                );
                break;
            }
            assert!(steps < 500);
        }
        assert!(steps < 150, "pole tipped in {steps} steps");
    }

    #[test]
    fn bang_bang_controller_balances_longer_than_random() {
        // Simple feedback: push in the direction the pole is falling.
        let run = |controller: &dyn Fn(&[f64], usize) -> usize| {
            let mut env = CartPole::new();
            let mut obs = env.reset(3);
            let mut steps = 0usize;
            loop {
                let a = controller(&obs, steps);
                let s = env.step(&Action::Discrete(a));
                obs = s.observation.clone();
                steps += 1;
                if s.done() {
                    break;
                }
            }
            steps
        };
        let feedback = run(&|obs, _| usize::from(obs[2] + obs[3] > 0.0));
        let alternating = run(&|_, t| t % 2);
        assert!(feedback >= 400, "feedback controller lasted {feedback}");
        assert!(feedback > alternating);
    }

    #[test]
    fn truncates_at_step_limit() {
        let mut env = CartPole::with_max_steps(10);
        let mut obs = env.reset(3);
        for i in 0..10 {
            let a = usize::from(obs[2] + obs[3] > 0.0);
            let s = env.step(&Action::Discrete(a));
            obs = s.observation.clone();
            if i == 9 {
                assert!(s.truncated);
            } else {
                assert!(!s.done());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = CartPole::new();
        let mut b = CartPole::new();
        assert_eq!(a.reset(42), b.reset(42));
        for _ in 0..50 {
            let sa = a.step(&Action::Discrete(1));
            let sb = b.step(&Action::Discrete(1));
            assert_eq!(sa, sb);
            if sa.done() {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "finished episode")]
    fn step_after_done_panics() {
        let mut env = CartPole::new();
        env.reset(1);
        loop {
            if env.step(&Action::Discrete(1)).done() {
                break;
            }
        }
        let _ = env.step(&Action::Discrete(1));
    }

    #[test]
    fn soa_batch_is_bit_identical_to_scalar() {
        let lanes = 6;
        let mut soa = CartPoleBatch::new(lanes);
        let mut batch = StepBatch::new(lanes, 4);
        let seeds: Vec<u64> = (0..lanes as u64).map(|s| s * 977 + 11).collect();
        soa.reset_batch(&seeds, &mut batch);

        let mut scalars: Vec<CartPole> = (0..lanes).map(|_| CartPole::new()).collect();
        for (lane, env) in scalars.iter_mut().enumerate() {
            let obs = env.reset(seeds[lane]);
            assert_eq!(batch.obs_row(lane), obs.as_slice());
        }
        let mut done = vec![false; lanes];
        // A feedback policy on lane parity: some lanes survive long,
        // some tip early, exercising parked-lane skipping.
        for _ in 0..600 {
            let actions: Vec<Action> = (0..lanes)
                .map(|l| {
                    let o = batch.obs_row(l);
                    if l % 2 == 0 {
                        Action::Discrete(usize::from(o[2] + o[3] > 0.0))
                    } else {
                        Action::Discrete(1)
                    }
                })
                .collect();
            soa.step_batch(&actions, &mut batch);
            for (lane, env) in scalars.iter_mut().enumerate() {
                if done[lane] {
                    continue;
                }
                let s = env.step(&actions[lane]);
                for (a, b) in batch.obs_row(lane).iter().zip(&s.observation) {
                    assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} diverged");
                }
                assert_eq!(batch.terminated[lane], s.terminated);
                assert_eq!(batch.truncated[lane], s.truncated);
                done[lane] = s.done();
            }
            if batch.all_parked() {
                break;
            }
        }
        assert!(done.iter().any(|&d| d), "odd lanes tip early");
    }

    #[test]
    fn soa_batch_truncates_at_step_limit() {
        let mut soa = CartPoleBatch::with_max_steps(1, 3);
        let mut batch = StepBatch::new(1, 4);
        soa.reset_batch(&[3], &mut batch);
        for i in 0..3 {
            let a = usize::from(batch.obs_row(0)[2] + batch.obs_row(0)[3] > 0.0);
            soa.step_batch(&[Action::Discrete(a)], &mut batch);
            assert_eq!(batch.truncated[0], i == 2);
        }
        assert!(batch.all_parked());
    }
}
