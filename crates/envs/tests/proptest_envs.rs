//! Property tests: every environment is deterministic, bounded, and
//! episode-terminating for arbitrary action sequences.

use e3_envs::{Action, ActionSpace, EnvId};
use proptest::prelude::*;

/// Builds a valid action for a space from two raw values.
fn action_for(space: &ActionSpace, a: usize, x: f64) -> Action {
    match space {
        ActionSpace::Discrete(n) => Action::Discrete(a % n),
        ActionSpace::Continuous { low, high } => Action::Continuous(
            low.iter()
                .zip(high)
                .map(|(&lo, &hi)| lo + (x.clamp(0.0, 1.0)) * (hi - lo))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical seeds + identical actions ⇒ identical trajectories,
    /// for every environment in the suite.
    #[test]
    fn trajectories_are_deterministic(
        seed in any::<u64>(),
        actions in proptest::collection::vec((any::<usize>(), 0.0f64..1.0), 1..60),
    ) {
        for id in EnvId::ALL_WITH_ATARI {
            let mut env_a = id.make();
            let mut env_b = id.make();
            prop_assert_eq!(env_a.reset(seed), env_b.reset(seed));
            let space = env_a.action_space();
            for &(a, x) in &actions {
                let action = action_for(&space, a, x);
                let sa = env_a.step(&action);
                let sb = env_b.step(&action);
                prop_assert_eq!(&sa, &sb, "{} diverged", id);
                if sa.done() {
                    break;
                }
            }
        }
    }

    /// Observations and rewards stay finite, and episodes end within
    /// the declared step limit.
    #[test]
    fn episodes_are_bounded_and_finite(
        seed in any::<u64>(),
        a in any::<usize>(),
        x in 0.0f64..1.0,
    ) {
        for id in EnvId::ALL_WITH_ATARI {
            let mut env = id.make();
            let obs = env.reset(seed);
            prop_assert_eq!(obs.len(), id.observation_size());
            let space = env.action_space();
            let limit = env.max_episode_steps();
            let mut steps = 0usize;
            loop {
                let step = env.step(&action_for(&space, a.wrapping_add(steps), x));
                steps += 1;
                prop_assert!(step.reward.is_finite(), "{} reward", id);
                prop_assert!(step.observation.iter().all(|v| v.is_finite()), "{} obs", id);
                if step.done() {
                    break;
                }
                prop_assert!(steps <= limit, "{} exceeded its step limit", id);
            }
            prop_assert!(steps <= limit);
        }
    }
}
