//! Property tests for the batched environment API.
//!
//! [`EnvId::make_batch`] — whether it returns a hand-vectorized SoA
//! port (CartPole, LunarLander) or the generic `ScalarBatch` adapter —
//! must reproduce `lanes` independent scalar environments **bit for
//! bit**: same reset observations, same per-step observations, rewards
//! and done flags per lane, with early-finished lanes parked (reward
//! `0.0`, observation and flags frozen) while the rest keep stepping.

use e3_envs::{Action, ActionSpace, EnvId, StepBatch};
use proptest::prelude::*;

/// Builds a valid action for a space from two raw values.
fn action_for(space: &ActionSpace, a: usize, x: f64) -> Action {
    match space {
        ActionSpace::Discrete(n) => Action::Discrete(a % n),
        ActionSpace::Continuous { low, high } => Action::Continuous(
            low.iter()
                .zip(high)
                .map(|(&lo, &hi)| lo + (x.clamp(0.0, 1.0)) * (hi - lo))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every suite environment's batch, stepped with arbitrary
    /// per-lane action sequences and per-lane seeds, matches `lanes`
    /// independent scalar environments bitwise — including the parking
    /// protocol once lanes finish at different times.
    #[test]
    fn batched_suite_matches_scalar_lanes(
        seed in any::<u64>(),
        lanes in 1usize..5,
        actions in proptest::collection::vec((any::<usize>(), 0.0f64..1.0), 1..40),
    ) {
        for id in EnvId::ALL {
            let mut batch_env = id.make_batch(lanes);
            let mut sb = StepBatch::new(lanes, batch_env.observation_size());
            let seeds: Vec<u64> = (0..lanes as u64).map(|i| seed.wrapping_add(i)).collect();
            batch_env.reset_batch(&seeds, &mut sb);
            let mut scalars: Vec<_> = (0..lanes).map(|_| id.make()).collect();
            let space = batch_env.action_space();
            prop_assert_eq!(batch_env.lanes(), lanes);
            prop_assert_eq!(batch_env.name(), id.make().name(), "{} name propagates", id);
            for (b, env) in scalars.iter_mut().enumerate() {
                let obs = env.reset(seeds[b]);
                prop_assert_eq!(sb.obs_row(b), &obs[..], "{} lane {} reset obs", id, b);
                prop_assert!(sb.active[b], "{} lane {} starts active", id, b);
            }
            let mut done = vec![false; lanes];
            for (step_idx, &(a, x)) in actions.iter().enumerate() {
                if sb.all_parked() {
                    break;
                }
                let acts: Vec<Action> = (0..lanes)
                    .map(|b| action_for(&space, a.wrapping_add(b * 7 + step_idx), x))
                    .collect();
                let frozen: Vec<Vec<f64>> = (0..lanes)
                    .map(|b| sb.obs_row(b).to_vec())
                    .collect();
                batch_env.step_batch(&acts, &mut sb);
                for b in 0..lanes {
                    if done[b] {
                        // Parked lane: zero reward, frozen observation
                        // and sticky done flags, never reactivated.
                        prop_assert_eq!(
                            sb.rewards[b].to_bits(),
                            0.0f64.to_bits(),
                            "{} parked lane {} reward", id, b
                        );
                        prop_assert_eq!(sb.obs_row(b), &frozen[b][..]);
                        prop_assert!(!sb.active[b]);
                        prop_assert!(sb.terminated[b] || sb.truncated[b]);
                        continue;
                    }
                    let s = scalars[b].step(&acts[b]);
                    prop_assert_eq!(
                        sb.obs_row(b), &s.observation[..],
                        "{} lane {} obs at step {}", id, b, step_idx
                    );
                    prop_assert_eq!(
                        sb.rewards[b].to_bits(), s.reward.to_bits(),
                        "{} lane {} reward at step {}", id, b, step_idx
                    );
                    prop_assert_eq!(sb.terminated[b], s.terminated);
                    prop_assert_eq!(sb.truncated[b], s.truncated);
                    done[b] = s.terminated || s.truncated;
                    prop_assert_eq!(sb.active[b], !done[b]);
                }
            }
        }
    }

    /// `reset_batch` after a (partially) finished batch reproduces a
    /// fresh batch exactly: reseeded observations, all lanes active,
    /// flags and rewards cleared.
    #[test]
    fn reset_batch_reactivates_every_lane(
        seed in any::<u64>(),
        lanes in 1usize..4,
        warmup in 1usize..30,
    ) {
        for id in EnvId::ALL {
            let mut batch_env = id.make_batch(lanes);
            let mut sb = StepBatch::new(lanes, batch_env.observation_size());
            let seeds: Vec<u64> = (0..lanes as u64).map(|i| seed.wrapping_add(i)).collect();
            batch_env.reset_batch(&seeds, &mut sb);
            let space = batch_env.action_space();
            for step_idx in 0..warmup {
                if sb.all_parked() {
                    break;
                }
                let acts: Vec<Action> = (0..lanes)
                    .map(|b| action_for(&space, b + step_idx, 0.4))
                    .collect();
                batch_env.step_batch(&acts, &mut sb);
            }
            let reseeds: Vec<u64> = seeds.iter().map(|s| s.wrapping_mul(31)).collect();
            batch_env.reset_batch(&reseeds, &mut sb);
            let mut fresh_env = id.make_batch(lanes);
            let mut fresh = StepBatch::new(lanes, fresh_env.observation_size());
            fresh_env.reset_batch(&reseeds, &mut fresh);
            for b in 0..lanes {
                prop_assert_eq!(sb.obs_row(b), fresh.obs_row(b), "{} lane {}", id, b);
                prop_assert!(sb.active[b]);
                prop_assert!(!sb.terminated[b] && !sb.truncated[b]);
                prop_assert_eq!(sb.rewards[b].to_bits(), 0.0f64.to_bits());
            }
        }
    }
}
