//! The scenario-distribution compatibility and determinism contract.
//!
//! Two families of guarantees:
//!
//! 1. **Fixture parity** — a default config (K = 1, default
//!    [`e3_envs::ScenarioParams`]) reproduces the pre-scenario
//!    platform bit for bit. The constants below were captured from the
//!    commit *before* the scenario refactor (population 24, seed 42,
//!    five stepped generations) and must never drift: they are the
//!    proof that the vanilla gate really takes the legacy path.
//! 2. **Scenario determinism** — multi-scenario training is a pure
//!    function of the config: sampled parameters and final
//!    populations are bit-identical across thread counts (1/4/8) and
//!    across the scalar and batched kernels, and each island of an
//!    archipelago trains on its own deterministic distribution.

use e3_envs::{EnvId, ScenarioDistribution};
use e3_islands::island_seed;
use e3_islands::scheduler::population_fingerprint;
use e3_platform::telemetry::NullCollector;
use e3_platform::{
    BackendKind, E3Config, E3Platform, FitnessAggregation, ScenarioConfig, ScenarioSpec,
};
use proptest::prelude::*;

/// Pre-refactor golden fixtures: `(env, population fingerprint,
/// per-generation best-fitness bits)` for population 24, seed 42,
/// five generations. Captured on the commit before the scenario
/// refactor; identical across E3-CPU/E3-INAX and threads 1/4 there.
const GOLDEN: &[(EnvId, u64, [u64; 5])] = &[
    (
        EnvId::CartPole,
        0xc976_7a05_eaca_6125,
        [
            0x406c_4000_0000_0000,
            0x407f_4000_0000_0000,
            0x407f_4000_0000_0000,
            0x407f_4000_0000_0000,
            0x407f_4000_0000_0000,
        ],
    ),
    (
        EnvId::Pendulum,
        0x6ab9_57cf_a69f_90d1,
        [
            0xc08b_fc73_e4d4_825e,
            0xc08e_56b2_dd48_53b1,
            0xc08e_560c_08e7_8601,
            0xc093_a02c_5a4c_6ec1,
            0xc08c_3ed7_8450_ce1e,
        ],
    ),
];

fn fixture_run(env: EnvId, backend: BackendKind, threads: usize) -> (u64, Vec<u64>) {
    let config = E3Config::builder(env)
        .population_size(24)
        .max_generations(5)
        .threads(threads)
        .build();
    let mut platform = E3Platform::new(config, backend, 42);
    let mut bests = Vec::new();
    for _ in 0..5 {
        let best = platform
            .step_with(&mut NullCollector)
            .expect("fixture step succeeds");
        bests.push(best.to_bits());
    }
    (population_fingerprint(platform.population()), bests)
}

#[test]
fn default_config_matches_pre_scenario_fixtures() {
    for &(env, fingerprint, bests) in GOLDEN {
        for backend in [BackendKind::Cpu, BackendKind::Inax] {
            for threads in [1usize, 4] {
                let (pop, run_bests) = fixture_run(env, backend, threads);
                assert_eq!(
                    pop, fingerprint,
                    "{env:?}/{backend:?}@{threads} population diverged from pre-scenario fixture"
                );
                assert_eq!(
                    run_bests,
                    bests.to_vec(),
                    "{env:?}/{backend:?}@{threads} fitness trajectory diverged"
                );
            }
        }
    }
}

fn scenario_config(env: EnvId, threads: usize, k: usize) -> E3Config {
    E3Config::builder(env)
        .population_size(14)
        .max_generations(3)
        .target_fitness(f64::INFINITY)
        .threads(threads)
        .scenario(
            ScenarioConfig::default()
                .train(ScenarioDistribution::moderate())
                .scenarios_per_eval(k),
        )
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sampled scenario parameters are a pure function of the seeding
    /// coordinates: identical for any thread count and identical when
    /// resolved twice.
    #[test]
    fn sampled_scenario_params_are_reproducible(
        run_seed in 0u64..1000,
        generation in 0u64..50,
        k in 1usize..8,
        population in 1usize..40,
    ) {
        let config = ScenarioConfig::default()
            .train(ScenarioDistribution::moderate())
            .scenarios_per_eval(k);
        let a = ScenarioSpec::for_generation(&config, run_seed, generation, population);
        let b = ScenarioSpec::for_generation(&config, run_seed, generation, population);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.params.len(), k);
        prop_assert_eq!(a.episode_seeds.len(), k * population);
    }

    /// Final populations of a multi-scenario training run are
    /// bit-identical across thread counts and backends (the batched
    /// software kernel, threaded software kernel, and INAX wave loop
    /// all reduce in genome order).
    #[test]
    fn scenario_populations_are_bit_identical_across_threads(
        seed in 0u64..100,
        k in 2usize..5,
    ) {
        let reference = {
            let mut p = E3Platform::new(
                scenario_config(EnvId::CartPole, 1, k),
                BackendKind::Cpu,
                seed,
            );
            for _ in 0..3 {
                p.step_with(&mut NullCollector).unwrap();
            }
            population_fingerprint(p.population())
        };
        for threads in [4usize, 8] {
            let mut p = E3Platform::new(
                scenario_config(EnvId::CartPole, threads, k),
                BackendKind::Cpu,
                seed,
            );
            for _ in 0..3 {
                p.step_with(&mut NullCollector).unwrap();
            }
            prop_assert_eq!(
                population_fingerprint(p.population()),
                reference,
                "threads={} diverged", threads
            );
        }
        let mut inax = E3Platform::new(
            scenario_config(EnvId::CartPole, 1, k),
            BackendKind::Inax,
            seed,
        );
        for _ in 0..3 {
            inax.step_with(&mut NullCollector).unwrap();
        }
        prop_assert_eq!(
            population_fingerprint(inax.population()),
            reference,
            "INAX diverged from CPU"
        );
    }
}

#[test]
fn cvar_aggregation_is_deterministic_and_differs_from_mean() {
    let mean_cfg = scenario_config(EnvId::CartPole, 1, 4);
    let mut cvar_cfg = mean_cfg.clone();
    cvar_cfg.scenario = cvar_cfg
        .scenario
        .aggregation(FitnessAggregation::CVaR { alpha: 0.25 });
    let run = |config: E3Config| {
        let mut p = E3Platform::new(config, BackendKind::Cpu, 9);
        for _ in 0..3 {
            p.step_with(&mut NullCollector).unwrap();
        }
        population_fingerprint(p.population())
    };
    let mean_a = run(mean_cfg.clone());
    let mean_b = run(mean_cfg);
    assert_eq!(mean_a, mean_b);
    let cvar_a = run(cvar_cfg.clone());
    let cvar_b = run(cvar_cfg);
    assert_eq!(cvar_a, cvar_b);
    assert_ne!(mean_a, cvar_a, "CVaR must select differently from mean");
}

/// Each island trains on its own deterministic scenario stream: the
/// per-island run seed ([`island_seed`]) feeds the scenario sampler,
/// so different islands face different worlds while re-running an
/// island reproduces its worlds exactly.
#[test]
fn islands_draw_distinct_deterministic_scenario_distributions() {
    let config = ScenarioConfig::default()
        .train(ScenarioDistribution::moderate())
        .scenarios_per_eval(4);
    let base_seed = 42;
    let mut specs = Vec::new();
    for island in 0..3 {
        let seed = island_seed(base_seed, island);
        let spec = ScenarioSpec::for_generation(&config, seed, 0, 10);
        let again = ScenarioSpec::for_generation(&config, seed, 0, 10);
        assert_eq!(
            spec, again,
            "island {island} scenarios must be reproducible"
        );
        specs.push(spec);
    }
    assert_ne!(specs[0].params, specs[1].params);
    assert_ne!(specs[1].params, specs[2].params);
    assert_ne!(specs[0].params, specs[2].params);
}
