//! Kill-and-resume: an archipelago daemon killed at an arbitrary
//! point — including islands parked mid-migration-interval — must
//! resume from its per-island checkpoints and finish bit-identically
//! to a never-interrupted run.

use e3_islands::{run_islands, ArchipelagoOutcome, IslandsConfig, RunOptions, SharedCollector};
use e3_platform::{CheckpointPolicy, E3Config, RunError};
use e3_telemetry::{Collector, TelemetryError, TelemetryEvent};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn base() -> E3Config {
    E3Config::builder(e3_envs::EnvId::CartPole)
        .population_size(12)
        .max_generations(9)
        .target_fitness(f64::INFINITY)
        .build()
}

fn islands_config(checkpoint: Option<CheckpointPolicy>) -> IslandsConfig {
    let mut builder = IslandsConfig::builder(base())
        .islands(3)
        .migration_interval(3)
        .emigrants(2)
        .seed(11);
    if let Some(policy) = checkpoint {
        builder = builder.checkpoint(policy);
    }
    builder.build()
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("e3-islands-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn signature(outcome: &ArchipelagoOutcome) -> Vec<(u64, f64, usize)> {
    outcome
        .islands
        .iter()
        .map(|i| (i.population_fingerprint, i.best_fitness, i.generations_run))
        .collect()
}

/// Trips a stop flag after `limit` island records — a deterministic
/// stand-in for `kill -9` at an arbitrary point of progress. With a
/// migration interval of 3 and a limit of 1–2 generations the stop
/// regularly lands with islands parked mid-interval awaiting packets.
#[derive(Clone)]
struct KillSwitch {
    seen: Arc<AtomicUsize>,
    limit: usize,
    stop: Arc<AtomicBool>,
}

impl Collector for KillSwitch {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        if matches!(event, TelemetryEvent::Island(_))
            && self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.limit
        {
            self.stop.store(true, Ordering::Relaxed);
        }
        Ok(())
    }
}

#[test]
fn repeatedly_killed_run_finishes_bit_identical_to_uninterrupted() {
    let reference = run_islands(
        islands_config(None),
        &RunOptions::with_drivers(2),
        &SharedCollector::null(),
    )
    .unwrap();
    assert!(reference.completed);
    assert!(reference.migrations > 0, "boundaries must fire");

    let dir = scratch_dir("kill-resume");
    let policy = CheckpointPolicy::new(dir.to_string_lossy().to_string()).every(1);
    let config = || islands_config(Some(policy.clone()));

    let mut final_outcome = None;
    for round in 0..32 {
        let kill = KillSwitch {
            seen: Arc::new(AtomicUsize::new(0)),
            // Let a little more through each round so every kill point
            // (mid-interval, at a boundary, after retirement) is hit.
            limit: 1 + round % 3,
            stop: Arc::new(AtomicBool::new(false)),
        };
        let opts = RunOptions {
            drivers: 2,
            pickup: e3_islands::Pickup::Fifo,
            stop: Some(Arc::clone(&kill.stop)),
        };
        let outcome = run_islands(config(), &opts, &SharedCollector::new(kill.clone())).unwrap();
        if outcome.completed {
            final_outcome = Some(outcome);
            break;
        }
    }
    let resumed = final_outcome.expect("32 rounds of partial progress must finish a 9-gen run");
    assert_eq!(
        signature(&resumed),
        signature(&reference),
        "kill/resume cycles changed the result"
    );
    assert_eq!(
        resumed.best.as_ref().map(|(i, b)| (*i, b.fitness)),
        reference.best.as_ref().map(|(i, b)| (*i, b.fitness)),
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resuming_a_finished_archipelago_is_a_no_op_with_the_same_result() {
    let dir = scratch_dir("finished-resume");
    let policy = CheckpointPolicy::new(dir.to_string_lossy().to_string()).every(1);
    let first = run_islands(
        islands_config(Some(policy.clone())),
        &RunOptions::with_drivers(2),
        &SharedCollector::null(),
    )
    .unwrap();
    assert!(first.completed);
    let again = run_islands(
        islands_config(Some(policy)),
        &RunOptions::with_drivers(2),
        &SharedCollector::null(),
    )
    .unwrap();
    assert!(again.completed);
    assert_eq!(signature(&again), signature(&first));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_directory_is_a_typed_store_error() {
    let dir = scratch_dir("mismatch");
    let policy = CheckpointPolicy::new(dir.to_string_lossy().to_string()).every(1);
    run_islands(
        islands_config(Some(policy.clone())),
        &RunOptions::with_drivers(1),
        &SharedCollector::null(),
    )
    .unwrap();
    // Same directory, different archipelago seed: every island's
    // fingerprint changes, and the namespace registry must refuse.
    let mut other = islands_config(Some(policy));
    other.seed = 12;
    let err = e3_islands::Archipelago::new(other).expect_err("seed mismatch must be typed");
    assert!(matches!(err, RunError::Store(_)), "got {err:?}");
    std::fs::remove_dir_all(&dir).ok();
}
