//! The archipelago determinism contract, property-tested.
//!
//! Final populations must be bit-identical for a fixed
//! [`IslandsConfig`] across every wall-clock knob: worker-pool width,
//! driver-thread count, and queue discipline (which together decide
//! how evolve and evaluate phases of different islands interleave).

use e3_envs::EnvId;
use e3_islands::{run_islands, IslandsConfig, Pickup, RunOptions, SharedCollector, Topology};
use e3_platform::E3Config;
use proptest::prelude::*;

fn config(
    threads: usize,
    islands: usize,
    interval: usize,
    topology: Topology,
    seed: u64,
) -> IslandsConfig {
    let base = E3Config::builder(EnvId::CartPole)
        .population_size(12)
        .max_generations(5)
        .target_fitness(f64::INFINITY)
        .threads(threads)
        .build();
    IslandsConfig::builder(base)
        .islands(islands)
        .topology(topology)
        .migration_interval(interval)
        .emigrants(1)
        .seed(seed)
        .build()
}

fn signature(outcome: &e3_islands::ArchipelagoOutcome) -> (Vec<u64>, Vec<f64>, usize) {
    (
        outcome
            .islands
            .iter()
            .map(|i| i.population_fingerprint)
            .collect(),
        outcome.islands.iter().map(|i| i.best_fitness).collect(),
        outcome.migrations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sweeps the archipelago shape AND the execution knobs: the
    /// serial reference (1 worker, 1 driver, FIFO) must match a run
    /// with arbitrary workers, drivers, and pickup order bit for bit.
    #[test]
    fn results_are_a_pure_function_of_the_config(
        islands in 1usize..=3,
        interval in 1usize..=3,
        ring in any::<bool>(),
        seed in 0u64..1000,
        threads in 1usize..=4,
        drivers in 1usize..=4,
        lifo in any::<bool>(),
    ) {
        let topology = if ring { Topology::Ring } else { Topology::FullyConnected };
        let reference = run_islands(
            config(1, islands, interval, topology, seed),
            &RunOptions::with_drivers(1),
            &SharedCollector::null(),
        )
        .unwrap();
        let opts = RunOptions {
            drivers,
            pickup: if lifo { Pickup::Lifo } else { Pickup::Fifo },
            stop: None,
        };
        let outcome = run_islands(
            config(threads, islands, interval, topology, seed),
            &opts,
            &SharedCollector::null(),
        )
        .unwrap();
        prop_assert!(reference.completed && outcome.completed);
        prop_assert_eq!(signature(&outcome), signature(&reference));
    }
}

/// The adversarial interleaving, deterministic and always run: LIFO
/// pickup with more drivers than islands and a wide pool, against the
/// fully serial reference.
#[test]
fn lifo_oversubscribed_matches_serial_reference() {
    for seed in [0u64, 7, 42] {
        let reference = run_islands(
            config(1, 3, 2, Topology::Ring, seed),
            &RunOptions::with_drivers(1),
            &SharedCollector::null(),
        )
        .unwrap();
        let outcome = run_islands(
            config(4, 3, 2, Topology::Ring, seed),
            &RunOptions {
                drivers: 4,
                pickup: Pickup::Lifo,
                stop: None,
            },
            &SharedCollector::null(),
        )
        .unwrap();
        assert_eq!(
            signature(&outcome),
            signature(&reference),
            "seed {seed} diverged"
        );
    }
}
