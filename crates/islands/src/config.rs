//! Archipelago configuration: how many islands, how they are wired,
//! and when they exchange individuals.
//!
//! Everything in [`IslandsConfig`] is part of the determinism
//! contract: two runs with equal configs produce bit-identical final
//! populations on every island, regardless of worker count, driver
//! count, or scheduler interleaving. Knobs that must *not* affect
//! results (drivers, pickup order, stop flags) live in
//! [`crate::scheduler::RunOptions`] instead.

use e3_platform::{BackendKind, E3Config};
use e3_store::CheckpointPolicy;
use serde::{Deserialize, Serialize};

/// How emigrants flow between islands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Each island receives from its predecessor `(i - 1) mod N` —
    /// one source per island, slow diffusion around the ring.
    Ring,
    /// Each island receives from every other island.
    FullyConnected,
}

impl Topology {
    /// The islands that send emigrants **to** `island`, in ascending
    /// order (the merge order of the deterministic integration).
    /// Empty for a single-island archipelago: an island never sources
    /// from itself.
    pub fn sources(self, island: usize, islands: usize) -> Vec<usize> {
        assert!(island < islands, "island index out of range");
        if islands <= 1 {
            return Vec::new();
        }
        match self {
            Topology::Ring => vec![(island + islands - 1) % islands],
            Topology::FullyConnected => (0..islands).filter(|&s| s != island).collect(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Topology::Ring => "ring",
            Topology::FullyConnected => "fully-connected",
        }
    }
}

/// Derives island `i`'s base seed from the archipelago seed.
///
/// Island 0 keeps the archipelago seed unchanged, so a single-island
/// run is bit-identical to a plain [`e3_platform::E3Platform`] run of
/// the same config — the parity gate `repro islands` enforces.
/// Other islands get decorrelated streams via the same SplitMix64
/// mixing the executor uses for per-individual RNG.
pub fn island_seed(base_seed: u64, island: usize) -> u64 {
    if island == 0 {
        return base_seed;
    }
    e3_exec::rng::stream_seed(base_seed, 0x15_1a4d, island as u64)
}

/// The checkpoint namespace (subdirectory) of one island.
pub fn namespace(island: usize) -> String {
    format!("island-{island:04}")
}

/// Configuration of one archipelago run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandsConfig {
    /// The per-island platform configuration. Its `checkpoint` field
    /// must be `None` — island checkpointing is configured through
    /// [`IslandsConfig::checkpoint`], which namespaces a shared parent
    /// directory per island.
    pub base: E3Config,
    /// Evaluation backend every island runs on.
    pub backend: BackendKind,
    /// Number of islands (≥ 1).
    pub islands: usize,
    /// Migration topology.
    pub topology: Topology,
    /// Exchange individuals every `K` generations: the boundary after
    /// evaluating generation `g` is a migration boundary when
    /// `(g + 1) % K == 0`.
    pub migration_interval: usize,
    /// Top-`M` individuals each island publishes at a boundary.
    pub emigrants: usize,
    /// Archipelago seed; island `i` runs on [`island_seed`]`(seed, i)`.
    pub seed: u64,
    /// Shared-parent checkpoint policy: `dir` is the archipelago root
    /// and each island checkpoints into `dir/island-NNNN/` with the
    /// policy's `every`/`keep_last`. `None` disables persistence.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl IslandsConfig {
    /// Starts a builder around a per-island platform config.
    pub fn builder(base: E3Config) -> IslandsConfigBuilder {
        IslandsConfigBuilder {
            config: IslandsConfig {
                base,
                backend: BackendKind::Cpu,
                islands: 4,
                topology: Topology::Ring,
                migration_interval: 5,
                emigrants: 2,
                seed: 42,
                checkpoint: None,
            },
        }
    }

    /// The sources of one island under this config's topology.
    pub fn sources(&self, island: usize) -> Vec<usize> {
        self.topology.sources(island, self.islands)
    }

    /// Whether the boundary after evaluating generation `g` is a
    /// migration boundary (only meaningful with more than one island).
    pub fn is_boundary(&self, generation: usize) -> bool {
        self.islands > 1 && (generation + 1).is_multiple_of(self.migration_interval.max(1))
    }

    /// The platform config island `island` runs: the base config with
    /// the checkpoint policy re-pointed at the island's namespace
    /// subdirectory.
    pub fn island_config(&self, island: usize) -> E3Config {
        assert!(island < self.islands, "island index out of range");
        let mut config = self.base.clone();
        config.checkpoint = self.checkpoint.as_ref().map(|policy| {
            let dir = format!("{}/{}", policy.dir, namespace(island));
            CheckpointPolicy::new(dir)
                .every(policy.every)
                .keep_last(policy.keep_last)
        });
        config
    }
}

/// Builder for [`IslandsConfig`].
#[derive(Debug, Clone)]
pub struct IslandsConfigBuilder {
    config: IslandsConfig,
}

impl IslandsConfigBuilder {
    /// Sets the evaluation backend (default: CPU).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Sets the number of islands (default: 4).
    pub fn islands(mut self, islands: usize) -> Self {
        self.config.islands = islands;
        self
    }

    /// Sets the migration topology (default: ring).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.config.topology = topology;
        self
    }

    /// Sets the migration interval `K` (default: 5).
    pub fn migration_interval(mut self, k: usize) -> Self {
        self.config.migration_interval = k;
        self
    }

    /// Sets the emigrant count `M` per boundary (default: 2).
    pub fn emigrants(mut self, m: usize) -> Self {
        self.config.emigrants = m;
        self
    }

    /// Sets the archipelago seed (default: 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Installs a shared-parent checkpoint policy (see
    /// [`IslandsConfig::checkpoint`]).
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.config.checkpoint = Some(policy);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics when the config cannot uphold the determinism contract:
    /// zero islands, a zero migration interval, a base config that
    /// carries its own checkpoint policy, or a worst-case immigrant
    /// wave (`M × max-sources`) that outnumbers the population.
    pub fn build(self) -> IslandsConfig {
        let c = self.config;
        assert!(c.islands >= 1, "need at least one island");
        assert!(c.migration_interval >= 1, "migration interval must be ≥ 1");
        assert!(
            c.base.checkpoint.is_none(),
            "configure island checkpointing via IslandsConfig::checkpoint, \
             not the base E3Config (islands namespace a shared parent dir)"
        );
        let max_sources = (0..c.islands)
            .map(|i| c.sources(i).len())
            .max()
            .unwrap_or(0);
        assert!(
            c.emigrants * max_sources < c.base.neat.population_size,
            "an immigrant wave ({} emigrants × {} sources) must be smaller \
             than the population ({})",
            c.emigrants,
            max_sources,
            c.base.neat.population_size
        );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_envs::EnvId;

    fn base() -> E3Config {
        E3Config::builder(EnvId::CartPole)
            .population_size(20)
            .max_generations(4)
            .build()
    }

    #[test]
    fn ring_sources_are_the_predecessor() {
        assert_eq!(Topology::Ring.sources(0, 4), vec![3]);
        assert_eq!(Topology::Ring.sources(2, 4), vec![1]);
        assert!(Topology::Ring.sources(0, 1).is_empty());
    }

    #[test]
    fn fully_connected_sources_are_everyone_else_ascending() {
        assert_eq!(Topology::FullyConnected.sources(1, 4), vec![0, 2, 3]);
        assert!(Topology::FullyConnected.sources(0, 1).is_empty());
    }

    #[test]
    fn island_zero_keeps_the_archipelago_seed() {
        assert_eq!(island_seed(42, 0), 42);
        assert_ne!(island_seed(42, 1), 42);
        assert_ne!(island_seed(42, 1), island_seed(42, 2));
        assert_ne!(island_seed(42, 1), island_seed(43, 1));
    }

    #[test]
    fn boundaries_follow_the_interval() {
        let config = IslandsConfig::builder(base())
            .islands(2)
            .migration_interval(3)
            .build();
        let boundaries: Vec<usize> = (0..10).filter(|&g| config.is_boundary(g)).collect();
        assert_eq!(boundaries, vec![2, 5, 8]);
        let solo = IslandsConfig::builder(base()).islands(1).build();
        assert!((0..10).all(|g| !solo.is_boundary(g)));
    }

    #[test]
    fn island_configs_namespace_the_checkpoint_dir() {
        let config = IslandsConfig::builder(base())
            .islands(2)
            .checkpoint(CheckpointPolicy::new("/tmp/archi").every(2).keep_last(3))
            .build();
        let c1 = config.island_config(1);
        let policy = c1.checkpoint.expect("namespaced policy");
        assert_eq!(policy.dir, "/tmp/archi/island-0001");
        assert_eq!(policy.every, 2);
        assert_eq!(policy.keep_last, 3);
        assert!(config.island_config(0).checkpoint.is_some());
    }

    #[test]
    #[should_panic(expected = "immigrant wave")]
    fn oversized_immigrant_waves_are_rejected() {
        let _ = IslandsConfig::builder(base())
            .islands(4)
            .topology(Topology::FullyConnected)
            .emigrants(7)
            .build();
    }
}
