//! Migration packets and the generation-indexed exchange.
//!
//! Migration is **barrier-free but generation-indexed**: after
//! evaluating generation `g`, an island at a migration boundary
//! *publishes* its top-`M` emigrants keyed `(island, g)`, then
//! *consumes* the packets keyed `(source, g)` from each of its
//! sources — packets from the *same* boundary index, whatever
//! wall-clock order the islands reached it in. Publish always precedes
//! consume, so the slowest island at a boundary can always run: its
//! sources are at the same boundary or beyond and have therefore
//! already published. That ordering makes the archipelago both
//! deadlock-free and deterministic — which packets merge into which
//! population depends only on the migration schedule, never on the
//! scheduler interleaving.
//!
//! An island that finishes early (target fitness reached, or the
//! generation cap) *retires*: it marks the highest generation it
//! evaluated, and consumers treat any later boundary as "no
//! contribution from this source" instead of waiting forever.
//!
//! With persistence configured, every published packet is also written
//! as a JSON sidecar in the source island's checkpoint namespace
//! (`mig-<generation>.json`), and retirement as `retired.json`. A
//! killed daemon reloads them on startup so islands that must replay a
//! boundary can consume packets whose sources have long moved past it.

use e3_neat::population::EvaluatedGenome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The emigrants one island published at one migration boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPacket {
    /// Island that published the packet.
    pub source: usize,
    /// Generation whose evaluation produced the emigrants (the
    /// boundary index).
    pub generation: usize,
    /// Top-`M` individuals, best first (fitness-descending,
    /// index-ascending tiebreak).
    pub emigrants: Vec<EvaluatedGenome>,
}

impl MigrationPacket {
    /// Sidecar file name for this packet inside the source island's
    /// checkpoint namespace.
    pub fn sidecar_name(&self) -> String {
        packet_sidecar_name(self.generation)
    }
}

/// Sidecar file name of the packet a source published at `generation`.
pub fn packet_sidecar_name(generation: usize) -> String {
    format!("mig-{generation:08}.json")
}

/// Sidecar file name of an island's retirement marker.
pub const RETIREMENT_SIDECAR: &str = "retired.json";

/// Persistent form of a retirement: the island will never publish a
/// packet for any boundary past `last_generation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Retirement {
    /// The retired island.
    pub island: usize,
    /// Highest generation the island evaluated before retiring.
    pub last_generation: usize,
}

/// In-memory packet board: published packets and retirements, keyed by
/// `(source, generation)`. Purely a data structure — locking and
/// waiter bookkeeping belong to the scheduler that owns it.
#[derive(Debug, Default)]
pub struct Exchange {
    packets: BTreeMap<(usize, usize), MigrationPacket>,
    retired: BTreeMap<usize, usize>,
}

/// What a consumer finds when asking for a source's packet at a
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketState {
    /// The packet is available.
    Ready(MigrationPacket),
    /// The source retired before reaching this boundary; it
    /// contributes nothing, now or ever.
    Retired,
    /// The source has not reached this boundary yet.
    Pending,
}

impl Exchange {
    /// Creates an empty exchange.
    pub fn new() -> Self {
        Exchange::default()
    }

    /// Publishes a packet. Republishing the same key (an island
    /// replaying a boundary after crash-resume) is idempotent — the
    /// replayed packet is bit-identical by the determinism contract,
    /// so the first copy is kept.
    pub fn publish(&mut self, packet: MigrationPacket) {
        self.packets
            .entry((packet.source, packet.generation))
            .or_insert(packet);
    }

    /// Marks `island` retired after evaluating `last_generation`.
    /// Keeps the highest marker on repeated calls.
    pub fn retire(&mut self, island: usize, last_generation: usize) {
        self.retired
            .entry(island)
            .and_modify(|g| *g = (*g).max(last_generation))
            .or_insert(last_generation);
    }

    /// The state of `source`'s packet for boundary `generation`.
    pub fn packet(&self, source: usize, generation: usize) -> PacketState {
        if let Some(packet) = self.packets.get(&(source, generation)) {
            return PacketState::Ready(packet.clone());
        }
        match self.retired.get(&source) {
            Some(&last) if last < generation => PacketState::Retired,
            _ => PacketState::Pending,
        }
    }

    /// Collects the immigrant wave for one island at one boundary:
    /// every source's packet, sources in ascending order, retired
    /// sources skipped. Returns `None` (and nothing else) if any
    /// source is still pending — collection is all-or-nothing so the
    /// merge is a single deterministic `integrate_immigrants` call.
    pub fn try_collect(
        &self,
        sources: &[usize],
        generation: usize,
    ) -> Option<Vec<MigrationPacket>> {
        let mut wave = Vec::with_capacity(sources.len());
        for &source in sources {
            match self.packet(source, generation) {
                PacketState::Ready(packet) => wave.push(packet),
                PacketState::Retired => {}
                PacketState::Pending => return None,
            }
        }
        Some(wave)
    }

    /// The sources in `sources` whose packet for `generation` is still
    /// pending (what a parked island is waiting on).
    pub fn pending_sources(&self, sources: &[usize], generation: usize) -> Vec<usize> {
        sources
            .iter()
            .copied()
            .filter(|&s| self.packet(s, generation) == PacketState::Pending)
            .collect()
    }

    /// Number of packets on the board.
    pub fn packets_published(&self) -> usize {
        self.packets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{Genome, InnovationTracker, NeatConfig};
    use rand::SeedableRng;

    fn packet(source: usize, generation: usize) -> MigrationPacket {
        let config = NeatConfig::builder(2, 1).population_size(4).build();
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let genome = Genome::initial(&config, &mut tracker, &mut rng);
        MigrationPacket {
            source,
            generation,
            emigrants: vec![EvaluatedGenome {
                genome,
                fitness: 1.0,
            }],
        }
    }

    #[test]
    fn packets_resolve_by_source_and_generation() {
        let mut exchange = Exchange::new();
        exchange.publish(packet(0, 4));
        assert!(matches!(exchange.packet(0, 4), PacketState::Ready(_)));
        assert_eq!(exchange.packet(0, 9), PacketState::Pending);
        assert_eq!(exchange.packet(1, 4), PacketState::Pending);
    }

    #[test]
    fn retirement_unblocks_later_boundaries_only() {
        let mut exchange = Exchange::new();
        exchange.publish(packet(2, 4));
        exchange.retire(2, 4);
        assert!(matches!(exchange.packet(2, 4), PacketState::Ready(_)));
        assert_eq!(exchange.packet(2, 9), PacketState::Retired);
    }

    #[test]
    fn collection_is_all_or_nothing() {
        let mut exchange = Exchange::new();
        exchange.publish(packet(0, 4));
        assert_eq!(exchange.try_collect(&[0, 1], 4), None);
        assert_eq!(exchange.pending_sources(&[0, 1], 4), vec![1]);
        exchange.retire(1, 2);
        let wave = exchange
            .try_collect(&[0, 1], 4)
            .expect("1 retired, 0 ready");
        assert_eq!(wave.len(), 1);
        assert_eq!(wave[0].source, 0);
    }

    #[test]
    fn republishing_is_idempotent() {
        let mut exchange = Exchange::new();
        exchange.publish(packet(0, 4));
        let mut replay = packet(0, 4);
        replay.emigrants.clear();
        exchange.publish(replay);
        match exchange.packet(0, 4) {
            PacketState::Ready(p) => assert_eq!(p.emigrants.len(), 1, "first copy kept"),
            other => panic!("expected ready, got {other:?}"),
        }
    }

    #[test]
    fn sidecar_names_sort_with_generations() {
        assert!(packet_sidecar_name(2) < packet_sidecar_name(10));
        assert_eq!(packet(3, 7).sidecar_name(), "mig-00000007.json");
    }
}
