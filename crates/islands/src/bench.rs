//! The `repro islands` experiment: archipelago scaling sweep plus the
//! correctness gates CI enforces.
//!
//! Three gates ride along with the sweep, and all must hold for
//! [`IslandsBenchResult::parity_ok`]:
//!
//! * **single-island parity** — a 1-island archipelago is bit-identical
//!   to a plain [`E3Platform`] run of the same config and seed (the
//!   archipelago layer adds nothing but scheduling);
//! * **determinism** — rerunning a multi-island config with different
//!   driver counts and pickup orders reproduces every island's final
//!   population bit for bit;
//! * **service smoke** — the [`RunManager`] lifecycle works end to
//!   end: submit, stream at least one island record, stop gracefully,
//!   and the best genome is retrievable.

use crate::config::IslandsConfig;
use crate::scheduler::{population_fingerprint, run_islands, Pickup, RunOptions, SharedCollector};
use crate::service::{RunManager, RunStatus, SubmitOptions};
use e3_envs::EnvId;
use e3_platform::experiments::Scale;
use e3_platform::{BackendKind, E3Config, E3Platform, RunError};
use e3_telemetry::TelemetryEvent;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Island counts the sweep visits.
pub const ISLAND_SWEEP: [usize; 3] = [1, 2, 4];

/// Migration intervals the sweep visits (multi-island points only).
pub const INTERVAL_SWEEP: [usize; 2] = [2, 5];

/// One `(islands, migration interval)` measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandsBenchRow {
    /// Number of islands.
    pub islands: usize,
    /// Migration interval `K` (generations between exchanges).
    pub migration_interval: usize,
    /// Migration merges performed across the run.
    pub migrations: usize,
    /// Best fitness over all islands.
    pub best_fitness: f64,
    /// Generations completed, summed over islands.
    pub total_generations: usize,
    /// Measured wall-clock seconds for the whole archipelago.
    pub wall_seconds: f64,
    /// Per-island final-population fingerprints (island-indexed) —
    /// what the determinism gate compares.
    pub population_fingerprints: Vec<u64>,
}

/// The sweep result plus the gate verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandsBenchResult {
    /// Environment the sweep ran on.
    pub env: EnvId,
    /// One row per sweep point.
    pub rows: Vec<IslandsBenchRow>,
    /// A 1-island archipelago matched a plain platform run bit for bit.
    pub single_island_parity_ok: bool,
    /// Re-running with different drivers/pickup reproduced every
    /// fingerprint.
    pub determinism_ok: bool,
    /// The run-manager submit/stream/stop lifecycle worked.
    pub service_smoke_ok: bool,
    /// All of the above.
    pub parity_ok: bool,
}

fn base_config(env: EnvId, scale: Scale, threads: usize) -> E3Config {
    E3Config::builder(env)
        .population_size(scale.population())
        .max_generations(scale.max_generations())
        // Fixed-generation workload: every sweep point runs the same
        // number of generations, so rows are comparable.
        .target_fitness(f64::INFINITY)
        .threads(threads)
        .build()
}

fn sweep_config(
    env: EnvId,
    scale: Scale,
    islands: usize,
    interval: usize,
    seed: u64,
) -> IslandsConfig {
    IslandsConfig::builder(base_config(env, scale, 2))
        .backend(BackendKind::Cpu)
        .islands(islands)
        .migration_interval(interval)
        .emigrants(2)
        .seed(seed)
        .build()
}

/// Runs the sweep and the gates on CartPole (the cheapest episode —
/// the sweep measures scheduling, not environment cost).
///
/// # Errors
///
/// Returns [`RunError`] if any archipelago run fails.
pub fn run(scale: Scale, seed: u64) -> Result<IslandsBenchResult, RunError> {
    let env = EnvId::CartPole;
    let mut rows = Vec::new();
    for islands in ISLAND_SWEEP {
        let intervals: &[usize] = if islands == 1 {
            &[INTERVAL_SWEEP[0]]
        } else {
            &INTERVAL_SWEEP
        };
        for &interval in intervals {
            let config = sweep_config(env, scale, islands, interval, seed);
            let start = Instant::now();
            let outcome = run_islands(
                config,
                &RunOptions::with_drivers(islands.min(2)),
                &SharedCollector::null(),
            )?;
            let wall_seconds = start.elapsed().as_secs_f64();
            rows.push(IslandsBenchRow {
                islands,
                migration_interval: interval,
                migrations: outcome.migrations,
                best_fitness: outcome
                    .best
                    .as_ref()
                    .map_or(f64::NEG_INFINITY, |(_, b)| b.fitness),
                total_generations: outcome.islands.iter().map(|i| i.generations_run).sum(),
                wall_seconds,
                population_fingerprints: outcome
                    .islands
                    .iter()
                    .map(|i| i.population_fingerprint)
                    .collect(),
            });
        }
    }

    let single_island_parity_ok = single_island_parity(env, scale, seed)?;
    let determinism_ok = determinism(env, scale, seed)?;
    let service_smoke_ok = service_smoke(env, scale, seed)?;

    Ok(IslandsBenchResult {
        env,
        rows,
        single_island_parity_ok,
        determinism_ok,
        service_smoke_ok,
        parity_ok: single_island_parity_ok && determinism_ok && service_smoke_ok,
    })
}

/// Gate 1: `islands(1)` ≡ plain `E3Platform`, fingerprint and fitness.
fn single_island_parity(env: EnvId, scale: Scale, seed: u64) -> Result<bool, RunError> {
    let outcome = run_islands(
        sweep_config(env, scale, 1, INTERVAL_SWEEP[0], seed),
        &RunOptions::with_drivers(1),
        &SharedCollector::null(),
    )?;
    let mut plain = E3Platform::new(base_config(env, scale, 2), BackendKind::Cpu, seed);
    for _ in 0..scale.max_generations() {
        plain.step_generation()?;
    }
    let plain_fp = population_fingerprint(plain.population());
    let plain_best = plain
        .population()
        .best()
        .map_or(f64::NEG_INFINITY, |b| b.fitness);
    let island = &outcome.islands[0];
    Ok(island.population_fingerprint == plain_fp && island.best_fitness == plain_best)
}

/// Gate 2: fingerprints are invariant under drivers × pickup.
fn determinism(env: EnvId, scale: Scale, seed: u64) -> Result<bool, RunError> {
    let config = || sweep_config(env, scale, 2, INTERVAL_SWEEP[0], seed);
    let reference = run_islands(
        config(),
        &RunOptions::with_drivers(1),
        &SharedCollector::null(),
    )?;
    let fps = |o: &crate::scheduler::ArchipelagoOutcome| {
        o.islands
            .iter()
            .map(|i| i.population_fingerprint)
            .collect::<Vec<u64>>()
    };
    for (drivers, pickup) in [(2, Pickup::Fifo), (2, Pickup::Lifo)] {
        let outcome = run_islands(
            config(),
            &RunOptions {
                drivers,
                pickup,
                stop: None,
            },
            &SharedCollector::null(),
        )?;
        if fps(&outcome) != fps(&reference) || outcome.migrations != reference.migrations {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Gate 3: the daemon lifecycle — submit, stream one island record,
/// graceful stop, best genome retrievable.
fn service_smoke(env: EnvId, scale: Scale, seed: u64) -> Result<bool, RunError> {
    // A long generation budget so the stop, not the cap, ends the run.
    let base = E3Config::builder(env)
        .population_size(scale.population())
        .max_generations(10_000)
        .target_fitness(f64::INFINITY)
        .threads(2)
        .build();
    let config = IslandsConfig::builder(base)
        .islands(2)
        .migration_interval(2)
        .seed(seed)
        .build();
    let mut manager = RunManager::new();
    let id = manager.submit(config, SubmitOptions::default())?;
    let Some(stream) = manager.subscribe(id) else {
        return Ok(false);
    };
    let deadline = std::time::Duration::from_secs(120);
    let start = Instant::now();
    let mut saw_island_record = false;
    while start.elapsed() < deadline {
        match stream.recv_timeout(deadline) {
            Ok(TelemetryEvent::Island(_)) => {
                saw_island_record = true;
                break;
            }
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let stopped = match manager.stop(id) {
        Some(Ok(outcome)) => !outcome.completed,
        _ => false,
    };
    let status_ok = manager.status(id) == Some(RunStatus::Stopped);
    let best_ok = manager.best(id).is_some();
    Ok(saw_island_record && stopped && status_ok && best_ok)
}

impl fmt::Display for IslandsBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Island scaling on {} (per-island population x generations fixed):",
            self.env
        )?;
        writeln!(
            f,
            "{:>8} {:>9} {:>11} {:>11} {:>11} {:>10}",
            "islands", "K", "migrations", "best", "total gens", "wall s"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>8} {:>9} {:>11} {:>11.2} {:>11} {:>10.3}",
                row.islands,
                row.migration_interval,
                row.migrations,
                row.best_fitness,
                row.total_generations,
                row.wall_seconds
            )?;
        }
        writeln!(
            f,
            "single-island parity: {}",
            if self.single_island_parity_ok {
                "OK"
            } else {
                "FAILED"
            }
        )?;
        writeln!(
            f,
            "determinism (drivers x pickup): {}",
            if self.determinism_ok { "OK" } else { "FAILED" }
        )?;
        writeln!(
            f,
            "service smoke (submit/stream/stop): {}",
            if self.service_smoke_ok {
                "OK"
            } else {
                "FAILED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_passes_every_gate() {
        let result = run(Scale::Quick, 42).expect("bench runs");
        assert!(result.single_island_parity_ok, "single-island parity");
        assert!(result.determinism_ok, "determinism gate");
        assert!(result.service_smoke_ok, "service smoke");
        assert!(result.parity_ok);
        assert_eq!(result.rows.len(), 1 + 2 * (ISLAND_SWEEP.len() - 1));
        let solo = &result.rows[0];
        assert_eq!(solo.migrations, 0);
        assert!(result.rows[1..].iter().all(|r| r.migrations > 0));
    }
}
