//! # e3-islands — asynchronous island evolution for the E3 platform
//!
//! Scales the single-population [`e3_platform::E3Platform`] to an
//! *archipelago*: N independent islands evolving concurrently over one
//! shared worker pool, periodically exchanging their best individuals.
//! The design follows the asynchronous-neuroevolution scheme of CLAN
//! (Kao et al.) referenced by the E3 paper: islands never wait at a
//! global barrier — while one island's population is being evaluated
//! on the shared pool, other islands run their (cheap, serial) evolve
//! phases, keeping the workers busy.
//!
//! ## The determinism contract
//!
//! Everything observable about a finished run — every island's final
//! population, bit for bit — is a pure function of the
//! [`IslandsConfig`]. Worker-pool width, driver-thread count, queue
//! discipline, scheduler interleaving, and kill/resume cycles are
//! wall-clock knobs only. The contract rests on three rules:
//!
//! 1. **Island evolution is deterministic** at any thread count (the
//!    `e3-exec` index-ordered reduction contract).
//! 2. **Migration is generation-indexed**: at a boundary after
//!    generation `g`, an island publishes its top-`M` emigrants keyed
//!    `(island, g)` *before* consuming its sources' `(source, g)`
//!    packets, and merges them in ascending source order through the
//!    RNG-neutral `Population::integrate_immigrants`. Who merges what
//!    depends only on the schedule, never on arrival order — and
//!    publish-before-consume makes the exchange deadlock-free.
//! 3. **Checkpoints and packets persist together**: each island
//!    checkpoints through `e3-store` into its own namespace
//!    (`island-NNNN/`), and every published packet is saved as a
//!    sidecar before the island can move past the boundary. A killed
//!    daemon resumes every island from its newest snapshot with the
//!    packets its replayed boundaries need already on the exchange.
//!
//! ## Quickstart
//!
//! ```
//! use e3_islands::{run_islands, IslandsConfig, RunOptions, SharedCollector};
//! use e3_platform::E3Config;
//! use e3_envs::EnvId;
//!
//! let base = E3Config::builder(EnvId::CartPole)
//!     .population_size(16)
//!     .max_generations(4)
//!     .target_fitness(f64::INFINITY)
//!     .build();
//! let config = IslandsConfig::builder(base)
//!     .islands(2)
//!     .migration_interval(2)
//!     .build();
//! let outcome = run_islands(
//!     config,
//!     &RunOptions::with_drivers(2),
//!     &SharedCollector::null(),
//! )
//! .unwrap();
//! assert!(outcome.completed);
//! assert_eq!(outcome.islands.len(), 2);
//! assert!(outcome.migrations > 0);
//! ```
//!
//! ## As a service
//!
//! [`RunManager`] wraps the scheduler in a daemon-shaped API: submit a
//! config, stream per-island NDJSON telemetry (flushed per record for
//! `tail -f`), poll the best genome, stop gracefully. See the
//! [`service`] module docs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod config;
pub mod migration;
pub mod scheduler;
pub mod service;

pub use config::{island_seed, namespace, IslandsConfig, IslandsConfigBuilder, Topology};
pub use migration::{Exchange, MigrationPacket, PacketState, Retirement};
pub use scheduler::{
    population_fingerprint, run_islands, Archipelago, ArchipelagoOutcome, IslandOutcome,
    IslandProgress, Pickup, Progress, RunOptions, SharedCollector,
};
pub use service::{
    JitSnapshot, RunId, RunManager, RunSnapshot, RunStatus, SubmitOptions, DEFAULT_FLIGHT_RECORDER,
    DEFAULT_SAMPLE_INTERVAL,
};
