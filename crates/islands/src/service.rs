//! The island-evolution run manager: a service boundary over the
//! archipelago scheduler.
//!
//! A [`RunManager`] owns background runs. The lifecycle is:
//!
//! 1. [`RunManager::submit`] a config — the archipelago is built (or
//!    resumed from its checkpoint directory) and starts evolving on a
//!    background thread; you get a [`RunId`] back.
//! 2. Stream telemetry: [`RunManager::subscribe`] hands out an
//!    `mpsc::Receiver<TelemetryEvent>` fed live; with
//!    [`SubmitOptions::ndjson`] the same stream is also appended to an
//!    NDJSON file, flushed per record, so `tail -f` works while the
//!    daemon runs.
//! 3. Poll [`RunManager::status`] / [`RunManager::best`] for live
//!    progress without blocking.
//! 4. [`RunManager::stop`] for a graceful shutdown (islands finish the
//!    generation in hand; checkpoints and migration sidecars make the
//!    next submit resume bit-identically), or [`RunManager::join`] to
//!    wait for completion. Both return the [`ArchipelagoOutcome`].
//!
//! The manager is deliberately transport-free: it *is* the daemon's
//! core, and a network front-end (HTTP, gRPC, a Unix socket) would be
//! a thin codec over these five calls.

use crate::config::IslandsConfig;
use crate::scheduler::{
    Archipelago, ArchipelagoOutcome, Pickup, Progress, RunOptions, SharedCollector,
};
use e3_neat::population::EvaluatedGenome;
use e3_platform::RunError;
use e3_telemetry::{Collector, NdjsonWriter, TelemetryError, TelemetryEvent};
use std::collections::HashMap;
use std::fs::File;
use std::io::BufWriter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Handle to a submitted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunId(u64);

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run-{:04}", self.0)
    }
}

/// Where a run currently stands.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// Islands are evolving.
    Running,
    /// Every island retired; the outcome is available via
    /// [`RunManager::join`].
    Finished,
    /// A graceful stop ended the run before every island retired.
    Stopped,
    /// An island failed; the message is the [`RunError`] display.
    Failed(String),
}

/// Per-submit execution knobs.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Driver threads (see [`RunOptions::drivers`]).
    pub drivers: usize,
    /// Queue discipline (wall-clock only, never results).
    pub pickup: Pickup,
    /// Append every telemetry record to this NDJSON file, flushed per
    /// record for live tailing.
    pub ndjson: Option<String>,
}

/// A collector that fans each event out to an optional NDJSON file and
/// every live subscriber channel. Disconnected subscribers are dropped
/// silently; a file write error fails the run.
struct FanOut {
    ndjson: Option<NdjsonWriter<BufWriter<File>>>,
    subscribers: Arc<Mutex<Vec<mpsc::Sender<TelemetryEvent>>>>,
}

impl Collector for FanOut {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        if let Some(file) = &mut self.ndjson {
            file.record(event)?;
        }
        let mut subscribers = self.subscribers.lock().expect("subscriber lock");
        subscribers.retain(|tx| tx.send(event.clone()).is_ok());
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TelemetryError> {
        if let Some(file) = &mut self.ndjson {
            file.flush()?;
        }
        Ok(())
    }
}

/// One background run.
struct RunHandle {
    stop: Arc<AtomicBool>,
    progress: Arc<Progress>,
    subscribers: Arc<Mutex<Vec<mpsc::Sender<TelemetryEvent>>>>,
    status: Arc<Mutex<RunStatus>>,
    worker: Option<JoinHandle<Result<ArchipelagoOutcome, RunError>>>,
}

/// Owns and supervises island-evolution runs. See the module docs for
/// the lifecycle.
#[derive(Default)]
pub struct RunManager {
    runs: HashMap<RunId, RunHandle>,
    next_id: u64,
}

impl std::fmt::Debug for RunManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunManager")
            .field("runs", &self.runs.len())
            .finish_non_exhaustive()
    }
}

impl RunManager {
    /// A manager with no runs.
    pub fn new() -> Self {
        RunManager::default()
    }

    /// Builds the archipelago (resuming any checkpoints under the
    /// configured directory) and starts it on a background thread.
    ///
    /// # Errors
    ///
    /// [`RunError`] if the archipelago cannot be built — a corrupt
    /// store, a namespace bound to a different island, or an NDJSON
    /// path that cannot be opened. Failures *after* submit surface
    /// through [`RunManager::status`] and [`RunManager::join`].
    pub fn submit(
        &mut self,
        config: IslandsConfig,
        opts: SubmitOptions,
    ) -> Result<RunId, RunError> {
        let archipelago = Archipelago::new(config)?;
        let ndjson = match &opts.ndjson {
            Some(path) => Some(NdjsonWriter::create(path).map_err(RunError::Telemetry)?),
            None => None,
        };
        let id = RunId(self.next_id);
        self.next_id += 1;
        let stop = Arc::new(AtomicBool::new(false));
        let progress = archipelago.progress();
        let subscribers: Arc<Mutex<Vec<mpsc::Sender<TelemetryEvent>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let status = Arc::new(Mutex::new(RunStatus::Running));
        let run_opts = RunOptions {
            drivers: opts.drivers,
            pickup: opts.pickup,
            stop: Some(Arc::clone(&stop)),
        };
        let collector = SharedCollector::new(FanOut {
            ndjson,
            subscribers: Arc::clone(&subscribers),
        });
        let worker_status = Arc::clone(&status);
        let worker = std::thread::spawn(move || {
            let result = archipelago.run(&run_opts, &collector);
            let mut status = worker_status.lock().expect("status lock");
            *status = match &result {
                Ok(outcome) if outcome.completed => RunStatus::Finished,
                Ok(_) => RunStatus::Stopped,
                Err(err) => RunStatus::Failed(err.to_string()),
            };
            result
        });
        self.runs.insert(
            id,
            RunHandle {
                stop,
                progress,
                subscribers,
                status,
                worker: Some(worker),
            },
        );
        Ok(id)
    }

    /// The run's current status, or `None` for an unknown id.
    pub fn status(&self, id: RunId) -> Option<RunStatus> {
        self.runs
            .get(&id)
            .map(|run| run.status.lock().expect("status lock").clone())
    }

    /// Subscribes to the run's live telemetry stream. Events recorded
    /// after this call arrive on the receiver; the channel closes when
    /// the run ends.
    pub fn subscribe(&self, id: RunId) -> Option<mpsc::Receiver<TelemetryEvent>> {
        let run = self.runs.get(&id)?;
        let (tx, rx) = mpsc::channel();
        run.subscribers.lock().expect("subscriber lock").push(tx);
        Some(rx)
    }

    /// The best individual seen so far and its home island — safe to
    /// poll while the run is in flight.
    pub fn best(&self, id: RunId) -> Option<(usize, EvaluatedGenome)> {
        self.runs.get(&id)?.progress.best()
    }

    /// Total generations completed across all islands so far.
    pub fn generations(&self, id: RunId) -> Option<usize> {
        self.runs.get(&id).map(|run| run.progress.generations())
    }

    /// Requests a graceful stop and waits for the drivers to drain:
    /// islands finish the generation in hand, checkpoints and
    /// migration sidecars stay consistent, and resubmitting the same
    /// config resumes bit-identically.
    ///
    /// # Errors
    ///
    /// The run's [`RunError`] if it had already failed.
    pub fn stop(&mut self, id: RunId) -> Option<Result<ArchipelagoOutcome, RunError>> {
        let run = self.runs.get_mut(&id)?;
        run.stop.store(true, Ordering::Relaxed);
        Self::finish(run)
    }

    /// Waits for the run to finish on its own.
    ///
    /// # Errors
    ///
    /// The run's [`RunError`] if any island failed.
    pub fn join(&mut self, id: RunId) -> Option<Result<ArchipelagoOutcome, RunError>> {
        Self::finish(self.runs.get_mut(&id)?)
    }

    /// Ids of all runs the manager knows, submission-ordered.
    pub fn runs(&self) -> Vec<RunId> {
        let mut ids: Vec<RunId> = self.runs.keys().copied().collect();
        ids.sort_by_key(|id| id.0);
        ids
    }

    fn finish(run: &mut RunHandle) -> Option<Result<ArchipelagoOutcome, RunError>> {
        let worker = run.worker.take()?;
        let result = worker.join().expect("archipelago thread panicked");
        // Drop the senders so subscriber receivers see the end of
        // stream.
        run.subscribers.lock().expect("subscriber lock").clear();
        Some(result)
    }
}

impl Drop for RunManager {
    /// Stops every still-running archipelago gracefully.
    fn drop(&mut self) {
        for run in self.runs.values_mut() {
            run.stop.store(true, Ordering::Relaxed);
            if let Some(worker) = run.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_envs::EnvId;
    use e3_platform::E3Config;

    fn config(max_generations: usize) -> IslandsConfig {
        let base = E3Config::builder(EnvId::CartPole)
            .population_size(16)
            .max_generations(max_generations)
            .target_fitness(f64::INFINITY)
            .build();
        IslandsConfig::builder(base)
            .islands(2)
            .migration_interval(2)
            .build()
    }

    #[test]
    fn submit_stream_join_lifecycle() {
        let mut manager = RunManager::new();
        let id = manager.submit(config(4), SubmitOptions::default()).unwrap();
        let stream = manager.subscribe(id).expect("known run");
        let outcome = manager.join(id).expect("known run").expect("clean run");
        assert!(outcome.completed);
        assert_eq!(manager.status(id), Some(RunStatus::Finished));
        let events: Vec<TelemetryEvent> = stream.try_iter().collect();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::Island(_))),
            "stream must carry island records"
        );
        assert!(manager.best(id).is_some());
        // The channel is closed after join.
        assert!(stream.recv().is_err());
    }

    #[test]
    fn stop_is_graceful_and_reports_partial_progress() {
        let mut manager = RunManager::new();
        let id = manager
            .submit(config(500), SubmitOptions::default())
            .unwrap();
        let stream = manager.subscribe(id).expect("known run");
        // Wait for evidence of live progress before stopping.
        let first = stream
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("some record arrives");
        drop(first);
        let outcome = manager.stop(id).expect("known run").expect("clean stop");
        assert!(!outcome.completed);
        assert_eq!(manager.status(id), Some(RunStatus::Stopped));
    }

    #[test]
    fn unknown_runs_are_none() {
        let mut manager = RunManager::new();
        let ghost = RunId(99);
        assert!(manager.status(ghost).is_none());
        assert!(manager.subscribe(ghost).is_none());
        assert!(manager.best(ghost).is_none());
        assert!(manager.join(ghost).is_none());
    }
}
